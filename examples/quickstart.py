#!/usr/bin/env python
"""Quickstart: deduplicate a multi-generation backup workload with DeFrag.

Builds a synthetic 20-generation file-system backup workload, ingests it
through the DeFrag engine (the paper's contribution), and prints one line
per backup: simulated throughput, dedup efficiency, and what was
rewritten to protect placement linearity.

Run:
    python examples/quickstart.py
"""

from repro import BackupSession, author_fs_20_full
from repro._util import MIB, format_rate


def main() -> None:
    # One backup system — engine + container store + restore reader over
    # a shared simulated disk. "DeFrag" resolves to the paper's engine
    # with its published configuration (SPL threshold alpha = 0.1,
    # 0.5-2 MB content-defined segments).
    with BackupSession("DeFrag") as session:
        # 20 full backups of an evolving 64 MiB file system.
        jobs = author_fs_20_full(fs_bytes=64 * MIB, n_generations=20)
        reports = session.run(jobs)

        print(f"{'gen':>4} {'logical':>10} {'throughput':>14} {'eff':>6} {'rewritten':>10}")
        for r in reports:
            print(
                f"{r.generation:>4} {r.logical_bytes / MIB:>8.1f} M "
                f"{format_rate(r.throughput):>14} "
                f"{r.efficiency:>6.3f} {r.rewritten_dup_bytes / MIB:>8.2f} M"
            )

        total_logical = sum(r.logical_bytes for r in reports)
        total_stored = sum(r.stored_bytes for r in reports)
        print(f"\ncompression: {total_logical / total_stored:.1f}x "
              f"({total_logical / MIB:.0f} MiB logical -> {total_stored / MIB:.0f} MiB stored)")

        # Restore the final backup and report the read rate (Fig. 6's metric).
        rr = session.restore()
        print(f"restore of gen {rr.generation}: {format_rate(rr.read_rate)} "
              f"({rr.container_reads} container reads)")


if __name__ == "__main__":
    main()
