#!/usr/bin/env python
"""Compare all four engines on one workload — the paper's evaluation in
miniature.

Runs Exact (naive full-index), DDFS-Like, SiLo-Like, and DeFrag over the
same 12-generation workload and prints the trade-off triangle the paper
is about: ingest throughput vs dedup efficiency vs restore speed.

Run:
    python examples/compare_engines.py [--fs-mib 48] [--generations 12]
"""

import argparse

from repro import BackupSession, author_fs_20_full
from repro._util import MIB
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency
from repro.metrics.storage import storage_summary
from repro.metrics.throughput import mean_throughput


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fs-mib", type=int, default=48)
    parser.add_argument("--generations", type=int, default=12)
    args = parser.parse_args()

    config = ExperimentConfig.default().with_(
        fs_bytes=args.fs_mib * MIB, n_generations=args.generations
    )

    print(f"{'engine':>10} {'ingest MB/s':>12} {'efficiency':>11} "
          f"{'compression':>12} {'restore MB/s':>13} {'reads':>6}")
    for name in ("Exact", "DDFS-Like", "SiLo-Like", "DeFrag"):
        session = BackupSession(name, config)
        jobs = author_fs_20_full(
            fs_bytes=config.fs_bytes,
            n_generations=config.n_generations,
            churn=config.churn_full,
        )
        reports = session.run(jobs)
        restore = session.restore()
        print(
            f"{name:>10} "
            f"{mean_throughput(reports) / 1e6:>12.1f} "
            f"{cumulative_efficiency(reports)[-1]:>11.3f} "
            f"{storage_summary(reports).compression_ratio:>11.1f}x "
            f"{restore.read_rate / 1e6:>13.1f} {restore.container_reads:>6}"
        )

    print(
        "\nreading: Exact is exact but disk-bound; DDFS is exact and fast "
        "until placement de-linearizes; SiLo stays fast but misses "
        "duplicates; DeFrag stays exact-in-detection, trades a little "
        "compression for locality."
    )


if __name__ == "__main__":
    main()
