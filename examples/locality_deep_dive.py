#!/usr/bin/env python
"""Watching de-linearization happen: SPL distributions over generations.

For each backup generation, this script segments the recipe and computes
the container-share profile of every segment — the offline analog of the
paper's Spatial Locality Level. Under DDFS the max-share histogram drains
from the 1.0 bucket toward the small buckets generation by generation;
under DeFrag the drain stops where alpha holds the line.

Run:
    python examples/locality_deep_dive.py
"""

from repro import (
    ContentDefinedSegmenter,
    DDFSEngine,
    DeFragEngine,
    EngineResources,
    author_fs_20_full,
    run_workload,
)
from repro._util import MIB
from repro.metrics import (
    max_share_histogram,
    mean_containers_per_segment,
    segment_share_profiles,
)


def sparkline(hist) -> str:
    blocks = " .:-=+*#%@"
    top = max(int(hist.max()), 1)
    return "".join(blocks[min(int(v * 9 / top), 9)] for v in hist)


def run(engine_cls, name: str) -> None:
    resources = EngineResources.create(index_page_cache_pages=16)
    resources.store.seal_seeks = 0
    engine = engine_cls(resources, cache_containers=12)
    segmenter = ContentDefinedSegmenter()
    jobs = author_fs_20_full(fs_bytes=48 * MIB, n_generations=12)
    reports = run_workload(engine, jobs, segmenter)

    print(f"\n== {name}: per-segment max container share, histogram 0.0 -> 1.0 ==")
    print(f"{'gen':>4} {'histogram':>12} {'mean containers/segment':>25}")
    for r in reports:
        # re-derive the segment boundaries this engine used
        from repro.chunking.base import ChunkStream

        stream = ChunkStream(r.recipe.fingerprints, r.recipe.sizes)
        bounds = segmenter.boundaries(stream)
        profiles = segment_share_profiles(r.recipe, bounds)
        hist = max_share_histogram(profiles, bins=10)
        print(f"{r.generation:>4} [{sparkline(hist)}] "
              f"{mean_containers_per_segment(profiles):>20.2f}")


if __name__ == "__main__":
    run(DDFSEngine, "DDFS-Like (exact dedup, placement decays)")
    run(DeFragEngine, "DeFrag (alpha=0.1 holds the line)")
