#!/usr/bin/env python
"""Eq. 1 in action: how fragment count destroys read performance.

Reproduces the paper's Section II analysis (Fig. 1 / Eq. 1): a file whose
chunks are split into N physically separate parts costs

    F(read) = N * T_seek + f_size / W_seq

so in the seek-dominated regime reading is ~N x slower than a linear
layout. The script prints the analytic curve and then demonstrates the
same effect operationally: it deduplicates an evolving file system and
measures how each generation's restore rate tracks its measured fragment
count.

Run:
    python examples/read_amplification.py
"""

from repro import (
    ContentDefinedSegmenter,
    DDFSEngine,
    EngineResources,
    RestoreReader,
    analyze_recipe,
    author_fs_20_full,
    run_workload,
)
from repro._util import MIB
from repro.restore import read_rate_eq1
from repro.storage.disk import HDD_2012


def analytic_curve() -> None:
    print("== Eq. 1, analytically (64 MiB file on a 2012 HDD) ==")
    print(f"{'fragments':>10} {'read time':>10} {'MB/s':>8} {'slowdown':>9}")
    base = None
    for n in (1, 2, 4, 16, 64, 256, 1024):
        rate = read_rate_eq1(n, 64 * MIB, HDD_2012)
        t = 64 * MIB / rate
        base = base or t
        print(f"{n:>10} {t:>9.2f}s {rate / 1e6:>8.1f} {t / base:>8.1f}x")


def operational_curve() -> None:
    print("\n== The same effect, operationally (DDFS-like dedup) ==")
    resources = EngineResources.create()
    engine = DDFSEngine(resources)
    reports = run_workload(
        engine,
        author_fs_20_full(fs_bytes=48 * MIB, n_generations=12),
        ContentDefinedSegmenter(),
    )
    reader = RestoreReader(resources.store)
    print(f"{'gen':>4} {'fragments/MiB':>14} {'restore MB/s':>13}")
    for r in reports:
        layout = analyze_recipe(r.recipe)
        restore = reader.restore(r.recipe)
        print(f"{r.generation:>4} {layout.fragments_per_mib:>14.2f} "
              f"{restore.read_rate / 1e6:>13.1f}")
    print("\nfragments/MiB climbs with every generation the deduplicator "
          "de-linearizes; restore MB/s falls in lockstep — Eq. 1 live.")


if __name__ == "__main__":
    analytic_curve()
    operational_curve()
