#!/usr/bin/env python
"""End-to-end byte-level ingest: real bytes -> CDC -> segments -> dedup.

The large-scale experiments run at chunk level (the workload generator
emits fingerprints directly), but the full byte path exists and this
example exercises it: it synthesizes two "versions" of a file tree as raw
bytes, cuts them with the Gear content-defined chunker, and shows that
the version-2 backup deduplicates against version 1 despite inserted
bytes shifting every offset.

Run:
    python examples/byte_level_ingest.py
"""

import numpy as np

from repro import (
    ChunkStream,
    ContentDefinedSegmenter,
    DDFSEngine,
    EngineResources,
    GearChunker,
    run_backup,
)
from repro._util import MIB, format_bytes
from repro.workloads import BackupJob


def make_version1(nbytes: int) -> bytes:
    rng = np.random.default_rng(2012)
    return bytes(rng.integers(0, 256, nbytes, dtype=np.uint8))


def edit(data: bytes, n_edits: int) -> bytes:
    """Scattered inserts/overwrites, the way documents actually change."""
    rng = np.random.default_rng(7)
    out = bytearray(data)
    for _ in range(n_edits):
        pos = int(rng.integers(0, len(out)))
        patch = bytes(rng.integers(0, 256, int(rng.integers(16, 400)), dtype=np.uint8))
        if rng.random() < 0.5:
            out[pos:pos] = patch  # insert (shifts all later offsets!)
        else:
            out[pos : pos + len(patch)] = patch  # overwrite
    return bytes(out)


def main() -> None:
    v1 = make_version1(8 * MIB)
    v2 = edit(v1, n_edits=60)

    chunker = GearChunker(avg_size=8192)  # skip-then-scan fast path
    stream1 = chunker.chunk(v1, fingerprints="fast")
    stream2 = chunker.chunk(v2, fingerprints="fast")
    print(f"v1: {format_bytes(len(v1))} -> {len(stream1)} chunks")
    print(f"v2: {format_bytes(len(v2))} -> {len(stream2)} chunks")
    stats = chunker.last_stats
    print(
        f"   scanned {100 * stats.scan_bytes / stats.bytes_in:.0f}% of the "
        f"input, skipped {100 * stats.skipped_bytes / stats.bytes_in:.0f}% "
        "(min-size regions + early-exit tails)"
    )

    resources = EngineResources.create()
    engine = DDFSEngine(resources)
    segmenter = ContentDefinedSegmenter(
        min_bytes=128 * 1024, avg_bytes=256 * 1024, max_bytes=512 * 1024
    )

    run_backup(engine, BackupJob(0, "v1", stream1), segmenter)
    report = run_backup(engine, BackupJob(1, "v2", stream2), segmenter)

    dup_frac = report.removed_dup_bytes / report.logical_bytes
    print(
        f"v2 backup: {format_bytes(report.removed_dup_bytes)} deduplicated "
        f"({100 * dup_frac:.1f}%), {format_bytes(report.written_new_bytes)} new"
    )
    assert dup_frac > 0.8, "CDC should have preserved most chunk identities"
    print("content-defined chunking survived byte-shifting edits — "
          "fixed-size chunking would have deduplicated almost nothing.")


if __name__ == "__main__":
    main()
