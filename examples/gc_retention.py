#!/usr/bin/env python
"""Garbage collection: DeFrag's storage overhead is mostly transient.

DeFrag knowingly stores duplicates again; every rewrite supersedes an
older physical copy. While every backup generation is retained all those
copies stay live, but real systems expire old backups — and then the
superseded copies concentrate in low-utilization containers that a
mark-and-compact pass reclaims.

This script ingests 12 generations with DeFrag, expires all but the last
three, runs the collector, and prints space and restore-rate before and
after.

Run:
    python examples/gc_retention.py
"""

from repro import (
    ContentDefinedSegmenter,
    DeFragEngine,
    EngineResources,
    GarbageCollector,
    RestoreReader,
    author_fs_20_full,
    run_workload,
)
from repro._util import MIB, format_bytes


def main() -> None:
    resources = EngineResources.create()
    engine = DeFragEngine(resources)  # alpha = 0.1
    reports = run_workload(
        engine,
        author_fs_20_full(fs_bytes=48 * MIB, n_generations=12),
        ContentDefinedSegmenter(),
    )

    retained = [r.recipe for r in reports[-3:]]
    reader = RestoreReader(resources.store)

    before_bytes = resources.store.stats.physical_bytes
    before_rate = reader.restore(retained[-1]).read_rate

    gc = GarbageCollector(resources.store, index=resources.index)
    print(f"log utilization with only 3 of 12 backups retained: "
          f"{gc.log_utilization(retained):.2f}")

    report, remapped = gc.collect(retained, min_utilization=0.7)

    after_bytes = resources.store.stats.physical_bytes
    after_rate = reader.restore(remapped[-1]).read_rate

    print(f"collected {report.containers_collected}/{report.containers_examined} "
          f"containers, reclaimed {format_bytes(report.bytes_reclaimed)}, "
          f"moved {format_bytes(report.bytes_moved)} live data")
    print(f"physical log: {format_bytes(before_bytes)} -> {format_bytes(after_bytes)}")
    print(f"utilization:  {report.utilization_before:.2f} -> "
          f"{report.utilization_after:.2f}")
    print(f"restore rate: {before_rate / 1e6:.1f} -> {after_rate / 1e6:.1f} MB/s "
          f"({after_rate / before_rate:.2f}x)")


if __name__ == "__main__":
    main()
