#!/usr/bin/env python
"""Extending DeFrag: write your own rewrite policy.

The rewrite decision is pluggable (``repro.RewritePolicy``). This example
implements a *budgeted* policy: rewrite the lowest-SPL groups first, but
never spend more than a fixed fraction of each segment on rewrites —
a knob the paper's future-work discussion hints at (bounding the
sacrificed compression ratio directly instead of indirectly via alpha).

Run:
    python examples/custom_policy.py
"""

from dataclasses import dataclass

from repro import (
    ContentDefinedSegmenter,
    DeFragEngine,
    EngineResources,
    RestoreReader,
    SPLThresholdPolicy,
    author_fs_20_full,
    run_workload,
)
from repro._util import MIB
from repro.core.policy import RewriteDecision, RewritePolicy
from repro.core.spl import SPLProfile
from repro.metrics.storage import storage_summary
from repro.metrics.throughput import mean_throughput


@dataclass(frozen=True)
class BudgetedRewritePolicy(RewritePolicy):
    """Rewrite lowest-SPL groups first, capped at ``budget`` of the
    segment (in the SPL accounting unit)."""

    budget: float = 0.15

    def decide(self, profile: SPLProfile) -> RewriteDecision:
        if not profile.shares:
            return RewriteDecision(rewrite_sids=frozenset())
        limit = self.budget * profile.segment_total
        spent = 0
        chosen = []
        # smallest shares are the worst seeks-per-byte: rewrite them first
        for sid, count in sorted(profile.shares.items(), key=lambda kv: kv[1]):
            if spent + count > limit:
                break
            chosen.append(sid)
            spent += count
        return RewriteDecision(rewrite_sids=frozenset(chosen))


def evaluate(name, policy):
    resources = EngineResources.create()
    engine = DeFragEngine(resources, policy=policy)
    reports = run_workload(
        engine,
        author_fs_20_full(fs_bytes=48 * MIB, n_generations=12),
        ContentDefinedSegmenter(),
    )
    restore = RestoreReader(resources.store).restore(reports[-1].recipe)
    summary = storage_summary(reports)
    print(
        f"{name:>22}: ingest {mean_throughput(reports) / 1e6:6.1f} MB/s, "
        f"compression {summary.compression_ratio:5.1f}x, "
        f"rewrite overhead {100 * summary.rewrite_overhead:4.1f}%, "
        f"restore {restore.read_rate / 1e6:6.1f} MB/s"
    )


if __name__ == "__main__":
    evaluate("paper alpha=0.1", SPLThresholdPolicy(alpha=0.1))
    evaluate("budgeted 15%", BudgetedRewritePolicy(budget=0.15))
    evaluate("budgeted 5%", BudgetedRewritePolicy(budget=0.05))
