#!/usr/bin/env python
"""Trace every DeFrag placement decision over a churned workload.

DeFrag's core move is per stored segment it references: keep the
duplicate pointer (dedup) when the share-of-placement-locality SPL is
high, or knowingly rewrite the duplicate bytes when SPL falls below
alpha. This example runs a multi-generation workload inside an
observability session, dumps every decision as JSONL, and prints the SPL
histogram that explains *why* the rewrites happened: rewritten groups
cluster in the low-SPL buckets below alpha.

Run:
    python examples/trace_defrag_decisions.py [--alpha 0.3] [--out decisions.jsonl]
"""

import argparse
from collections import Counter

from repro import (
    ContentDefinedSegmenter,
    DeFragEngine,
    EngineResources,
    run_workload,
)
from repro.core.policy import SPLThresholdPolicy
from repro.obs import JsonlEventSink, Observability, obs_session, read_jsonl
from repro.workloads.generators import single_user_incrementals
from repro._util import MIB, format_bytes


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--alpha", type=float, default=0.3, help="SPL rewrite threshold")
    ap.add_argument("--generations", type=int, default=8)
    ap.add_argument("--out", default="decisions.jsonl", help="JSONL event dump")
    args = ap.parse_args()

    resources = EngineResources.create()
    sink = JsonlEventSink(args.out)
    with obs_session(Observability(events=sink)) as obs:
        engine = DeFragEngine(resources, policy=SPLThresholdPolicy(args.alpha))
        jobs = single_user_incrementals(args.generations, 24 * MIB, seed=7)
        reports = run_workload(engine, jobs, ContentDefinedSegmenter())

    rewritten = sum(r.rewritten_dup_bytes for r in reports)
    print(f"{len(reports)} backups ingested, {format_bytes(rewritten)} rewritten")
    print(f"decision trace: {sink.n_events} events -> {args.out}\n")

    decisions = read_jsonl(args.out, type="defrag_decision")
    by_action = Counter(d["action"] for d in decisions)
    print(f"{len(decisions)} placement decisions: "
          f"{by_action['dedup']} dedup, {by_action['rewrite']} rewrite")

    # the histogram the engine recorded while running — rewrites are
    # exactly the mass below alpha
    hist = obs.registry.get("DeFrag.spl")
    print(f"\nSPL distribution over referenced stored segments (alpha={args.alpha}):")
    for label, count in hist.buckets():
        if count == 0:
            continue
        bar = "#" * max(1, round(40 * count / hist.count))
        print(f"  {label:>12} {count:6d} {bar}")

    low = [d for d in decisions if d["action"] == "rewrite"]
    assert all(d["spl"] < args.alpha for d in low)
    print(f"\nevery rewrite had SPL < {args.alpha}; "
          f"worst offender SPL = {min((d['spl'] for d in low), default=None)}")


if __name__ == "__main__":
    main()
