"""The public ``repro.api`` facade: registry, resources, BackupSession."""

import pytest

from repro._util import MIB
from repro.api import (
    BackupSession,
    EngineInfo,
    create_engine,
    create_resources,
    engine_info,
    engine_infos,
    engine_names,
    register_engine,
)
from repro.core.defrag import DeFragEngine
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.experiments.config import ExperimentConfig
from repro.faults import RetryPolicy
from repro.storage.store import StoreConfig
from repro.workloads.generators import author_fs_20_full

SMALL = ExperimentConfig.small().with_(fs_bytes=2 * MIB, n_generations=3)


class TestRegistry:
    def test_builtin_engines_are_registered(self):
        names = engine_names()
        for expected in (
            "DeFrag",
            "DDFS-Like",
            "SiLo-Like",
            "Exact",
            "iDedup",
            "SparseIndex",
        ):
            assert expected in names

    def test_create_engine_builds_the_right_classes(self):
        assert isinstance(create_engine("DeFrag", SMALL), DeFragEngine)
        assert isinstance(create_engine("DDFS-Like", SMALL), DDFSEngine)
        assert isinstance(create_engine("Exact", SMALL), ExactEngine)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError):
            create_engine("NoSuchEngine", SMALL)

    def test_unknown_engine_error_lists_builtins_before_import(self):
        """The error must name the lazily-importable builtins even when
        nothing has been imported into the registry yet — ``_REGISTRY``
        and ``_BUILTIN_MODULES`` can legally disagree until import time,
        and the message must cover their union."""
        from repro import api

        saved = dict(api._REGISTRY)
        api._REGISTRY.clear()
        try:
            with pytest.raises(ValueError) as exc:
                create_engine("NoSuchEngine", SMALL)
            message = str(exc.value)
            for builtin in ("DeFrag", "DDFS-Like", "RevDedup", "Hybrid"):
                assert builtin in message
        finally:
            api._REGISTRY.update(saved)

    def test_register_engine_decorator(self):
        @register_engine("test-only-exact")
        def build(resources, config):
            return ExactEngine(resources)

        try:
            assert "test-only-exact" in engine_names()
            eng = create_engine("test-only-exact", SMALL)
            assert isinstance(eng, ExactEngine)
        finally:
            from repro import api

            api._REGISTRY.pop("test-only-exact", None)
            api._INFO.pop("test-only-exact", None)

    def test_engine_info_capabilities(self):
        assert engine_info("DeFrag") == EngineInfo(name="DeFrag", doc=engine_info("DeFrag").doc)
        assert not engine_info("DeFrag").supports_maintenance
        rev = engine_info("RevDedup")
        assert rev.supports_maintenance and rev.rewrites_old_containers
        hyb = engine_info("Hybrid")
        assert hyb.supports_maintenance and not hyb.rewrites_old_containers

    def test_engine_infos_covers_every_name(self):
        infos = engine_infos()
        assert [i.name for i in infos] == list(engine_names())
        assert all(isinstance(i, EngineInfo) for i in infos)
        assert all(i.doc for i in infos if i.name in ("DeFrag", "RevDedup"))


class TestCreateResources:
    def test_default_follows_the_experiment_convention(self):
        res = create_resources(SMALL)
        assert res.store.config.seal_seeks == 0
        assert res.store.config.container_bytes == SMALL.container_bytes
        assert res.store.config.journal is False

    def test_explicit_store_config_wins(self):
        cfg = SMALL.with_(
            store=StoreConfig(
                container_bytes=1 * MIB, journal=True, retry=RetryPolicy()
            )
        )
        res = create_resources(cfg)
        assert res.store.config.journal is True
        assert res.store.config.container_bytes == 1 * MIB
        assert res.index._unflushed is not None


class TestBackupSession:
    def test_backup_restore_round_trip(self):
        with BackupSession("DeFrag", SMALL) as session:
            jobs = list(
                author_fs_20_full(
                    fs_bytes=SMALL.fs_bytes, n_generations=SMALL.n_generations
                )
            )
            reports = session.run(jobs)
            assert len(reports) == SMALL.n_generations
            rr = session.restore()
            assert rr.logical_bytes == reports[-1].recipe.total_bytes
            first = session.restore(0)
            assert first.logical_bytes == reports[0].recipe.total_bytes

    def test_restore_without_backups_raises(self):
        session = BackupSession("Exact", SMALL)
        with pytest.raises(RuntimeError):
            session.restore()

    def test_session_shares_one_substrate(self):
        session = BackupSession("Exact", SMALL)
        assert session.store is session.engine.res.store
        assert session.reader.store is session.store
        assert session.disk is session.store.disk


class TestSessionMaintenance:
    def test_run_drives_maintenance_for_supported_engines(self):
        with BackupSession("Hybrid", SMALL) as session:
            jobs = list(
                author_fs_20_full(
                    fs_bytes=SMALL.fs_bytes, n_generations=SMALL.n_generations
                )
            )
            reports = session.run(jobs)
            assert len(reports) == SMALL.n_generations
            assert session.maintenance_reports
            assert all(
                r.engine == "Hybrid" for r in session.maintenance_reports
            )
            # the remapped recipes must still restore byte-complete
            rr = session.restore()
            assert rr.logical_bytes == reports[-1].recipe.total_bytes

    def test_run_skips_maintenance_for_inline_engines(self):
        with BackupSession("DeFrag", SMALL) as session:
            jobs = list(
                author_fs_20_full(
                    fs_bytes=SMALL.fs_bytes, n_generations=SMALL.n_generations
                )
            )
            session.run(jobs)
            assert session.maintenance_reports == []

    def test_end_generation_raises_mid_backup(self):
        session = BackupSession("RevDedup", SMALL)
        session.engine.begin_backup(0)
        with pytest.raises(RuntimeError):
            session.engine.end_generation([])
