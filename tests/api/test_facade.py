"""The public ``repro.api`` facade: registry, resources, BackupSession."""

import warnings

import pytest

from repro._util import MIB
from repro.api import (
    BackupSession,
    create_engine,
    create_resources,
    engine_names,
    register_engine,
)
from repro.core.defrag import DeFragEngine
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.experiments.config import ExperimentConfig
from repro.faults import RetryPolicy
from repro.storage.store import StoreConfig
from repro.workloads.generators import author_fs_20_full

SMALL = ExperimentConfig.small().with_(fs_bytes=2 * MIB, n_generations=3)


class TestRegistry:
    def test_builtin_engines_are_registered(self):
        names = engine_names()
        for expected in (
            "DeFrag",
            "DDFS-Like",
            "SiLo-Like",
            "Exact",
            "iDedup",
            "SparseIndex",
        ):
            assert expected in names

    def test_create_engine_builds_the_right_classes(self):
        assert isinstance(create_engine("DeFrag", SMALL), DeFragEngine)
        assert isinstance(create_engine("DDFS-Like", SMALL), DDFSEngine)
        assert isinstance(create_engine("Exact", SMALL), ExactEngine)

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError):
            create_engine("NoSuchEngine", SMALL)

    def test_register_engine_decorator(self):
        @register_engine("test-only-exact")
        def build(resources, config):
            return ExactEngine(resources)

        try:
            assert "test-only-exact" in engine_names()
            eng = create_engine("test-only-exact", SMALL)
            assert isinstance(eng, ExactEngine)
        finally:
            from repro import api

            api._REGISTRY.pop("test-only-exact", None)


class TestCreateResources:
    def test_default_follows_the_experiment_convention(self):
        res = create_resources(SMALL)
        assert res.store.config.seal_seeks == 0
        assert res.store.config.container_bytes == SMALL.container_bytes
        assert res.store.config.journal is False

    def test_explicit_store_config_wins(self):
        cfg = SMALL.with_(
            store=StoreConfig(
                container_bytes=1 * MIB, journal=True, retry=RetryPolicy()
            )
        )
        res = create_resources(cfg)
        assert res.store.config.journal is True
        assert res.store.config.container_bytes == 1 * MIB
        assert res.index._unflushed is not None


class TestBackupSession:
    def test_backup_restore_round_trip(self):
        with BackupSession("DeFrag", SMALL) as session:
            jobs = list(
                author_fs_20_full(
                    fs_bytes=SMALL.fs_bytes, n_generations=SMALL.n_generations
                )
            )
            reports = session.run(jobs)
            assert len(reports) == SMALL.n_generations
            rr = session.restore()
            assert rr.logical_bytes == reports[-1].recipe.total_bytes
            first = session.restore(0)
            assert first.logical_bytes == reports[0].recipe.total_bytes

    def test_restore_without_backups_raises(self):
        session = BackupSession("Exact", SMALL)
        with pytest.raises(RuntimeError):
            session.restore()

    def test_session_shares_one_substrate(self):
        session = BackupSession("Exact", SMALL)
        assert session.store is session.engine.res.store
        assert session.reader.store is session.store
        assert session.disk is session.store.disk


class TestDeprecatedShims:
    def test_build_engine_warns_and_delegates(self):
        from repro.experiments.common import build_engine, build_resources

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = build_resources(SMALL)
            eng = build_engine("DeFrag", SMALL, res)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert isinstance(eng, DeFragEngine)

    def test_store_kwargs_warn_and_map(self):
        from repro.storage.disk import DiskModel
        from repro.storage.store import ContainerStore
        from tests.conftest import TEST_PROFILE

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store = ContainerStore(
                DiskModel(profile=TEST_PROFILE),
                container_bytes=123_456,
                seal_seeks=0,
            )
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert store.config.container_bytes == 123_456
        assert store.config.seal_seeks == 0
