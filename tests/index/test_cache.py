import numpy as np

from repro.index.cache import FingerprintPrefetchCache, LRUCache


class TestLRUCache:
    def test_get_put(self):
        c = LRUCache(2)
        c.put("a", 1)
        assert c.get("a") == 1
        assert c.get("b") is None

    def test_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # refresh a
        c.put("c", 3)  # evicts b
        assert "b" not in c
        assert "a" in c and "c" in c

    def test_overwrite_refreshes(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 10)
        c.put("c", 3)  # evicts b, not a
        assert c.get("a") == 10
        assert "b" not in c

    def test_hit_miss_counters(self):
        c = LRUCache(2)
        c.put("a", 1)
        c.get("a")
        c.get("zz")
        assert c.hits == 1
        assert c.misses == 1

    def test_len(self):
        c = LRUCache(3)
        for k in "abc":
            c.put(k, 0)
        c.put("d", 0)
        assert len(c) == 3


class TestPrefetchCache:
    def unit(self, *fps):
        return np.asarray(fps, dtype=np.uint64)

    def test_lookup_after_insert(self):
        c = FingerprintPrefetchCache(4)
        c.insert_unit(10, self.unit(1, 2, 3))
        assert c.lookup(2) == 10
        assert c.lookup(9) is None
        assert 1 in c

    def test_eviction_removes_fps(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10))
        c.insert_unit(2, self.unit(20))
        c.insert_unit(3, self.unit(30))  # evicts unit 1
        assert c.lookup(10) is None
        assert c.lookup(20) == 2
        assert c.stats.units_evicted == 1

    def test_lookup_refreshes_unit_recency(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10))
        c.insert_unit(2, self.unit(20))
        c.lookup(10)  # refresh unit 1
        c.insert_unit(3, self.unit(30))  # evicts unit 2
        assert c.lookup(10) == 1
        assert c.lookup(20) is None

    def test_shared_fp_across_units_eviction_safe(self):
        """A fingerprint present in two units must survive eviction of the
        newer unit while the older one is still cached (the DeFrag rewrite
        scenario) once the older unit is re-prefetched."""
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10, 11))
        c.insert_unit(2, self.unit(11, 12))  # steals fp 11
        c.insert_unit(3, self.unit(30))  # evicts unit 1
        c.insert_unit(4, self.unit(40))  # evicts unit 2 -> fp 11 unmapped
        assert c.lookup(11) is None
        # re-prefetch of unit... none cached; insert unit 2 again
        c.insert_unit(2, self.unit(11, 12))
        assert c.lookup(11) == 2

    def test_reinsert_cached_unit_restores_mappings(self):
        """Re-prefetching a cached unit must re-register its fps (the bug
        that produced repeated faults on one container): fp 11 lives in
        units 1 and 2; unit 2 steals the mapping and is evicted, leaving
        fp 11 unreachable although unit 1 is still cached."""
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10, 11))
        c.insert_unit(2, self.unit(11))
        c.lookup(10)  # refresh unit 1
        c.insert_unit(3, self.unit(30))  # evicts unit 2 -> fp 11 unmapped
        assert c.lookup(11) is None
        c.insert_unit(1, self.unit(10, 11))  # re-prefetch cached unit 1
        assert c.lookup(11) == 1

    def test_has_unit_no_recency_change(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10))
        c.insert_unit(2, self.unit(20))
        assert c.has_unit(1)
        c.insert_unit(3, self.unit(30))  # evicts 1 despite has_unit call
        assert not c.has_unit(1)

    def test_stats_hit_rate(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10))
        c.lookup(10)
        c.lookup(99)
        assert c.stats.hits == 1
        assert c.stats.lookups == 2
        assert c.stats.hit_rate == 0.5
        assert c.stats.hits_per_unit == 1.0

    def test_clear(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit(10))
        c.clear()
        assert len(c) == 0
        assert c.lookup(10) is None

    def test_empty_unit_insert(self):
        c = FingerprintPrefetchCache(2)
        c.insert_unit(1, self.unit())
        assert c.has_unit(1)


class TestLookupMany:
    def test_list_and_array_inputs_agree(self):
        cache = FingerprintPrefetchCache(4)
        cache.insert_unit(7, np.array([1, 2, 3], dtype=np.uint64))
        arr = np.array([1, 9, 3], dtype=np.uint64)
        out_arr = cache.lookup_many(arr)
        out_list = cache.lookup_many([1, 9, 3])
        assert out_arr.tolist() == out_list.tolist() == [7, -1, 7]

    def test_pure_no_stats_no_recency(self):
        cache = FingerprintPrefetchCache(2)
        cache.insert_unit(1, np.array([10], dtype=np.uint64))
        cache.insert_unit(2, np.array([20], dtype=np.uint64))
        before = (cache.stats.lookups, cache.stats.hits)
        cache.lookup_many([10, 20, 30])
        assert (cache.stats.lookups, cache.stats.hits) == before
        # unit 1 is still the LRU victim: lookup_many refreshed nothing
        cache.insert_unit(3, np.array([30], dtype=np.uint64))
        assert not cache.has_unit(1) and cache.has_unit(2)

    def test_empty_input(self):
        cache = FingerprintPrefetchCache(2)
        assert cache.lookup_many([]).size == 0
