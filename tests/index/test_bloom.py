import numpy as np
import pytest

from repro.index.bloom import BloomFilter


class TestConstruction:
    def test_sizing_grows_with_capacity(self):
        a = BloomFilter(1000, 0.01)
        b = BloomFilter(10000, 0.01)
        assert b.n_bits > a.n_bits

    def test_sizing_grows_with_precision(self):
        a = BloomFilter(1000, 0.05)
        b = BloomFilter(1000, 0.001)
        assert b.n_bits > a.n_bits

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_rates(self, bad):
        with pytest.raises(ValueError):
            BloomFilter(100, bad)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            BloomFilter(0)


class TestMembership:
    def test_no_false_negatives_scalar(self):
        b = BloomFilter(1000, 0.01)
        for fp in range(200):
            b.add(fp)
        assert all(fp in b for fp in range(200))

    def test_no_false_negatives_vectorized(self):
        b = BloomFilter(10000, 0.01)
        fps = np.arange(5000, dtype=np.uint64) * np.uint64(2654435761)
        b.add_many(fps)
        assert b.contains_many(fps).all()

    def test_fresh_filter_rejects_everything(self):
        b = BloomFilter(1000, 0.01)
        assert not b.contains_many(np.arange(100, dtype=np.uint64)).any()

    def test_false_positive_rate_near_target(self):
        b = BloomFilter(20000, 0.01)
        b.add_many(np.arange(20000, dtype=np.uint64))
        fresh = np.arange(10**6, 10**6 + 50000, dtype=np.uint64)
        rate = float(b.contains_many(fresh).mean())
        assert rate < 0.03

    def test_empty_array_ops(self):
        b = BloomFilter(100)
        b.add_many(np.zeros(0, dtype=np.uint64))
        assert b.contains_many(np.zeros(0, dtype=np.uint64)).shape == (0,)

    def test_duplicate_adds_counted(self):
        b = BloomFilter(100)
        b.add(5)
        b.add(5)
        assert b.n_added == 2
        assert 5 in b


class TestIntrospection:
    def test_fill_ratio_increases(self):
        b = BloomFilter(1000, 0.01)
        assert b.fill_ratio == 0.0
        b.add_many(np.arange(500, dtype=np.uint64))
        assert 0.0 < b.fill_ratio < 1.0

    def test_expected_fp_rate_monotone(self):
        b = BloomFilter(1000, 0.01)
        r0 = b.expected_fp_rate()
        b.add_many(np.arange(1000, dtype=np.uint64))
        assert b.expected_fp_rate() > r0

    def test_ram_bytes_positive(self):
        assert BloomFilter(1000).ram_bytes > 0


class TestBloomBatchStaging:
    """try_stage: a whole run of adds is staged only when the batch can
    prove no same-run or prior-add probe collision could flip a later
    mid-segment membership answer; otherwise it refuses and the caller
    falls back to bit-identical scalar adds."""

    def _batch(self, fps):
        bloom = BloomFilter(10_000, 0.01)
        return bloom, bloom.begin_batch(np.asarray(fps, dtype=np.uint64))

    def test_stage_success_marks_members_and_counts(self):
        bloom, batch = self._batch([1, 2, 3, 4])
        assert batch.try_stage(0, 4)
        assert bloom.n_added == 4
        assert all(batch.contains(i) for i in range(4))

    def test_stage_matches_scalar_adds_bit_for_bit(self):
        fps = [11, 22, 33, 44, 55]
        bloom, batch = self._batch(fps)
        assert batch.try_stage(0, len(fps))
        batch.flush()
        ref = BloomFilter(10_000, 0.01)
        for fp in fps:
            ref.add(fp)
        assert np.array_equal(bloom._words, ref._words)
        assert bloom.n_added == ref.n_added

    def test_refuses_repeated_fingerprint_in_run(self):
        # identical fps share all probe positions: no solo probe exists,
        # so the run cannot be proven collision-free
        bloom, batch = self._batch([7, 7])
        assert not batch.try_stage(0, 2)
        assert bloom.n_added == 0
        assert not batch.contains(0)

    def test_refuses_collision_with_prior_add(self):
        bloom, batch = self._batch([9, 9])
        batch.add(0)
        assert not batch.try_stage(1, 2)
        assert batch.contains(1)  # pending add of the same fp is visible

    def test_negatives_snapshot(self):
        bloom = BloomFilter(10_000, 0.01)
        bloom.add(5)
        batch = bloom.begin_batch(np.array([5, 6], dtype=np.uint64))
        neg = batch.negatives()
        assert not neg[0]
        # staging chunk 1 must not rewrite the snapshot view
        assert batch.try_stage(1, 2) or True
        assert not batch.negatives()[0]
