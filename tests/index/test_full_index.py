import pytest

from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.storage.disk import DiskModel

from tests.conftest import TEST_PROFILE


def make_index(page_cache_pages=4, expected=1000):
    disk = DiskModel(profile=TEST_PROFILE)
    return DiskChunkIndex(
        disk,
        expected_entries=expected,
        page_bytes=4096,
        entry_bytes=40,
        page_cache_pages=page_cache_pages,
    )


class TestBasics:
    def test_insert_lookup(self):
        idx = make_index()
        idx.insert(42, ChunkLocation(1, 2))
        assert idx.lookup(42) == ChunkLocation(1, 2)
        assert len(idx) == 1

    def test_lookup_missing_returns_none_but_charges(self):
        idx = make_index(page_cache_pages=0)
        before = idx.disk.stats.snapshot()
        assert idx.lookup(99) is None
        d = idx.disk.stats.delta_since(before)
        assert d.seeks == 1
        assert d.bytes_read == 4096

    def test_update_repoints(self):
        idx = make_index()
        idx.insert(1, ChunkLocation(0, 0))
        idx.update(1, ChunkLocation(5, 7))
        assert idx.peek(1) == ChunkLocation(5, 7)
        assert idx.stats.updates == 1

    def test_peek_free(self):
        idx = make_index()
        idx.insert(1, ChunkLocation(0, 0))
        before = idx.disk.stats.snapshot()
        assert idx.peek(1) == ChunkLocation(0, 0)
        assert idx.peek(2) is None
        assert idx.disk.stats.delta_since(before).seeks == 0

    def test_contains_is_ram_model(self):
        idx = make_index()
        idx.insert(1, ChunkLocation(0, 0))
        assert 1 in idx
        assert 2 not in idx

    def test_inserts_uncharged(self):
        idx = make_index()
        before = idx.disk.stats.snapshot()
        for i in range(100):
            idx.insert(i, ChunkLocation(0, 0))
        assert idx.disk.stats.delta_since(before).seeks == 0


class TestPaging:
    def test_page_of_stable(self):
        idx = make_index()
        assert idx.page_of(123) == idx.page_of(123)
        assert 0 <= idx.page_of(123) < idx.n_pages

    def test_page_cache_absorbs_repeat_lookups(self):
        idx = make_index(page_cache_pages=4)
        idx.insert(7, ChunkLocation(0, 0))
        idx.lookup(7)
        faults_after_first = idx.stats.page_faults
        idx.lookup(7)
        assert idx.stats.page_faults == faults_after_first
        assert idx.stats.page_hits >= 1

    def test_page_cache_evicts(self):
        idx = make_index(page_cache_pages=1)
        # two fps in different pages ping-pong the single cache slot
        fp_a, fp_b = 0, 1
        assert idx.page_of(fp_a) != idx.page_of(fp_b)
        idx.lookup(fp_a)
        idx.lookup(fp_b)
        idx.lookup(fp_a)
        assert idx.stats.page_faults == 3

    def test_fault_rate(self):
        idx = make_index(page_cache_pages=4)
        idx.lookup(1)
        idx.lookup(1)
        assert idx.stats.fault_rate == pytest.approx(0.5)

    def test_disk_bytes_tracks_entries(self):
        idx = make_index()
        for i in range(10):
            idx.insert(i, ChunkLocation(0, 0))
        assert idx.disk_bytes == 400


class TestBatchedWrites:
    def test_insert_many_matches_sequential_inserts(self):
        a, b = make_index(), make_index()
        locs = [ChunkLocation(c, 0) for c in range(5)]
        a.insert_many(list(range(5)), locs)
        for fp, loc in zip(range(5), locs):
            b.insert(fp, loc)
        assert all(a.peek(fp) == b.peek(fp) for fp in range(5))
        assert a.stats.inserts == b.stats.inserts == 5

    def test_update_many_later_pair_wins(self):
        idx = make_index()
        idx.insert(1, ChunkLocation(0, 0))
        idx.update_many([1, 1], [ChunkLocation(5, 1), ChunkLocation(9, 2)])
        assert idx.peek(1) == ChunkLocation(9, 2)
        assert idx.stats.updates == 2
