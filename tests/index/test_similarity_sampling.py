import numpy as np
import pytest

from repro.index.sampling import jaccard, minhash_signature, sample_fingerprints
from repro.index.similarity import SimilarityIndex


class TestSimilarityIndexUnbounded:
    def test_lookup_insert(self):
        idx = SimilarityIndex()
        assert idx.lookup(5) is None
        idx.insert(5, 100)
        assert idx.lookup(5) == 100
        assert 5 in idx

    def test_newer_overwrites(self):
        idx = SimilarityIndex()
        idx.insert(5, 100)
        idx.insert(5, 200)
        assert idx.lookup(5) == 200
        assert len(idx) == 1

    def test_stats(self):
        idx = SimilarityIndex()
        idx.insert(1, 1)
        idx.lookup(1)
        idx.lookup(2)
        assert idx.stats.hits == 1
        assert idx.stats.lookups == 2
        assert idx.stats.hit_rate == 0.5

    def test_ram_bytes(self):
        idx = SimilarityIndex()
        for i in range(10):
            idx.insert(i, i)
        assert idx.ram_bytes == 160


class TestSimilarityIndexBounded:
    def test_capacity_enforced(self):
        idx = SimilarityIndex(capacity=10)
        for i in range(100):
            idx.insert(i, i)
        assert len(idx) == 10
        assert idx.stats.evictions == 90

    def test_overwrite_does_not_evict(self):
        idx = SimilarityIndex(capacity=2)
        idx.insert(1, 1)
        idx.insert(2, 2)
        idx.insert(1, 99)  # same key: overwrite, no eviction
        assert idx.stats.evictions == 0
        assert len(idx) == 2

    def test_eviction_deterministic(self):
        a = SimilarityIndex(capacity=5)
        b = SimilarityIndex(capacity=5)
        for i in range(50):
            a.insert(i, i)
            b.insert(i, i)
        assert sorted(a._map) == sorted(b._map)

    def test_survivors_resolvable(self):
        idx = SimilarityIndex(capacity=5)
        for i in range(20):
            idx.insert(i, i * 10)
        for key, bid in list(idx._map.items()):
            assert idx.lookup(key) == bid

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SimilarityIndex(capacity=0)


class TestSampling:
    def test_sample_by_value(self):
        fps = np.arange(1000, dtype=np.uint64)
        s = sample_fingerprints(fps, rate=10)
        assert (s % 10 == 0).all()
        assert s.size == 100

    def test_sample_deterministic_by_value(self):
        fps = np.array([20, 21, 30], dtype=np.uint64)
        assert sample_fingerprints(fps, 10).tolist() == [20, 30]

    def test_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            sample_fingerprints(np.zeros(1, dtype=np.uint64), 0)


class TestMinhash:
    def test_identical_sets_identical_sig(self):
        fps = np.arange(100, dtype=np.uint64)
        assert np.array_equal(minhash_signature(fps, 4), minhash_signature(fps, 4))

    def test_disjoint_sets_differ(self):
        a = minhash_signature(np.arange(100, dtype=np.uint64))
        b = minhash_signature(np.arange(1000, 1100, dtype=np.uint64))
        assert not np.array_equal(a, b)

    def test_empty_returns_max(self):
        sig = minhash_signature(np.zeros(0, dtype=np.uint64), 3)
        assert (sig == np.iinfo(np.uint64).max).all()

    def test_similarity_estimation_tracks_jaccard(self):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 2**63, 2000).astype(np.uint64)
        a = base[:1500]
        b = base[500:]  # ~50% overlap
        k = 64
        sa = minhash_signature(a, k)
        sb = minhash_signature(b, k)
        est = float((sa == sb).mean())
        true = jaccard(a, b)
        assert abs(est - true) < 0.15


class TestJaccard:
    def test_identical(self):
        a = np.arange(10, dtype=np.uint64)
        assert jaccard(a, a) == 1.0

    def test_disjoint(self):
        assert jaccard(
            np.arange(10, dtype=np.uint64), np.arange(20, 30, dtype=np.uint64)
        ) == 0.0

    def test_both_empty(self):
        e = np.zeros(0, dtype=np.uint64)
        assert jaccard(e, e) == 1.0

    def test_half_overlap(self):
        a = np.arange(0, 10, dtype=np.uint64)
        b = np.arange(5, 15, dtype=np.uint64)
        assert jaccard(a, b) == pytest.approx(5 / 15)
