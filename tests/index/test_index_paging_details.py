"""Finer-grained paging behaviour of the on-disk chunk index."""

import pytest

from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.storage.disk import DiskModel

from tests.conftest import TEST_PROFILE


class TestSizing:
    def test_page_count_scales_with_expectation(self):
        disk = DiskModel(profile=TEST_PROFILE)
        small = DiskChunkIndex(disk, expected_entries=1_000)
        big = DiskChunkIndex(disk, expected_entries=1_000_000)
        assert big.n_pages > small.n_pages

    def test_entries_per_page_respected(self):
        disk = DiskModel(profile=TEST_PROFILE)
        idx = DiskChunkIndex(disk, expected_entries=1000, page_bytes=400, entry_bytes=40)
        # 10 entries per page -> 100 pages
        assert idx.n_pages == 100

    def test_rejects_bad_sizes(self):
        disk = DiskModel(profile=TEST_PROFILE)
        with pytest.raises(ValueError):
            DiskChunkIndex(disk, expected_entries=0)
        with pytest.raises(ValueError):
            DiskChunkIndex(disk, page_bytes=0)


class TestChargeModel:
    def test_same_page_lookups_amortized(self):
        """Fingerprints landing in one bucket page share its fault."""
        disk = DiskModel(profile=TEST_PROFILE)
        idx = DiskChunkIndex(disk, expected_entries=100, page_cache_pages=4)
        same_page = [fp for fp in range(1000) if idx.page_of(fp) == idx.page_of(0)]
        assert len(same_page) >= 2
        for fp in same_page[:2]:
            idx.insert(fp, ChunkLocation(0, 0))
        idx.lookup(same_page[0])
        faults_after_first = idx.stats.page_faults
        idx.lookup(same_page[1])
        assert idx.stats.page_faults == faults_after_first

    def test_no_page_cache_every_lookup_faults(self):
        disk = DiskModel(profile=TEST_PROFILE)
        idx = DiskChunkIndex(disk, expected_entries=100, page_cache_pages=0)
        idx.insert(1, ChunkLocation(0, 0))
        idx.lookup(1)
        idx.lookup(1)
        assert idx.stats.page_faults == 2

    def test_update_then_lookup_sees_new_location(self):
        disk = DiskModel(profile=TEST_PROFILE)
        idx = DiskChunkIndex(disk, expected_entries=100)
        idx.insert(5, ChunkLocation(1, 1))
        idx.update(5, ChunkLocation(9, 2))
        assert idx.lookup(5) == ChunkLocation(9, 2)
