"""In-process checks of the bounded-RSS memory driver at toy scale.

The real measurement runs ``python -m repro.memory`` in a fresh
subprocess (see ``repro.bench.run_memory_bench``); these tests drive
the same pipeline in-process at small scale to pin down the record
shape, the gate logic, and that spilling is genuinely exercised.
"""

import json

import pytest

from repro.memory import check_memory_gate, load_memory_budget, run_memory_probe


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    spill = tmp_path_factory.mktemp("spill")
    return run_memory_probe(
        scale="small",
        generations=3,
        resident_containers=2,
        spill_dir=str(spill),
        restore_last=2,
    )


class TestProbeRecord:
    def test_record_shape(self, record):
        for key in (
            "kind",
            "scale",
            "engine",
            "n_backups",
            "logical_bytes",
            "unique_fingerprints",
            "containers_sealed",
            "spill",
            "ingest_sim_seconds",
            "restore_seeks",
            "wall_seconds",
            "peak_rss_mb",
        ):
            assert key in record, key
        assert record["kind"] == "memory"
        assert record["n_backups"] == 3
        assert record["restore_backups"] == 2
        assert json.dumps(record)  # JSON-able end to end

    def test_pipeline_did_real_work(self, record):
        assert record["logical_bytes"] > 0
        assert record["containers_sealed"] > 2
        assert record["ingest_sim_seconds"] > 0
        assert record["restore_seeks"] >= 0

    def test_spill_actually_exercised(self, record):
        spill = record["spill"]
        assert spill["spilled"] == record["containers_sealed"]
        assert spill["evictions"] > 0
        assert spill["bytes_spilled"] > 0

    def test_peak_rss_measured_on_this_platform(self, record):
        # Linux/macOS both report ru_maxrss; 0 would defeat the gate
        assert record["peak_rss_mb"] > 0


class TestGate:
    def test_within_budget_passes(self, record):
        baseline = {"budget_rss_mb": record["peak_rss_mb"] * 10}
        assert check_memory_gate(record, baseline) is None

    def test_over_budget_fails(self, record):
        baseline = {"budget_rss_mb": 0.001}
        failure = check_memory_gate(record, baseline)
        assert failure is not None
        assert "exceeds" in failure

    def test_unmeasurable_rss_fails_loudly(self):
        failure = check_memory_gate(
            {"peak_rss_mb": 0.0}, {"budget_rss_mb": 100.0}
        )
        assert failure is not None
        assert "unmeasurable" in failure

    def test_missing_baseline_is_none(self, tmp_path):
        assert load_memory_budget(str(tmp_path / "nope.json")) is None

    def test_committed_baseline_loads(self):
        baseline = load_memory_budget("BENCH_memory.json")
        assert baseline is not None
        assert baseline["budget_rss_mb"] > 0
        assert baseline["memory"]["scale"] == "xlarge"
        assert baseline["memory"]["logical_bytes"] >= 10 * 10**9
