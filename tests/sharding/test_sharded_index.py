"""ShardedChunkIndex behind the DiskChunkIndex contract.

Pins the three contract planks of ``repro.sharding.index``: 1-shard
byte-identity (answers, stats, simulated clock), N-shard answer
equivalence, and the single live stats object all shards share. Plus
the mechanics: the routed ``_map`` view, ensemble ``page_of``/
``n_pages``, and the journaled flush/crash/load_recovered cycle.
"""

import numpy as np

from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.sharding import ShardedChunkIndex
from repro.storage.disk import DiskModel

from tests.conftest import TEST_PROFILE


def make_sharded(n_shards, **kwargs):
    disk = DiskModel(profile=TEST_PROFILE)
    kwargs.setdefault("expected_entries", 10_000)
    return ShardedChunkIndex.create(disk, n_shards=n_shards, **kwargs)


def drive(index):
    """A deterministic mixed workload; returns (answers, stats, clock)."""
    rng = np.random.default_rng(7)
    fps = [int(x) for x in rng.integers(1, 1 << 60, size=1024)]
    answers = []
    for i in range(0, len(fps), 128):
        chunk = fps[i : i + 128]
        answers.append([loc is not None for loc in index.lookup_many(chunk)])
        index.insert_many(
            chunk, [ChunkLocation(i, j) for j in range(len(chunk))]
        )
        index.flush()
    answers.append(
        [loc.cid for loc in index.lookup_many(fps) if loc is not None]
    )
    return answers, dict(vars(index.stats)), index.disk.stats.total_time_s


class TestOneShardDegeneracy:
    def test_byte_identical_to_plain_index(self):
        plain = drive(
            DiskChunkIndex(
                DiskModel(profile=TEST_PROFILE), expected_entries=10_000
            )
        )
        one = drive(make_sharded(1))
        assert plain == one

    def test_one_shard_exposes_the_real_map(self):
        index = make_sharded(1)
        assert index._map is index.shards[0]._map


class TestAnswerEquivalence:
    def test_n_shards_answer_equivalent(self):
        ref_answers, _, _ = drive(make_sharded(1))
        for n_shards in (2, 3, 5):
            answers, _, _ = drive(make_sharded(n_shards))
            assert answers == ref_answers

    def test_sorted_sweep_matches_routed_lookup(self):
        index = make_sharded(3)
        fps = [fp * 131 for fp in range(1, 400)]
        index.insert_many(
            fps, [ChunkLocation(fp % 9, 0) for fp in fps]
        )
        probes = fps[::2] + [10**15 + fp for fp in range(50)]
        assert index.lookup_batch_sorted(probes) == index.lookup_many(probes)

    def test_update_many_routes_to_owners(self):
        index = make_sharded(4)
        fps = list(range(100, 200))
        index.insert_many(fps, [ChunkLocation(0, 0) for _ in fps])
        index.update_many(fps, [ChunkLocation(fp, 1) for fp in fps])
        for fp in fps:
            assert index.peek(fp) == ChunkLocation(fp, 1)


class TestSharedStats:
    def test_all_shards_share_one_live_stats_object(self):
        index = make_sharded(4)
        for shard in index.shards:
            assert shard.stats is index.stats
        fps = list(range(1, 301))
        index.insert_many(fps, [ChunkLocation(0, 0) for _ in fps])
        index.lookup_many(fps)
        assert index.stats.inserts == 300
        assert index.stats.lookups == 300


class TestMapViewAndPages:
    def test_routed_map_view_matches_peek(self):
        index = make_sharded(3)
        fps = [fp * 271 for fp in range(1, 200)]
        index.insert_many(fps, [ChunkLocation(fp, 2) for fp in fps])
        for fp in fps:
            assert index._map.get(fp) == index.peek(fp)
            assert fp in index._map
        assert index._map.get(10**16) is None
        assert len(index._map) == len(fps)
        assert dict(index._map.items()) == {
            fp: ChunkLocation(fp, 2) for fp in fps
        }

    def test_page_of_is_a_stable_ensemble_page_id(self):
        index = make_sharded(3)
        assert index.n_pages == sum(s.n_pages for s in index.shards)
        for fp in range(1, 500, 17):
            page = index.page_of(fp)
            assert 0 <= page < index.n_pages
            assert page == index.page_of(fp)

    def test_shard_fill_and_len_agree(self):
        index = make_sharded(4)
        fps = list(range(1, 401))
        index.insert_many(fps, [ChunkLocation(0, 0) for _ in fps])
        assert sum(index.shard_fill()) == len(index) == 400
        assert index.disk_bytes == sum(s.disk_bytes for s in index.shards)


class TestCrashCycle:
    def test_crash_drops_unflushed_load_recovered_repartitions(self):
        index = make_sharded(3, journaled=True)
        index.insert_many(
            list(range(1, 51)), [ChunkLocation(0, 0) for _ in range(50)]
        )
        index.flush()
        index.insert_many(
            list(range(51, 101)), [ChunkLocation(1, 0) for _ in range(50)]
        )
        index.crash()
        assert len(index) == 50
        rebuilt = {fp: ChunkLocation(9, 9) for fp in range(200, 260)}
        assert index.load_recovered(rebuilt) == 60
        for fp in rebuilt:
            owner = index.router.shard_of(fp)
            assert fp in index.shards[owner]._map
