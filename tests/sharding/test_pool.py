"""The shard worker pool: real processes, journaled durability.

The deployment half of the sharding tentpole. Pins that the pool
routes identically to the in-process index (same router), that batched
commands scatter/gather correctly, and — the chaos-style half — that a
``kill -9`` of every worker loses exactly the unflushed tail: flushed
entries always survive ``ShardWorkerPool.recover``, and a torn journal
tail is truncated like a torn container.
"""

from repro.index.full_index import ChunkLocation
from repro.sharding import ShardWorkerPool
from repro.sharding.pool import _RECORD, _shard_dir, replay_journal
from repro.sharding.router import ShardRouter


def test_lookup_insert_roundtrip():
    with ShardWorkerPool(3) as pool:
        fps = [fp * 131 for fp in range(1, 200)]
        locs = [ChunkLocation(fp % 7, fp % 3) for fp in fps]
        assert pool.lookup_many(fps) == [None] * len(fps)
        assert pool.insert_many(fps, locs) == len(fps)
        assert pool.lookup_many(fps) == locs
        assert len(pool) == len(fps)
        # misses interleaved with hits scatter back to the right slots
        probes = [fps[0], 10**15, fps[1], 10**15 + 1]
        assert pool.lookup_many(probes) == [locs[0], None, locs[1], None]


def test_pool_routes_like_the_in_process_router():
    router = ShardRouter(4)
    with ShardWorkerPool(4) as pool:
        fps = [fp * 977 for fp in range(1, 300)]
        pool.insert_many(fps, [ChunkLocation(fp, 0) for fp in fps])
        pool.flush()
        assert pool.router.n_shards == router.n_shards
        for fp in fps[:50]:
            assert pool.router.shard_of(fp) == router.shard_of(fp)


def test_flushed_entries_survive_kill(tmp_path):
    root = str(tmp_path / "pool")
    pool = ShardWorkerPool(3, spill_root=root)
    durable_fps = list(range(1, 61))
    pool.insert_many(durable_fps, [ChunkLocation(fp, 0) for fp in durable_fps])
    assert pool.flush() == 60
    volatile_fps = list(range(61, 121))
    pool.insert_many(volatile_fps, [ChunkLocation(fp, 1) for fp in volatile_fps])
    pool.kill()  # crash before the second flush

    recovered = ShardWorkerPool.recover(root)
    assert set(recovered) == set(durable_fps)
    for fp in durable_fps:
        assert recovered[fp] == ChunkLocation(fp, 0)

    # a restarted pool replays its journals on start
    with ShardWorkerPool(3, spill_root=root) as pool2:
        assert len(pool2) == 60
        assert pool2.lookup_many(durable_fps) == [
            ChunkLocation(fp, 0) for fp in durable_fps
        ]
        assert pool2.lookup_many(volatile_fps) == [None] * 60


def test_torn_journal_tail_is_truncated(tmp_path):
    root = str(tmp_path / "pool")
    with ShardWorkerPool(2, spill_root=root) as pool:
        fps = list(range(1, 41))
        pool.insert_many(fps, [ChunkLocation(fp, 0) for fp in fps])
        pool.flush()
    # simulate a crash mid-append: chop a journal mid-record
    journal = _shard_dir(root, 0) / "journal.bin"
    blob = journal.read_bytes()
    assert len(blob) % _RECORD.size == 0 and blob
    journal.write_bytes(blob[: len(blob) - _RECORD.size // 2])
    entries = replay_journal(journal)
    assert len(entries) == len(blob) // _RECORD.size - 1
    # recover() sees the truncated shard plus the intact one
    recovered = ShardWorkerPool.recover(root)
    assert len(recovered) == 39


def test_recover_on_missing_root_is_empty(tmp_path):
    assert ShardWorkerPool.recover(str(tmp_path / "nope")) == {}
