"""Tenant isolation guarantees.

The tenancy model is structural: namespacing makes cross-tenant index
keys disjoint, and the store set gives every tenant its own containers.
These tests pin the two halves of the ISSUE's isolation contract —
interleaving tenants changes nothing a tenant can observe (per-tenant
recipes identical to a solo run), and with isolation on no index entry
or container is ever shared across tenants.
"""

import numpy as np

from repro.sharding import (
    GlobalLRUAllocator,
    IngestFrontend,
    ShardedChunkIndex,
    TenantNamespace,
    TenantStoreSet,
    TenantStream,
)
from repro.storage.disk import DiskModel
from repro.storage.store import StoreConfig
from repro.workloads.fs_model import ChurnProfile
from repro.workloads.generators import derive, single_user_stream

from tests.conftest import TEST_PROFILE


def tenant_jobs(name, seed, n_generations=3):
    return list(
        single_user_stream(
            n_generations=n_generations,
            fs_bytes=1 << 20,
            seed=seed,
            churn=ChurnProfile(modify_frac=0.1, file_create_frac=0.01),
            label=name,
        )
    )


def make_frontend(n_shards=2, isolated=True, cache_only=False):
    disk = DiskModel(profile=TEST_PROFILE)
    index = ShardedChunkIndex.create(
        disk, n_shards=n_shards, expected_entries=50_000
    )
    stores = TenantStoreSet(
        disk,
        StoreConfig(container_bytes=64 * 1024, seal_seeks=0),
        isolated=isolated,
    )
    frontend = IngestFrontend(
        index,
        stores,
        GlobalLRUAllocator(4096),
        isolated=isolated,
        cache_only=cache_only,
        batch_chunks=128,
    )
    return frontend


def recipe_tuples(report):
    return [
        (
            r.generation,
            r.label,
            tuple(r.fingerprints.tolist()),
            tuple(r.containers.tolist()),
        )
        for r in report.recipes
    ]


class TestNamespace:
    def test_wrap_is_a_stable_per_tenant_bijection(self):
        ns = TenantNamespace("alpha")
        fps = [int(x) for x in np.random.default_rng(3).integers(1, 1 << 60, 500)]
        wrapped = [ns.wrap(fp) for fp in fps]
        assert len(set(wrapped)) == len(fps)
        assert wrapped == [TenantNamespace("alpha").wrap(fp) for fp in fps]
        assert wrapped == ns.wrap_many(fps).tolist()

    def test_tenants_occupy_disjoint_key_spaces(self):
        fps = list(range(1, 2001))
        a = set(TenantNamespace("alpha").wrap_many(fps).tolist())
        b = set(TenantNamespace("beta").wrap_many(fps).tolist())
        assert not (a & b)

    def test_unisolated_namespace_is_the_identity(self):
        ns = TenantNamespace("alpha", isolated=False)
        fps = list(range(1, 100))
        assert [ns.wrap(fp) for fp in fps] == fps
        assert ns.wrap_many(fps).tolist() == fps


class TestStoreSet:
    def test_isolated_tenants_get_distinct_stores(self):
        stores = TenantStoreSet(
            DiskModel(profile=TEST_PROFILE),
            StoreConfig(container_bytes=64 * 1024, seal_seeks=0),
        )
        assert stores.store_for("a") is not stores.store_for("b")
        assert stores.store_for("a") is stores.store_for("a")
        assert [t for t, _ in stores.items()] == ["a", "b"]

    def test_unisolated_tenants_share_one_store(self):
        stores = TenantStoreSet(
            DiskModel(profile=TEST_PROFILE),
            StoreConfig(container_bytes=64 * 1024, seal_seeks=0),
            isolated=False,
        )
        assert stores.store_for("a") is stores.store_for("b")
        assert [t for t, _ in stores.items()] == ["*"]


class TestInterleavingInvariance:
    def test_interleaved_run_matches_solo_runs(self):
        """Multiplexing tenants changes nothing a tenant can observe:
        recipes (exact dedup decisions and container placement) are
        identical to running each tenant alone."""
        streams = [
            TenantStream("alpha", tenant_jobs("alpha", derive(11, "a"))),
            TenantStream("beta", tenant_jobs("beta", derive(11, "b"))),
        ]
        together = make_frontend().run(streams)
        for stream in streams:
            solo = make_frontend().run([stream])
            assert recipe_tuples(together[stream.tenant]) == recipe_tuples(
                solo[stream.tenant]
            )
            assert (
                together[stream.tenant].written_bytes
                == solo[stream.tenant].written_bytes
            )

    def test_interleaving_invariance_holds_at_any_shard_count(self):
        streams = [
            TenantStream("alpha", tenant_jobs("alpha", derive(11, "a"))),
            TenantStream("beta", tenant_jobs("beta", derive(11, "b"))),
        ]
        ref = make_frontend(n_shards=1).run(streams)
        for n_shards in (2, 4):
            got = make_frontend(n_shards=n_shards).run(streams)
            for tenant in ("alpha", "beta"):
                assert recipe_tuples(got[tenant]) == recipe_tuples(ref[tenant])


class TestCrossTenantIsolation:
    def test_identical_bytes_never_dedup_across_tenants(self):
        """Two tenants ingesting the *same* jobs share no index entries
        and no containers — each writes its own copy."""
        jobs = tenant_jobs("shared", derive(23, "same"))
        streams = [
            TenantStream("alpha", jobs),
            TenantStream("beta", jobs),
        ]
        frontend = make_frontend()
        reports = frontend.run(streams)
        # both tenants wrote the full unique set: no cross-tenant dedup
        assert (
            reports["alpha"].written_bytes == reports["beta"].written_bytes > 0
        )
        # disjoint namespaced index keys
        ns_a = frontend._namespace("alpha")
        ns_b = frontend._namespace("beta")
        fps = {fp for job in jobs for fp in job.stream.fps.tolist()}
        keys_a = {ns_a.wrap(fp) for fp in fps}
        keys_b = {ns_b.wrap(fp) for fp in fps}
        assert not (keys_a & keys_b)
        # separate stores, and no container holds both tenants' chunks
        store_a = frontend.stores.store_for("alpha")
        store_b = frontend.stores.store_for("beta")
        assert store_a is not store_b
        in_a = {
            fp for cid in store_a.cids() for fp in store_a.get(cid).fingerprints
        }
        in_b = {
            fp for cid in store_b.cids() for fp in store_b.get(cid).fingerprints
        }
        assert in_a == keys_a
        assert in_b == keys_b

    def test_unisolated_tenants_do_share(self):
        jobs = tenant_jobs("shared", derive(23, "same"))
        streams = [TenantStream("alpha", jobs), TenantStream("beta", jobs)]
        frontend = make_frontend(isolated=False)
        reports = frontend.run(streams)
        # alpha goes first in every round-robin turn, so beta's copy
        # dedups against alpha's — global dedup across tenants
        assert reports["beta"].written_bytes == 0
        assert reports["alpha"].written_bytes > 0
