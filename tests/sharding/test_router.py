"""The consistent-hash router's invariants.

The routing contract everything else builds on: pure/deterministic
``shard_of``, the batch path agreeing with the scalar path, partition
covering a batch exactly once, 1-shard bypass, and a bounded fill
imbalance at the vnode default.
"""

import numpy as np
import pytest

from repro.sharding.router import ShardRouter, _mix, _mix_scalar, _ring_point


class TestRingPoints:
    def test_ring_points_are_full_width_and_stable(self):
        pts = [_ring_point(s, r) for s in range(4) for r in range(64)]
        assert len(set(pts)) == len(pts)
        assert all(0 <= p < 1 << 64 for p in pts)
        # the top half of the ring must be populated (the 63-bit
        # derive_seed bug left it empty and skewed every partition)
        assert any(p >= 1 << 63 for p in pts)
        assert pts == [_ring_point(s, r) for s in range(4) for r in range(64)]

    def test_mix_scalar_matches_vectorized_mix(self):
        fps = [0, 1, 2**63, 2**64 - 1, 123456789, 0xDEADBEEF]
        vec = _mix(np.asarray(fps, dtype=np.uint64))
        assert [int(v) for v in vec] == [_mix_scalar(fp) for fp in fps]


class TestRouting:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, vnodes=0)

    def test_one_shard_bypasses_the_ring(self):
        router = ShardRouter(1)
        assert router.shard_of(12345) == 0
        assert router.route_many(range(100)).tolist() == [0] * 100

    def test_shard_of_is_deterministic_and_in_range(self):
        router = ShardRouter(5)
        fps = list(range(1, 2000, 7))
        owners = [router.shard_of(fp) for fp in fps]
        assert owners == [router.shard_of(fp) for fp in fps]
        assert all(0 <= o < 5 for o in owners)
        # a fresh router with the same parameters routes identically
        assert owners == [ShardRouter(5).shard_of(fp) for fp in fps]

    def test_batch_routing_matches_scalar(self):
        router = ShardRouter(7)
        fps = list(range(1, 5000, 11))
        batch = router.route_many(fps)
        assert batch.tolist() == [router.shard_of(fp) for fp in fps]

    def test_partition_covers_batch_exactly_once(self):
        router = ShardRouter(4)
        fps = [fp * 977 for fp in range(1, 800)]
        parts = router.partition(fps)
        seen = []
        for shard, (positions, shard_fps) in parts.items():
            assert 0 <= shard < 4
            assert len(positions) == len(shard_fps)
            for pos, fp in zip(positions, shard_fps):
                assert fps[pos] == fp
                assert router.shard_of(fp) == shard
            seen.extend(positions)
        assert sorted(seen) == list(range(len(fps)))

    def test_partition_preserves_in_shard_order(self):
        router = ShardRouter(3)
        fps = [fp * 31 for fp in range(1, 500)]
        for positions, _ in router.partition(fps).values():
            assert positions == sorted(positions)


class TestFillBalance:
    def test_empty_and_even_fills(self):
        router = ShardRouter(3)
        assert router.fill_balance([0, 0, 0]) == 1.0
        assert router.fill_balance([10, 10, 10]) == 1.0
        assert router.fill_balance([30, 0, 0]) == 3.0

    def test_default_vnodes_keep_the_ring_balanced(self):
        rng = np.random.default_rng(2012)
        fps = [int(x) for x in rng.integers(1, 1 << 62, size=40_000)]
        for n_shards in (2, 4, 8):
            router = ShardRouter(n_shards)
            owners = router.route_many(fps)
            counts = np.bincount(owners, minlength=n_shards)
            assert router.fill_balance(counts.tolist()) < 1.25
