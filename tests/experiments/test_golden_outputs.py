"""Golden-output regression: the default tables are pinned byte-for-byte.

``repro all`` is the repo's headline artifact; its fig4/fig6 tables at
the small preset are committed under ``tests/experiments/golden/`` and
asserted byte-identical here. Any change to the default ingest or
restore path — however well-intentioned — that moves a single digit
fails this test.

If the change is *intentional*, regenerate and commit the snapshots::

    PYTHONPATH=src python tests/experiments/golden/regen.py

and explain the move in the commit message.
"""

import difflib
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.suite import run_suite

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
FIGURES = ("fig4", "fig6")


@pytest.fixture(scope="module")
def suite_results():
    results, errors = run_suite(list(FIGURES), ExperimentConfig.small(), jobs=1)
    assert not errors, errors
    return results


class TestGoldenTables:
    @pytest.mark.parametrize("name", FIGURES)
    def test_table_byte_identical(self, suite_results, name):
        golden_path = GOLDEN_DIR / f"{name}_small.txt"
        expected = golden_path.read_text()
        actual = suite_results[name].table() + "\n"
        if actual != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    actual.splitlines(),
                    fromfile=str(golden_path),
                    tofile=f"{name} (current)",
                    lineterm="",
                )
            )
            pytest.fail(
                f"{name} table drifted from its golden snapshot; if the "
                f"change is intentional run tests/experiments/golden/"
                f"regen.py and commit the diff:\n{diff}"
            )

    def test_byte_level_fig4_byte_identical(self):
        """The byte-level ingest variant (bytes -> CDC -> fingerprint ->
        engines) is pinned too: chunker or fingerprint changes that move
        its cuts show up here as table drift."""
        from repro.experiments.common import clear_memo

        clear_memo()
        try:
            results, errors = run_suite(
                ["fig4"], ExperimentConfig.small().with_(byte_level=True), jobs=1
            )
        finally:
            clear_memo()
        assert not errors, errors
        golden_path = GOLDEN_DIR / "fig4_small_bytes.txt"
        expected = golden_path.read_text()
        actual = results["fig4"].table() + "\n"
        if actual != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    actual.splitlines(),
                    fromfile=str(golden_path),
                    tofile="fig4 --bytes (current)",
                    lineterm="",
                )
            )
            pytest.fail(
                "byte-level fig4 table drifted from its golden snapshot; "
                "if intentional run tests/experiments/golden/regen.py:"
                f"\n{diff}"
            )

    def test_frontier_byte_identical(self):
        """The policy-frontier table (every engine, maintenance driven)
        is pinned too — it is the PR's acceptance artifact, and its
        verification notes (RevDedup beats DeFrag on latest-backup seeks,
        loses on total cost) must stay True by construction."""
        results, errors = run_suite(["frontier"], ExperimentConfig.small(), jobs=1)
        assert not errors, errors
        table = results["frontier"].table(fmt="{:.2f}") + "\n"
        assert "revdedup_latest_seeks_lt_defrag" in table
        assert "True" in table and "False" not in table
        golden_path = GOLDEN_DIR / "frontier_small.txt"
        expected = golden_path.read_text()
        if table != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    table.splitlines(),
                    fromfile=str(golden_path),
                    tofile="frontier (current)",
                    lineterm="",
                )
            )
            pytest.fail(
                "frontier table drifted from its golden snapshot; if "
                "intentional run tests/experiments/golden/regen.py:"
                f"\n{diff}"
            )

    def test_extended_fig4_byte_identical(self):
        """fig4 with ``--extended-engines`` covers RevDedup and Hybrid
        columns; pinned so the maintenance engines' ingest path cannot
        drift silently either."""
        results, errors = run_suite(
            ["fig4"], ExperimentConfig.small().with_(extended_engines=True), jobs=1
        )
        assert not errors, errors
        table = results["fig4"].table() + "\n"
        assert "RevDedup" in table and "Hybrid" in table
        golden_path = GOLDEN_DIR / "fig4_small_extended.txt"
        expected = golden_path.read_text()
        if table != expected:
            diff = "\n".join(
                difflib.unified_diff(
                    expected.splitlines(),
                    table.splitlines(),
                    fromfile=str(golden_path),
                    tofile="fig4 --extended-engines (current)",
                    lineterm="",
                )
            )
            pytest.fail(
                "extended fig4 table drifted from its golden snapshot; "
                "if intentional run tests/experiments/golden/regen.py:"
                f"\n{diff}"
            )

    def test_default_fig6_has_no_restore_columns(self, suite_results):
        """The restore-subsystem columns only appear under non-default
        restore knobs; the recorded default table must not grow them."""
        table = suite_results["fig6"].table()
        assert "seeks" not in table
        assert "restore:" not in table

    def test_golden_files_present(self):
        for name in FIGURES:
            assert (GOLDEN_DIR / f"{name}_small.txt").is_file()
        assert (GOLDEN_DIR / "fig4_small_bytes.txt").is_file()
        assert (GOLDEN_DIR / "frontier_small.txt").is_file()
        assert (GOLDEN_DIR / "fig4_small_extended.txt").is_file()
