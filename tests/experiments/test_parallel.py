"""The parallel grid runner: determinism, failure isolation, fan-out.

The load-bearing guarantee is byte-identical output: a ``--jobs N`` run
must produce exactly the tables, metric snapshots, and event streams of
the serial run. The cheap cells the process-pool tests use live at
module top level so ``"module:function"`` references resolve inside
worker processes.
"""

import time

import pytest

from repro.experiments import common, fig4
from repro.experiments.config import ExperimentConfig
from repro.obs import ListEventSink, Observability, obs_session
from repro.parallel import CellSpec, cell_seed, resolve, run_grid
from repro.parallel.grid import _dedupe


@pytest.fixture(autouse=True)
def _clear():
    yield
    common.clear_memo()


# ----------------------------------------------------------------------
# cheap cell functions for the scheduler tests (must be importable in
# workers, so: top level, referenced as "tests.experiments.test_parallel:…")
# ----------------------------------------------------------------------


def echo_cell(config, tag="x"):
    import random

    import numpy as np

    # expose the per-cell seeded RNG draws so tests can prove both venues
    # seed identically
    return {"tag": tag, "py": random.random(), "np": float(np.random.random())}


def boom_cell(config):
    raise RuntimeError("injected cell failure")


def sleepy_cell(config):
    time.sleep(30)


def flaky_cell(config, sentinel=None):
    from pathlib import Path

    p = Path(sentinel)
    if not p.exists():
        p.write_text("second attempt will pass")
        raise RuntimeError("first attempt fails")
    return "recovered"


def _echo_spec(key, tag="x", seed=7):
    return CellSpec(
        key=key,
        fn="tests.experiments.test_parallel:echo_cell",
        config=ExperimentConfig.small().with_(seed=seed),
        kwargs={"tag": tag},
    )


class TestPrimitives:
    def test_cell_seed_stable_and_distinct(self):
        a = cell_seed(("group", "DeFrag", "abc"), base_seed=1)
        assert a == cell_seed(("group", "DeFrag", "abc"), base_seed=1)
        assert a != cell_seed(("group", "DeFrag", "abc"), base_seed=2)
        assert a != cell_seed(("group", "DDFS-Like", "abc"), base_seed=1)
        assert 0 <= a < 2**64

    def test_resolve(self):
        assert resolve("tests.experiments.test_parallel:echo_cell") is echo_cell
        with pytest.raises(ValueError):
            resolve("no_colon_here")

    def test_dedupe_first_wins(self):
        a, b = _echo_spec(("k",)), _echo_spec(("k",))
        assert _dedupe([a, b]) == [a]

    def test_dedupe_conflicting_work_raises(self):
        a = _echo_spec(("k",), tag="one")
        b = _echo_spec(("k",), tag="two")
        with pytest.raises(ValueError, match="different work"):
            _dedupe([a, b])


class TestVenueEquivalence:
    def test_workers_match_inline_exactly(self):
        specs = [_echo_spec((f"cell{i}",), tag=f"t{i}") for i in range(4)]
        serial = run_grid(specs, jobs=1)
        parallel = run_grid(specs, jobs=2)
        assert serial.keys() == parallel.keys()
        for key in serial:
            assert serial[key].value == parallel[key].value

    def test_distinct_cells_get_distinct_rng_streams(self):
        results = run_grid([_echo_spec((f"cell{i}",)) for i in range(3)], jobs=1)
        draws = {r.value["py"] for r in results.values()}
        assert len(draws) == 3


class TestFailureIsolation:
    def test_failed_cell_recorded_not_raised(self):
        bad = CellSpec(
            key=("bad",),
            fn="tests.experiments.test_parallel:boom_cell",
            config=ExperimentConfig.small(),
        )
        results = run_grid([bad, _echo_spec(("good",))], jobs=2)
        assert not results[("bad",)].ok
        assert "injected cell failure" in results[("bad",)].error
        assert results[("bad",)].attempts == 2  # default retries=1
        assert "injected cell failure" in results[("bad",)].describe_failure()
        assert results[("good",)].ok

    def test_retry_recovers_transient_failure(self, tmp_path):
        flaky = CellSpec(
            key=("flaky",),
            fn="tests.experiments.test_parallel:flaky_cell",
            config=ExperimentConfig.small(),
            kwargs={"sentinel": str(tmp_path / "sentinel")},
        )
        results = run_grid([flaky, _echo_spec(("pad",))], jobs=2)
        assert results[("flaky",)].ok
        assert results[("flaky",)].value == "recovered"
        assert results[("flaky",)].attempts == 2

    def test_timeout_kills_and_reports(self):
        slow = CellSpec(
            key=("slow",),
            fn="tests.experiments.test_parallel:sleepy_cell",
            config=ExperimentConfig.small(),
        )
        t0 = time.monotonic()
        results = run_grid(
            [slow, _echo_spec(("quick",))], jobs=2, timeout_s=0.5, retries=0
        )
        assert time.monotonic() - t0 < 25
        assert not results[("slow",)].ok
        assert "timed out" in results[("slow",)].error
        assert results[("quick",)].ok

    def test_inline_failure_matches_worker_failure(self):
        bad = CellSpec(
            key=("bad",),
            fn="tests.experiments.test_parallel:boom_cell",
            config=ExperimentConfig.small(),
        )
        inline = run_grid([bad], jobs=1)
        assert not inline[("bad",)].ok
        assert inline[("bad",)].attempts == 2


class TestWarmHook:
    def test_parent_precomputes_shared_workload(self):
        common.clear_memo()
        cfg = ExperimentConfig.small()
        run_grid(
            [common.group_cell_spec(cfg, "DeFrag"),
             common.group_cell_spec(cfg, "SiLo-Like")],
            jobs=2,
        )
        # the warm hook ran in the parent: the prepared-workload memo is
        # populated here, not just inside the (exited) workers
        assert common._PREP_MEMO


class TestFigureEquivalence:
    """fig4 (real simulation cells) serial vs parallel, with obs on."""

    def _run(self, jobs):
        common.clear_memo()
        cfg = ExperimentConfig.small()
        sink = ListEventSink()
        try:
            with obs_session(Observability(events=sink)) as obs:
                result = fig4.run(cfg, jobs=jobs)
        finally:
            common.clear_memo()
        return result, obs.registry.snapshot(), sink.events

    def test_jobs2_bytes_equal_serial(self):
        res1, snap1, events1 = self._run(jobs=1)
        res2, snap2, events2 = self._run(jobs=2)
        assert res1.table() == res2.table()
        assert res1.series == res2.series
        assert res1.notes == res2.notes
        assert snap1 == snap2
        assert events1 == events2
        # the equality above must not be vacuous for the time-series
        # kind: generation-boundary sampling actually ran in the workers
        assert snap1["timeseries"]
        assert any(ts["samples"] for ts in snap1["timeseries"].values())

    def test_telemetry_on_off_table_identical(self):
        """The twin-run contract at figure level: an obs session (with
        time-series sampling) must leave the result table byte-identical
        to the obs-off run."""
        common.clear_memo()
        cfg = ExperimentConfig.small()
        plain = fig4.run(cfg, jobs=1)
        common.clear_memo()
        try:
            with obs_session(Observability(events=ListEventSink())) as obs:
                traced = fig4.run(cfg, jobs=1)
        finally:
            common.clear_memo()
        assert traced.table() == plain.table()
        assert traced.series == plain.series
        # ...while telemetry really was recorded
        assert obs.registry.snapshot()["timeseries"]


class TestFigureResultFailures:
    def test_failed_cells_render_in_table_and_nan_series(self, monkeypatch):
        real = common.group_cell

        def defrag_only_fails(config, engine):
            if engine == "DeFrag":
                raise RuntimeError("injected DeFrag failure")
            return real(config, engine)

        # cells resolve "repro.experiments.common:group_cell" at run
        # time, so patching the module attribute reaches inline execution
        monkeypatch.setattr(common, "group_cell", defrag_only_fails)
        common.clear_memo()
        result = fig4.run(ExperimentConfig.small(), jobs=1)
        assert result.failures
        assert "# FAILED cell" in result.table()
        import math

        assert all(math.isnan(v) for v in result.series["DeFrag"])
        assert not any(math.isnan(v) for v in result.series["DDFS-Like"])
