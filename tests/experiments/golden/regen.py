"""Regenerate the golden experiment tables.

Run from the repo root after an *intentional* output change::

    PYTHONPATH=src python tests/experiments/golden/regen.py

then review the diff and commit the updated snapshots together with the
change that moved them. tests/experiments/test_golden_outputs.py pins
these files byte-for-byte.
"""

from __future__ import annotations

import pathlib

from repro.experiments.config import ExperimentConfig
from repro.experiments.suite import run_suite

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent
FIGURES = ("fig4", "fig6")


def regenerate() -> None:
    config = ExperimentConfig.small()
    results, errors = run_suite(list(FIGURES), config, jobs=1)
    if errors:
        raise SystemExit(f"cannot regenerate, experiments failed: {errors}")
    for name in FIGURES:
        path = GOLDEN_DIR / f"{name}_small.txt"
        path.write_text(results[name].table() + "\n")
        print(f"wrote {path}")
    # the byte-level ingest variant (bytes -> CDC -> fingerprint -> engines)
    byte_results, byte_errors = run_suite(
        ["fig4"], config.with_(byte_level=True), jobs=1
    )
    if byte_errors:
        raise SystemExit(f"cannot regenerate, experiments failed: {byte_errors}")
    path = GOLDEN_DIR / "fig4_small_bytes.txt"
    path.write_text(byte_results["fig4"].table() + "\n")
    print(f"wrote {path}")
    # the placement-policy frontier (all engines, maintenance driven)
    frontier_results, frontier_errors = run_suite(["frontier"], config, jobs=1)
    if frontier_errors:
        raise SystemExit(f"cannot regenerate, experiments failed: {frontier_errors}")
    path = GOLDEN_DIR / "frontier_small.txt"
    path.write_text(frontier_results["frontier"].table(fmt="{:.2f}") + "\n")
    print(f"wrote {path}")
    # fig4 with the two maintenance engines riding along
    ext_results, ext_errors = run_suite(
        ["fig4"], config.with_(extended_engines=True), jobs=1
    )
    if ext_errors:
        raise SystemExit(f"cannot regenerate, experiments failed: {ext_errors}")
    path = GOLDEN_DIR / "fig4_small_extended.txt"
    path.write_text(ext_results["fig4"].table() + "\n")
    print(f"wrote {path}")
    # the multi-tenant cache-allocation table (HPDedup effect)
    tenants_results, tenants_errors = run_suite(["tenants"], config, jobs=1)
    if tenants_errors:
        raise SystemExit(f"cannot regenerate, experiments failed: {tenants_errors}")
    path = GOLDEN_DIR / "tenants_small.txt"
    path.write_text(tenants_results["tenants"].table(fmt="{:.2f}") + "\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()
