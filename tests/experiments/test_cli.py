import pytest

from repro.cli import build_parser, main
from repro.experiments.common import clear_memo


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert args.scale == "default"
        assert args.seed is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "small", "--seed", "9", "--alpha", "0.3"]
        )
        assert args.scale == "small"
        assert args.seed == 9
        assert args.alpha == 0.3

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_fig2_small(self, capsys):
        assert main(["fig2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Fig2" in out
        assert "MB/s" in out

    def test_alpha_sweep_small(self, capsys):
        assert main(["alpha-sweep", "--scale", "small"]) == 0
        assert "AblationAlpha" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main(["fig2", "--scale", "small", "--seed", "1"])
        a = capsys.readouterr().out
        main(["fig2", "--scale", "small", "--seed", "2"])
        b = capsys.readouterr().out
        assert a != b
