import pytest

from repro.cli import build_parser, main
from repro.experiments.common import clear_memo


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert args.scale == "default"
        assert args.seed is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "small", "--seed", "9", "--alpha", "0.3"]
        )
        assert args.scale == "small"
        assert args.seed == 9
        assert args.alpha == 0.3

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_jobs_and_cell_timeout(self):
        args = build_parser().parse_args(["all", "--jobs", "4", "--cell-timeout", "30"])
        assert args.jobs == 4
        assert args.cell_timeout == 30.0

    def test_jobs_defaults_to_serial(self):
        args = build_parser().parse_args(["fig4"])
        assert args.jobs == 1
        assert args.cell_timeout is None


class TestTraceParser:
    def test_trace_takes_target_and_events(self):
        args = build_parser().parse_args(
            ["trace", "fig4", "--scale", "small", "--events", "out.jsonl"]
        )
        assert args.experiment == "trace"
        assert args.target == "fig4"
        assert args.events == "out.jsonl"

    def test_stats_last(self):
        args = build_parser().parse_args(["stats", "--last"])
        assert args.experiment == "stats"
        assert args.last is True

    def test_trace_perfetto_flag(self):
        args = build_parser().parse_args(
            ["trace", "fig2", "--perfetto", "trace.json"]
        )
        assert args.perfetto == "trace.json"

    def test_dash_flags(self):
        args = build_parser().parse_args(
            ["dash", "--stats", "a.json", "--stats", "b.json", "--out", "d.html"]
        )
        assert args.experiment == "dash"
        assert args.stats == ["a.json", "b.json"]
        assert args.out == "d.html"

    def test_dash_defaults(self):
        args = build_parser().parse_args(["dash"])
        assert args.stats is None
        assert args.out == "dash.html"

    def test_verbosity_flags(self):
        assert build_parser().parse_args(["-vv", "fig2"]).verbose == 2
        assert build_parser().parse_args(["-q", "fig2"]).quiet is True

    def test_trace_requires_known_target(self):
        with pytest.raises(SystemExit):
            main(["trace"])
        with pytest.raises(SystemExit):
            main(["trace", "fig99"])


class TestTraceMain:
    def test_trace_writes_events_and_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        events = tmp_path / "events.jsonl"
        assert main(
            ["trace", "fig2", "--scale", "small", "--events", str(events)]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig2" in out
        assert "phase spans" in out
        assert "wrote" in out and "events" in out
        assert events.exists()
        assert (tmp_path / ".repro_stats.json").exists()

        from repro.obs import read_jsonl

        spans = read_jsonl(events, type="segment_span")
        assert spans
        assert {"engine", "generation", "segment"} <= set(spans[0])

    def test_trace_exports_perfetto(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.chdir(tmp_path)
        trace = tmp_path / "trace.json"
        assert main(
            ["trace", "fig2", "--scale", "small", "--perfetto", str(trace)]
        ) == 0
        assert "trace slices" in capsys.readouterr().out
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        assert all(e["ph"] in ("X", "M") for e in doc["traceEvents"])
        # provenance rides in otherData
        assert doc["otherData"]["target"] == "fig2"

    def test_trace_snapshot_carries_manifest(self, tmp_path, monkeypatch, capsys):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig2", "--scale", "small"]) == 0
        data = json.loads((tmp_path / ".repro_stats.json").read_text())
        assert data["manifest"]["target"] == "fig2"
        assert data["manifest"]["seed"] is not None
        assert "timeseries" in data["metrics"]

    def test_stats_renders_last_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig2", "--scale", "small"]) == 0
        capsys.readouterr()
        assert main(["stats", "--last"]) == 0
        out = capsys.readouterr().out
        assert "phase spans" in out
        assert "== run ==" in out
        assert "time series" in out

    def test_stats_renders_pre_manifest_snapshot(
        self, tmp_path, monkeypatch, capsys
    ):
        """Bare snapshots from older checkouts still render."""
        import json

        monkeypatch.chdir(tmp_path)
        (tmp_path / ".repro_stats.json").write_text(
            json.dumps({"counters": {"c": 1}})
        )
        assert main(["stats", "--last"]) == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "== run ==" not in out

    def test_dash_from_trace_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig2", "--scale", "small"]) == 0
        capsys.readouterr()
        assert main(["dash", "--out", "d.html"]) == 0
        assert "dashboard written" in capsys.readouterr().out
        text = (tmp_path / "d.html").read_text()
        assert text.startswith("<!DOCTYPE html>")
        assert "Run: fig2" in text
        assert "<script" not in text

    def test_dash_without_snapshots(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["dash"]) == 0
        assert (tmp_path / "dash.html").exists()

    def test_stats_without_snapshot_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["stats", "--last"]) == 1
        assert "trace" in capsys.readouterr().out


class TestMain:
    def test_fig2_small(self, capsys):
        assert main(["fig2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Fig2" in out
        assert "MB/s" in out

    def test_alpha_sweep_small(self, capsys):
        assert main(["alpha-sweep", "--scale", "small"]) == 0
        assert "AblationAlpha" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main(["fig2", "--scale", "small", "--seed", "1"])
        a = capsys.readouterr().out
        main(["fig2", "--scale", "small", "--seed", "2"])
        b = capsys.readouterr().out
        assert a != b

    def test_jobs2_output_identical_to_serial(self, capsys):
        assert main(["fig4", "--scale", "small"]) == 0
        serial = capsys.readouterr().out
        clear_memo()
        assert main(["fig4", "--scale", "small", "--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial


class TestMainFailurePaths:
    def test_failed_cell_marks_table_and_exit_nonzero(self, monkeypatch, capsys):
        """A cell raising mid-run must surface as a marked-failed row and
        a nonzero exit from `repro all`, not an exception."""
        from repro.experiments import common, suite

        real = common.group_cell

        def defrag_fails(config, engine):
            if engine == "DeFrag":
                raise RuntimeError("injected mid-cell failure")
            return real(config, engine)

        monkeypatch.setattr(common, "group_cell", defrag_fails)
        monkeypatch.setattr(suite, "ALL_FIGURES", ("fig4",))
        assert main(["all", "--scale", "small"]) == 1
        out = capsys.readouterr().out
        assert "# FAILED cell" in out

    def test_every_cell_failing_reports_experiment_failed(
        self, monkeypatch, capsys
    ):
        from repro.experiments import common, suite

        def always_fails(config, engine):
            raise RuntimeError("nothing works")

        monkeypatch.setattr(common, "group_cell", always_fails)
        monkeypatch.setattr(suite, "ALL_FIGURES", ("fig4",))
        assert main(["all", "--scale", "small"]) == 1
        assert "FAILED fig4" in capsys.readouterr().out
