import pytest

from repro.cli import build_parser, main
from repro.experiments.common import clear_memo


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["fig2"])
        assert args.experiment == "fig2"
        assert args.scale == "default"
        assert args.seed is None

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig4", "--scale", "small", "--seed", "9", "--alpha", "0.3"]
        )
        assert args.scale == "small"
        assert args.seed == 9
        assert args.alpha == 0.3

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestTraceParser:
    def test_trace_takes_target_and_events(self):
        args = build_parser().parse_args(
            ["trace", "fig4", "--scale", "small", "--events", "out.jsonl"]
        )
        assert args.experiment == "trace"
        assert args.target == "fig4"
        assert args.events == "out.jsonl"

    def test_stats_last(self):
        args = build_parser().parse_args(["stats", "--last"])
        assert args.experiment == "stats"
        assert args.last is True

    def test_verbosity_flags(self):
        assert build_parser().parse_args(["-vv", "fig2"]).verbose == 2
        assert build_parser().parse_args(["-q", "fig2"]).quiet is True

    def test_trace_requires_known_target(self):
        with pytest.raises(SystemExit):
            main(["trace"])
        with pytest.raises(SystemExit):
            main(["trace", "fig99"])


class TestTraceMain:
    def test_trace_writes_events_and_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        events = tmp_path / "events.jsonl"
        assert main(
            ["trace", "fig2", "--scale", "small", "--events", str(events)]
        ) == 0
        out = capsys.readouterr().out
        assert "Fig2" in out
        assert "phase spans" in out
        assert "wrote" in out and "events" in out
        assert events.exists()
        assert (tmp_path / ".repro_stats.json").exists()

        from repro.obs import read_jsonl

        spans = read_jsonl(events, type="segment_span")
        assert spans
        assert {"engine", "generation", "segment"} <= set(spans[0])

    def test_stats_renders_last_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig2", "--scale", "small"]) == 0
        capsys.readouterr()
        assert main(["stats", "--last"]) == 0
        out = capsys.readouterr().out
        assert "phase spans" in out

    def test_stats_without_snapshot_fails(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["stats", "--last"]) == 1
        assert "trace" in capsys.readouterr().out


class TestMain:
    def test_fig2_small(self, capsys):
        assert main(["fig2", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Fig2" in out
        assert "MB/s" in out

    def test_alpha_sweep_small(self, capsys):
        assert main(["alpha-sweep", "--scale", "small"]) == 0
        assert "AblationAlpha" in capsys.readouterr().out

    def test_seed_changes_output(self, capsys):
        main(["fig2", "--scale", "small", "--seed", "1"])
        a = capsys.readouterr().out
        main(["fig2", "--scale", "small", "--seed", "2"])
        b = capsys.readouterr().out
        assert a != b
