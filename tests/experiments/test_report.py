"""Markdown report generator tests + DeFrag telemetry extras."""

import pytest

from repro.experiments.common import clear_memo
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import generate_markdown, write_report


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


@pytest.fixture(scope="module")
def report_text():
    text = generate_markdown(ExperimentConfig.small())
    clear_memo()
    return text


class TestReport:
    def test_contains_every_figure(self, report_text):
        for fig in ("Fig2", "Fig3", "Fig4", "Fig5", "Fig6"):
            assert fig in report_text

    def test_contains_config(self, report_text):
        assert "## Configuration" in report_text
        assert "alpha: 0.1" in report_text

    def test_markdown_tables_wellformed(self, report_text):
        lines = report_text.splitlines()
        header_rows = [i for i, l in enumerate(lines) if l.startswith("| generation")]
        assert header_rows
        for i in header_rows:
            assert lines[i + 1].startswith("|---")
            assert lines[i + 2].startswith("| 1 ")

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "r.md", ExperimentConfig.small())
        assert path.read_text().startswith("# DeFrag reproduction report")

    def test_cli_report(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["report", "--scale", "small", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "report.md").exists()
        assert "Fig4" in capsys.readouterr().out


class TestDiagnosticsSection:
    """The report's observability appendix: per-phase span pivot plus the
    SPL and prefetch-yield histograms collected while the figures ran."""

    def test_section_present(self, report_text):
        assert "## Diagnostics" in report_text
        # diagnostics come last, after every figure section
        assert report_text.index("## Diagnostics") > report_text.index("Fig6")

    def test_per_phase_table(self, report_text):
        assert "### Per-phase simulated time (seconds)" in report_text
        start = report_text.index("### Per-phase simulated time")
        block = report_text[start : start + 2000]
        assert "| engine | cpu | index_fault | meta_prefetch | container_append | segment |" in block
        # every engine the figures exercised has a row
        for engine in ("DeFrag", "DDFS"):
            assert f"| {engine} |" in block

    def test_spl_histogram(self, report_text):
        assert "SPL per referenced stored segment" in report_text
        assert "DeFrag.spl" in report_text

    def test_prefetch_yield_histogram(self, report_text):
        assert "cache hits per prefetched unit" in report_text
        assert "prefetch_yield" in report_text

    def test_histogram_tables_have_totals(self, report_text):
        start = report_text.index("## Diagnostics")
        block = report_text[start:]
        assert "| bucket | count |" in block
        assert "| **total** (mean " in block

    def test_phase_rows_are_numeric(self, report_text):
        start = report_text.index("### Per-phase simulated time")
        lines = report_text[start:].splitlines()
        rows = [ln for ln in lines if ln.startswith("| DeFrag |")]
        assert rows
        cells = [c.strip() for c in rows[0].strip("|").split("|")][1:]
        values = [float(c) for c in cells]
        assert len(values) == 5
        # cpu + index_fault + meta_prefetch + container_append == segment
        assert sum(values[:4]) == pytest.approx(values[4], rel=1e-6)

    def test_diagnostics_empty_without_activity(self):
        from repro.experiments.report import _diagnostics_section
        from repro.obs import MetricsRegistry

        text = _diagnostics_section(MetricsRegistry())
        assert text.startswith("## Diagnostics")


class TestDeFragTelemetry:
    def test_extras_present_and_consistent(self, segmenter, small_jobs):
        from repro.core.defrag import DeFragEngine
        from repro.core.policy import SPLThresholdPolicy
        from repro.dedup.base import EngineResources
        from repro.dedup.pipeline import run_workload
        from tests.conftest import TEST_PROFILE

        res = EngineResources.create(
            profile=TEST_PROFILE, container_bytes=256 * 1024, expected_entries=100_000
        )
        res.store.seal_seeks = 0
        eng = DeFragEngine(
            res, policy=SPLThresholdPolicy(0.3),
            bloom_capacity=100_000, cache_containers=8,
        )
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports:
            assert "spl_groups_referenced" in r.extras
            assert r.extras["spl_groups_rewritten"] <= r.extras["spl_groups_referenced"]
            assert r.extras["segments_with_rewrites"] <= len(r.segments)
            if r.rewritten_dup_bytes > 0:
                assert r.extras["spl_groups_rewritten"] > 0
