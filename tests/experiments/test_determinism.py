"""Determinism: same seed -> bit-identical experiment series (the whole
point of a simulated clock), different seed -> different workload."""

import pytest

from repro.experiments import fig2
from repro.experiments.common import FigureResult, clear_memo
from repro.experiments.config import ExperimentConfig


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


class TestDeterminism:
    def test_same_seed_identical_series(self):
        cfg = ExperimentConfig.small()
        a = fig2.run(cfg)
        b = fig2.run(cfg)
        assert a.series == b.series

    def test_different_seed_different_series(self):
        a = fig2.run(ExperimentConfig.small().with_(seed=1))
        b = fig2.run(ExperimentConfig.small().with_(seed=2))
        assert a.series != b.series

    def test_parallel_jobs_identical_series(self):
        cfg = ExperimentConfig.small()
        a = fig2.run(cfg)
        clear_memo()
        b = fig2.run(cfg, jobs=2)
        assert a.series == b.series
        assert a.notes == b.notes


class TestFigureResult:
    def make(self):
        return FigureResult(
            figure="F",
            title="t",
            x_label="gen",
            x=[1, 2],
            series={"a": [1.5, 2.5], "long-name-series": [3.0, 4.0]},
            notes={"note": "hello"},
        )

    def test_table_contains_everything(self):
        text = self.make().table()
        assert "F: t" in text
        assert "long-name-series" in text
        assert "1.5" in text
        assert "# note: hello" in text

    def test_table_custom_format(self):
        text = self.make().table(fmt="{:.3f}")
        assert "1.500" in text

    def test_endpoint(self):
        assert self.make().endpoint("a") == 2.5
        with pytest.raises(KeyError):
            self.make().endpoint("zzz")

    def test_rows_align(self):
        lines = self.make().table().splitlines()
        header, row1, row2 = lines[1], lines[2], lines[3]
        assert len(header) == len(row1) == len(row2)
