"""The restore-ablation grid: policy x cache size x FAA window."""

import math

import pytest

from repro._util import MIB
from repro.cli import build_parser
from repro.experiments import restore_ablation
from repro.experiments.config import ExperimentConfig
from repro.parallel import run_grid


@pytest.fixture(scope="module")
def cfg():
    """A shrunken preset so the 6-cell grid stays test-suite cheap."""
    return ExperimentConfig.small().with_(fs_bytes=4 * MIB, n_generations=3)


@pytest.fixture(scope="module")
def result(cfg):
    return restore_ablation.run(cfg)


class TestGrid:
    def test_one_cell_per_engine_policy(self, cfg):
        specs = restore_ablation.cells(cfg)
        assert len(specs) == 6
        pairs = {(s.kwargs["engine"], s.kwargs["policy"]) for s in specs}
        assert pairs == {
            (e, p)
            for e in ("DeFrag", "DDFS-Like")
            for p in ("lru", "lfu", "belady")
        }

    def test_sweep_combo_order(self):
        combos = restore_ablation.sweep_combos((4, 16), (0, 2048))
        assert combos == [(4, 0), (4, 2048), (16, 0), (16, 2048)]


class TestResult:
    def test_series_cover_every_engine_policy(self, result):
        for engine in ("DeFrag", "DDFS"):
            for policy in ("lru", "lfu", "belady"):
                assert f"{engine}/{policy} seeks" in result.series
                assert f"{engine}/{policy} MB/s" in result.series

    def test_x_axis_is_the_combo_grid(self, result):
        assert result.x == list(range(len(restore_ablation.sweep_combos())))
        assert "combos" in result.notes

    def test_belady_lower_bounds_demand_combos(self, result):
        """On FAA-off combos the sweep is demand-only paging, where MIN
        is provably optimal: belady seeks <= lru/lfu seeks."""
        demand = [
            i
            for i, (_, w) in enumerate(restore_ablation.sweep_combos())
            if w == 0
        ]
        for engine in ("DeFrag", "DDFS"):
            opt = result.series[f"{engine}/belady seeks"]
            for policy in ("lru", "lfu"):
                online = result.series[f"{engine}/{policy} seeks"]
                for i in demand:
                    assert opt[i] <= online[i]

    def test_faa_combo_never_seeks_more(self, result):
        """Forward assembly + read-ahead cannot price more positionings
        than the same cache without them."""
        combos = restore_ablation.sweep_combos()
        by_cache = {}
        for i, (cache, window) in enumerate(combos):
            by_cache.setdefault(cache, {})[window] = i
        for engine in ("DeFrag", "DDFS"):
            seeks = result.series[f"{engine}/lru seeks"]
            for cache, windows in by_cache.items():
                assert seeks[windows[2048]] <= seeks[windows[0]]

    def test_failed_cell_goes_nan(self, cfg):
        specs = restore_ablation.cells(cfg)
        grid = run_grid(specs[:1], jobs=1)  # only the first cell ran
        res = restore_ablation.assemble(cfg, grid)
        first = specs[0]
        ok_key = f"{'DDFS' if first.kwargs['engine'] == 'DDFS-Like' else first.kwargs['engine']}/{first.kwargs['policy']} seeks"
        assert not math.isnan(res.series[ok_key][0])
        missing = [k for k in res.series if k != ok_key and k.endswith("seeks")]
        assert all(math.isnan(res.series[k][0]) for k in missing)

    def test_table_renders(self, result):
        text = result.table()
        assert "AblationRestore" in text


class TestCli:
    def test_parser_accepts_restore_flags(self):
        args = build_parser().parse_args(
            [
                "fig6",
                "--restore-policy",
                "belady",
                "--faa-window",
                "2048",
                "--readahead",
            ]
        )
        assert args.restore_policy == "belady"
        assert args.faa_window == 2048
        assert args.readahead is True

    def test_parser_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig6", "--restore-policy", "mru"])

    def test_restore_ablation_registered(self):
        args = build_parser().parse_args(["restore-ablation", "--scale", "small"])
        assert args.experiment == "restore-ablation"

    def test_flags_reach_config(self):
        from repro.cli import _make_config

        args = build_parser().parse_args(
            ["fig6", "--restore-policy", "lfu", "--faa-window", "512", "--readahead"]
        )
        config = _make_config(args)
        assert config.restore_policy == "lfu"
        assert config.restore_faa_window == 512
        assert config.restore_readahead is True

    def test_defaults_keep_default_config(self):
        from repro.cli import _make_config

        args = build_parser().parse_args(["fig6", "--scale", "small"])
        config = _make_config(args)
        assert config == ExperimentConfig.small()
