"""Tests for result persistence and the extension experiments."""

import json

import pytest

from repro.experiments import extensions
from repro.experiments.common import FigureResult, clear_memo
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import load_json, save_csv, save_json


@pytest.fixture(autouse=True)
def _clear():
    yield
    clear_memo()


def sample_result():
    return FigureResult(
        figure="FigX",
        title="test figure",
        x_label="generation",
        x=[1, 2, 3],
        series={"a": [1.0, 2.0, 3.0], "b": [0.5, 0.25, 0.125]},
        notes={"k": "v"},
    )


class TestJsonRoundtrip:
    def test_roundtrip(self, tmp_path):
        path = save_json(sample_result(), tmp_path / "r.json")
        loaded = load_json(path)
        r = sample_result()
        assert loaded.figure == r.figure
        assert loaded.x == r.x
        assert loaded.series == r.series
        assert loaded.notes == r.notes

    def test_json_is_valid(self, tmp_path):
        path = save_json(sample_result(), tmp_path / "r.json")
        payload = json.loads(path.read_text())
        assert payload["figure"] == "FigX"
        assert payload["series"]["a"] == [1.0, 2.0, 3.0]


class TestCsv:
    def test_csv_layout(self, tmp_path):
        path = save_csv(sample_result(), tmp_path / "r.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "generation,a,b"
        assert lines[1].startswith("1,1.0,0.5")
        assert len(lines) == 4


class TestCliSave:
    def test_save_writes_files(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["fig2", "--scale", "small", "--save", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.json").exists()
        assert (tmp_path / "fig2.csv").exists()
        loaded = load_json(tmp_path / "fig2.json")
        assert loaded.figure == "Fig2"


class TestExtensions:
    def test_related_work_rows(self):
        cfg = ExperimentConfig.small()
        res = extensions.related_work_comparison(
            cfg, engines=("DDFS-Like", "DeFrag")
        )
        assert set(res.series) == {"DDFS-Like", "DeFrag"}
        for values in res.series.values():
            assert len(values) == 4
            assert values[0] > 0  # ingest MB/s
            assert 0 < values[1] <= 1.0  # efficiency
            assert values[2] > 1.0  # compression
            assert values[3] > 0  # restore MB/s

    def test_gc_study_reclaims(self):
        cfg = ExperimentConfig.small()
        res = extensions.gc_study(cfg, retain_last=2, min_utilization=0.8)
        values = res.series["value"]
        before_mib, after_mib, reclaimed = values[0], values[1], values[2]
        assert after_mib <= before_mib
        assert reclaimed >= 0
        util_before, util_after = values[3], values[4]
        assert util_after >= util_before - 1e-9
