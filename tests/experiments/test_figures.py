"""Cheap-scale versions of every figure asserting the paper's qualitative
claims (shape tests, not absolute numbers)."""

import pytest

from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6
from repro.experiments.common import clear_memo
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig.small()


@pytest.fixture(scope="module", autouse=True)
def _clear_memo_after():
    yield
    clear_memo()


@pytest.fixture(scope="module")
def fig4_result(cfg):
    return fig4.run(cfg)


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self, cfg):
        return fig2.run(cfg)

    def test_series_shape(self, result, cfg):
        assert len(result.x) == cfg.n_generations
        assert set(result.series) == {"MB/s", "hits/prefetch"}

    def test_throughput_decays(self, result):
        thr = result.series["MB/s"]
        early = max(thr[:4])
        late = sum(thr[-3:]) / 3
        assert late < early, "throughput must decay with generations"

    def test_locality_decays_with_throughput(self, result):
        hp = result.series["hits/prefetch"]
        assert sum(hp[-3:]) / 3 < max(hp[1:4])

    def test_table_renders(self, result):
        text = result.table()
        assert "Fig2" in text
        assert str(result.x[-1]) in text


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self, cfg):
        return fig3.run(cfg)

    def test_efficiency_below_one(self, result):
        cum = result.series["cumulative"]
        assert cum[-1] < 1.0

    def test_efficiency_within_unit_interval(self, result):
        for v in result.series["efficiency"]:
            assert 0.0 <= v <= 1.0 + 1e-9

    def test_gen_zero_perfect(self, result):
        assert result.series["efficiency"][0] == pytest.approx(1.0)


class TestFig4:
    def test_three_engines(self, fig4_result):
        assert set(fig4_result.series) == {"DeFrag", "DDFS-Like", "SiLo-Like"}

    def test_defrag_beats_ddfs_late(self, fig4_result):
        d = fig4_result.series["DeFrag"]
        b = fig4_result.series["DDFS-Like"]
        n = len(d)
        assert sum(d[-n // 3 :]) > sum(b[-n // 3 :])

    def test_silo_above_ddfs(self, fig4_result):
        s = fig4_result.series["SiLo-Like"]
        b = fig4_result.series["DDFS-Like"]
        assert sum(s) > sum(b)

    def test_positive_throughputs(self, fig4_result):
        for series in fig4_result.series.values():
            assert all(v > 0 for v in series)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, cfg, fig4_result):
        # fig4 ran first: fig5 reuses its memoized engine runs
        return fig5.run(cfg)

    def test_both_keep_some_redundancy(self, result):
        assert result.series["DeFrag"][-1] < 1.0
        assert result.series["SiLo-Like"][-1] < 1.0

    def test_defrag_keeps_less_than_silo(self, result):
        """The paper's headline Fig. 5 claim."""
        kept_defrag = 1 - result.series["DeFrag"][-1]
        kept_silo = 1 - result.series["SiLo-Like"][-1]
        assert kept_defrag < kept_silo

    def test_values_in_unit_interval(self, result):
        for series in result.series.values():
            for v in series:
                assert 0.0 <= v <= 1.0 + 1e-9


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self, cfg):
        return fig6.run(cfg)

    def test_defrag_reads_faster_late(self, result):
        d = result.series["DeFrag MB/s"]
        b = result.series["DDFS MB/s"]
        n = len(d)
        assert sum(d[-n // 2 :]) > sum(b[-n // 2 :])

    def test_defrag_needs_fewer_container_reads(self, result):
        assert result.series["DeFrag reads"][-1] <= result.series["DDFS reads"][-1]

    def test_read_rate_declines_for_ddfs(self, result):
        b = result.series["DDFS MB/s"]
        assert b[-1] < b[0]


class TestAblations:
    def test_alpha_sweep_tradeoff(self, cfg):
        res = ablations.alpha_sweep(cfg, alphas=(0.0, 0.2))
        kept = res.series["kept redund %"]
        comp = res.series["compression x"]
        assert kept[0] == pytest.approx(0.0)  # alpha=0 never rewrites
        assert kept[1] >= kept[0]
        assert comp[1] <= comp[0]  # rewrites cost compression

    def test_cache_ablation_monotone_gen1(self, cfg):
        res = ablations.cache_ablation(cfg, cache_sizes=(2, 8))
        assert len(res.series["gen1 MB/s"]) == 2
        # bigger cache never hurts the final generation
        assert res.series["genN MB/s"][1] >= res.series["genN MB/s"][0] * 0.9

    def test_segment_ablation_runs(self, cfg):
        res = ablations.segment_ablation(cfg)
        assert set(res.series) == {"content-defined", "fixed-1MiB"}
