"""The multi-tenant cache-allocation experiment (HPDedup effect).

Pins the experiment's acceptance claim — prioritized allocation gives
strictly more total inline dedup than a global LRU on the skewed
three-tenant mix — plus the grid plumbing (cells/assemble round-trip,
failure tolerance) and the golden snapshot of the small-scale table.
"""

import math
import pathlib

from repro.experiments.config import ExperimentConfig
from repro.experiments.suite import run_suite
from repro.experiments.tenants import (
    POLICIES,
    ROWS,
    TENANTS,
    assemble,
    cells,
    run,
    tenants_cell,
)
from repro.parallel import run_grid

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

CONFIG = ExperimentConfig.small()


class TestCells:
    def test_one_cell_per_policy(self):
        specs = cells(CONFIG)
        assert [s.kwargs["policy"] for s in specs] == list(POLICIES)
        assert len({s.key for s in specs}) == len(POLICIES)

    def test_cell_payload_shape(self):
        payload = tenants_cell(CONFIG, "prioritized")
        assert len(payload["row"]) == len(ROWS)
        assert set(payload["hit_rate"]) == set(TENANTS)
        assert payload["n_shards"] == 2
        assert payload["logical_bytes"] > 0
        assert all(0.0 <= pct <= 100.0 for pct in payload["row"])

    def test_shard_count_follows_the_config(self):
        from repro.sharding import ShardConfig

        payload = tenants_cell(
            CONFIG.with_(shard=ShardConfig(n_shards=3)), "global-lru"
        )
        assert payload["n_shards"] == 3


class TestHPDedupEffect:
    def test_prioritized_strictly_beats_global_lru_on_total(self):
        """The acceptance criterion: on the skewed mix, prioritized
        allocation's aggregate inline dedup strictly exceeds the
        polluted global LRU's."""
        result = run(CONFIG)
        total = len(ROWS) - 1
        prio = result.series["prioritized"][total]
        glob = result.series["global-lru"][total]
        assert prio > glob
        assert "True" in result.notes["prioritized_total_gt_global"]

    def test_the_polluter_never_dedups(self):
        """gamma's fingerprints never repeat, so its inline dedup is 0
        under every policy — the effect is pure cache allocation, not
        workload leakage."""
        result = run(CONFIG)
        gamma = TENANTS.index("gamma")
        for policy in POLICIES:
            assert result.series[policy][gamma] == 0.0

    def test_high_locality_tenant_wins_under_prioritization(self):
        result = run(CONFIG)
        alpha = TENANTS.index("alpha")
        assert (
            result.series["prioritized"][alpha]
            > result.series["global-lru"][alpha]
        )


class TestAssemble:
    def test_assemble_round_trips_run_grid(self):
        results = run_grid(cells(CONFIG), jobs=1)
        figure = assemble(CONFIG, results)
        assert figure.figure == "Tenants"
        assert set(figure.series) == set(POLICIES)
        assert figure.x == list(range(1, len(ROWS) + 1))
        assert not figure.failures

    def test_missing_cell_yields_nan_row(self):
        specs = cells(CONFIG)
        results = run_grid(specs, jobs=1)
        dropped = specs[0].key
        partial = {k: v for k, v in results.items() if k != dropped}
        figure = assemble(CONFIG, partial)
        assert all(
            math.isnan(v) for v in figure.series[specs[0].kwargs["policy"]]
        )


class TestGolden:
    def test_small_table_byte_identical(self):
        results, errors = run_suite(["tenants"], CONFIG, jobs=1)
        assert not errors, errors
        expected = (GOLDEN_DIR / "tenants_small.txt").read_text()
        assert results["tenants"].table(fmt="{:.2f}") + "\n" == expected
