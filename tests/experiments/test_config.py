import pytest

from repro.experiments.config import APPLIANCE_2012, SCALE_NAMES, ExperimentConfig


class TestPresets:
    def test_default(self):
        c = ExperimentConfig.default()
        assert c.alpha == 0.1
        assert c.disk is APPLIANCE_2012
        assert c.n_backups == 66
        assert c.n_users == 5

    def test_small_is_smaller(self):
        small, default = ExperimentConfig.small(), ExperimentConfig.default()
        assert small.fs_bytes < default.fs_bytes
        assert small.cache_containers < default.cache_containers

    def test_large_is_larger(self):
        large, default = ExperimentConfig.large(), ExperimentConfig.default()
        assert large.fs_bytes > default.fs_bytes

    def test_by_name(self):
        assert ExperimentConfig.by_name("small") == ExperimentConfig.small()
        with pytest.raises(ValueError):
            ExperimentConfig.by_name("huge")

    def test_xlarge_is_largest(self):
        xlarge, large = ExperimentConfig.xlarge(), ExperimentConfig.large()
        assert xlarge.per_user_bytes > large.per_user_bytes
        assert xlarge.fs_bytes > large.fs_bytes
        # the ISSUE floor: >= 10 GB simulated across >= 20 backups,
        # multiple users (logical bytes ~ per_user_bytes x n_backups)
        assert xlarge.per_user_bytes * xlarge.n_backups >= 10 * 10**9
        assert xlarge.n_backups >= 20
        assert xlarge.n_users > 1

    def test_scale_registry_covers_every_preset(self):
        # the single source of truth the CLI choices and the by_name
        # error message both derive from
        for name in SCALE_NAMES:
            assert ExperimentConfig.by_name(name) == getattr(
                ExperimentConfig, name
            )()

    def test_unknown_scale_error_lists_registry(self):
        with pytest.raises(ValueError) as exc:
            ExperimentConfig.by_name("huge")
        for name in SCALE_NAMES:
            assert name in str(exc.value)

    def test_cli_choices_derive_from_registry(self):
        import repro.cli as cli
        import inspect

        src = inspect.getsource(cli)
        assert "SCALE_NAMES" in src
        # no hand-maintained duplicate scale list left in the CLI
        assert '"small", "default", "large"' not in src

    def test_with_override(self):
        c = ExperimentConfig.default().with_(alpha=0.25, seed=7)
        assert c.alpha == 0.25
        assert c.seed == 7
        assert c.fs_bytes == ExperimentConfig.default().fs_bytes

    def test_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig.default().alpha = 0.5  # type: ignore[misc]


class TestBuilders:
    def test_create_resources(self):
        from repro.api import create_resources

        res = create_resources(ExperimentConfig.small())
        assert res.store.seal_seeks == 0
        assert res.disk.profile is APPLIANCE_2012

    def test_create_engine_names(self):
        from repro.api import create_engine
        from repro.core.defrag import DeFragEngine
        from repro.dedup.ddfs import DDFSEngine
        from repro.dedup.exact import ExactEngine
        from repro.dedup.silo import SiLoEngine

        cfg = ExperimentConfig.small()
        assert isinstance(create_engine("DDFS-Like", cfg), DDFSEngine)
        assert isinstance(create_engine("SiLo-Like", cfg), SiLoEngine)
        assert isinstance(create_engine("DeFrag", cfg), DeFragEngine)
        assert isinstance(create_engine("Exact", cfg), ExactEngine)
        with pytest.raises(ValueError):
            create_engine("nope", cfg)

    def test_defrag_alpha_wired(self):
        from repro.api import create_engine

        eng = create_engine("DeFrag", ExperimentConfig.small().with_(alpha=0.33))
        assert eng.policy.alpha == 0.33
