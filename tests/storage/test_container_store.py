import pytest

from repro.storage.container import CHUNK_METADATA_BYTES, Container
from repro.storage.disk import DiskModel
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


class TestContainer:
    def test_add_and_len(self):
        c = Container(0, capacity=1000)
        c.add(1, 300)
        c.add(2, 300)
        assert len(c) == 2
        assert c.data_bytes == 600
        assert c.remaining == 400

    def test_fits_boundary(self):
        c = Container(0, capacity=1000)
        c.add(1, 700)
        assert c.fits(300)
        assert not c.fits(301)

    def test_empty_container_accepts_oversized(self):
        c = Container(0, capacity=100)
        assert c.fits(1000)
        c.add(1, 1000)
        assert not c.fits(1)

    def test_add_overflow_raises(self):
        c = Container(0, capacity=100)
        c.add(1, 90)
        with pytest.raises(ValueError):
            c.add(2, 20)

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(ValueError):
            Container(0, 100).add(1, 0)

    def test_seal_preserves_order(self):
        c = Container(7, capacity=1000)
        for fp in (5, 3, 9):
            c.add(fp, 100)
        sealed = c.seal()
        assert sealed.cid == 7
        assert sealed.fingerprints.tolist() == [5, 3, 9]
        assert sealed.data_bytes == 300
        assert sealed.metadata_bytes == 3 * CHUNK_METADATA_BYTES

    def test_iter_chunks(self):
        c = Container(0, capacity=1000)
        c.add(1, 10)
        c.add(2, 20)
        assert list(c.iter_chunks()) == [(1, 10), (2, 20)]


class TestContainerStore:
    def make(self, capacity=1000):
        disk = DiskModel(profile=TEST_PROFILE)
        return ContainerStore(
            disk, config=StoreConfig(container_bytes=capacity, seal_seeks=0)
        )

    def test_append_assigns_cids_monotonically(self):
        s = self.make(capacity=250)
        cids = [s.append(fp, 100) for fp in range(6)]
        # 2 chunks per container (250 cap, 100 each)
        assert cids == [0, 0, 1, 1, 2, 2]

    def test_seal_charges_disk(self):
        s = self.make(capacity=200)
        s.append(1, 150)
        assert s.disk.stats.bytes_written == 0
        s.append(2, 150)  # seals container 0
        assert s.disk.stats.bytes_written == 150 + CHUNK_METADATA_BYTES

    def test_flush_seals_open(self):
        s = self.make()
        s.append(1, 100)
        cid = s.flush()
        assert cid == 0
        assert s.n_containers == 1
        assert s.flush() is None

    def test_get_sealed_only(self):
        s = self.make()
        s.append(1, 100)
        with pytest.raises(KeyError):
            s.get(0)
        s.flush()
        assert s.get(0).n_chunks == 1
        assert s.has(0)
        assert not s.has(1)

    def test_prefetch_meta_charges_seek_and_bytes(self):
        s = self.make()
        s.append(1, 100)
        s.flush()
        before = s.disk.stats.snapshot()
        fps = s.prefetch_meta(0)
        d = s.disk.stats.delta_since(before)
        assert fps.tolist() == [1]
        assert d.seeks == 1
        assert d.bytes_read == CHUNK_METADATA_BYTES
        assert s.stats.meta_prefetches == 1

    def test_read_container_charges_payload(self):
        s = self.make()
        s.append(1, 100)
        s.flush()
        before = s.disk.stats.snapshot()
        s.read_container(0)
        d = s.disk.stats.delta_since(before)
        assert d.seeks == 1
        assert d.bytes_read == 100 + CHUNK_METADATA_BYTES

    def test_stats_accumulate(self):
        s = self.make(capacity=250)
        for fp in range(5):
            s.append(fp, 100)
        s.flush()
        assert s.stats.chunks_written == 5
        assert s.stats.payload_bytes == 500
        assert s.stats.containers_sealed == 3
        assert s.stats.physical_bytes == 500 + 5 * CHUNK_METADATA_BYTES


class TestAppendRun:
    """append_run must be byte-identical to sequential appends: same
    packing, same cids, same seal charges at the same points."""

    def _twin_stores(self):
        return (
            ContainerStore(
                DiskModel(profile=TEST_PROFILE),
                config=StoreConfig(container_bytes=100),
            ),
            ContainerStore(
                DiskModel(profile=TEST_PROFILE),
                config=StoreConfig(container_bytes=100),
            ),
        )

    def _assert_equivalent(self, fps, sizes):
        a, b = self._twin_stores()
        cids_run = a.append_run(list(fps), list(sizes))
        cids_seq = [b.append(f, s) for f, s in zip(fps, sizes)]
        assert cids_run == cids_seq
        assert a.disk.stats.total_time_s == b.disk.stats.total_time_s
        assert a.stats.containers_sealed == b.stats.containers_sealed
        assert a.stats.chunks_written == b.stats.chunks_written
        a.flush()
        b.flush()
        assert {c: a.get(c).fingerprints.tolist() for c in a.cids()} == {
            c: b.get(c).fingerprints.tolist() for c in b.cids()
        }

    def test_empty_run(self):
        store, _ = self._twin_stores()
        assert store.append_run([], []) == []
        assert store.stats.chunks_written == 0

    def test_run_spanning_containers(self):
        self._assert_equivalent(range(10), [30] * 10)

    def test_exact_fit_boundary(self):
        self._assert_equivalent(range(6), [50, 50, 50, 50, 50, 50])

    def test_oversize_chunk_lands_in_empty_container(self):
        self._assert_equivalent([1, 2, 3], [40, 250, 40])

    def test_run_after_partial_open_container(self):
        a, b = self._twin_stores()
        assert a.append(99, 70) == b.append(99, 70)
        assert a.append_run([1, 2, 3], [40, 40, 40]) == [
            b.append(f, 40) for f in (1, 2, 3)
        ]
        assert a.disk.stats.total_time_s == b.disk.stats.total_time_s

    def test_rejects_nonpositive_size(self):
        store, _ = self._twin_stores()
        with pytest.raises(ValueError):
            store.append_run([1, 2], [10, 0])
