"""Garbage-collector tests: liveness, compaction, recipe remapping."""

import pytest

from repro.core.defrag import DeFragEngine
from repro.core.policy import AlwaysRewritePolicy, SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup, run_workload
from repro.restore.reader import RestoreReader
from repro.storage.gc import GarbageCollector
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream
from repro.storage.store import StoreConfig


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    return res


def rewriting_run(segmenter, generations=4):
    """DeFrag with AlwaysRewrite: every cross-segment duplicate is stored
    again each generation, so old generations' copies become garbage as
    soon as their recipes expire."""
    res = fresh_resources()
    eng = DeFragEngine(
        res, policy=AlwaysRewritePolicy(), bloom_capacity=100_000, cache_containers=8
    )
    s = make_stream(300, seed=1)
    reports = [
        run_backup(eng, BackupJob(g, "t", s), segmenter) for g in range(generations)
    ]
    return res, eng, reports


class TestLiveness:
    def test_all_live_when_everything_retained(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        util = gc.log_utilization([r.recipe for r in reports])
        assert util > 0.95

    def test_expiry_creates_garbage(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        util = gc.log_utilization([reports[-1].recipe])
        # 4 generations stored, 1 retained: ~3/4 of the log is dead
        assert util < 0.5


class TestCollect:
    def test_reclaims_dead_space(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        physical_before = res.store.stats.payload_bytes
        gc = GarbageCollector(res.store, index=res.index)
        report, remapped = gc.collect([reports[-1].recipe], min_utilization=0.9)
        assert report.bytes_reclaimed > 0
        assert res.store.stats.payload_bytes < physical_before
        assert report.utilization_after >= report.utilization_before

    def test_retained_backup_still_restorable(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        _, remapped = gc.collect([reports[-1].recipe], min_utilization=0.9)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(remapped[0])
        assert rr.logical_bytes == reports[-1].logical_bytes

    def test_remap_preserves_logical_content(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        _, remapped = gc.collect([reports[-1].recipe], min_utilization=0.9)
        import numpy as np

        assert np.array_equal(
            remapped[0].fingerprints, reports[-1].recipe.fingerprints
        )
        assert np.array_equal(remapped[0].sizes, reports[-1].recipe.sizes)

    def test_remapped_containers_exist(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        _, remapped = gc.collect([reports[-1].recipe], min_utilization=0.9)
        for cid in remapped[0].unique_containers():
            assert res.store.has(int(cid))

    def test_index_repointed_to_moved_copies(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store, index=res.index)
        _, remapped = gc.collect([reports[-1].recipe], min_utilization=0.9)
        for fp in reports[-1].recipe.fingerprints[:20]:
            loc = res.index.peek(int(fp))
            assert loc is not None
            assert res.store.has(loc.cid)

    def test_noop_when_utilization_high(self, segmenter):
        """Exact dedup without rewrites: nothing to collect."""
        res = fresh_resources()
        eng = ExactEngine(res)
        s = make_stream(200, seed=2)
        reports = [run_backup(eng, BackupJob(g, "t", s), segmenter) for g in range(3)]
        gc = GarbageCollector(res.store, index=res.index)
        report, remapped = gc.collect([r.recipe for r in reports], min_utilization=0.5)
        assert report.containers_collected == 0
        assert report.bytes_reclaimed == 0
        assert remapped[0] is reports[0].recipe  # unchanged objects pass through

    def test_collect_charges_disk(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        before = res.disk.stats.snapshot()
        gc = GarbageCollector(res.store, index=res.index)
        gc.collect([reports[-1].recipe], min_utilization=0.9)
        delta = res.disk.stats.delta_since(before)
        assert delta.bytes_read > 0  # victims were read

    def test_rejects_bad_utilization(self, segmenter):
        res, eng, reports = rewriting_run(segmenter)
        gc = GarbageCollector(res.store)
        with pytest.raises(ValueError):
            gc.collect([reports[-1].recipe], min_utilization=1.5)


class TestWorkloadGC:
    def test_end_to_end_on_evolving_workload(self, segmenter, small_jobs):
        res = fresh_resources()
        eng = DeFragEngine(
            res, policy=SPLThresholdPolicy(0.3),
            bloom_capacity=100_000, cache_containers=8,
        )
        reports = run_workload(eng, small_jobs, segmenter)
        retained = [r.recipe for r in reports[-2:]]
        gc = GarbageCollector(res.store, index=res.index)
        report, remapped = gc.collect(retained, min_utilization=0.6)
        # every retained backup restores bit-for-bit after compaction
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        for original, new in zip(reports[-2:], remapped):
            rr = reader.restore(new)
            assert rr.logical_bytes == original.logical_bytes
