import numpy as np
import pytest

from repro.storage.layout import analyze_recipe, container_run_lengths
from repro.storage.recipe import BackupRecipe, RecipeBuilder


def build_recipe(cids, sizes=None, gen=0):
    b = RecipeBuilder(gen, label="t")
    n = len(cids)
    sizes = sizes if sizes is not None else [100] * n
    for i, (c, s) in enumerate(zip(cids, sizes)):
        b.add(fp=i, size=s, cid=c)
    return b.finalize()


class TestRecipeBuilder:
    def test_finalize_roundtrip(self):
        r = build_recipe([0, 0, 1], sizes=[10, 20, 30])
        assert r.n_chunks == 3
        assert r.total_bytes == 60
        assert r.containers.tolist() == [0, 0, 1]

    def test_add_many(self):
        b = RecipeBuilder(1)
        b.add_many([1, 2], [10, 10], [0, 0])
        r = b.finalize()
        assert r.n_chunks == 2
        assert r.generation == 1

    def test_empty_recipe(self):
        r = RecipeBuilder(0).finalize()
        assert r.n_chunks == 0
        assert r.total_bytes == 0
        assert r.container_switches() == 0

    def test_parallel_validation(self):
        with pytest.raises(ValueError):
            BackupRecipe(
                generation=0,
                fingerprints=np.zeros(2, dtype=np.uint64),
                sizes=np.zeros(1, dtype=np.uint32),
                containers=np.zeros(2, dtype=np.int64),
            )


class TestRecipeQueries:
    def test_unique_containers(self):
        r = build_recipe([3, 1, 3, 2])
        assert r.unique_containers().tolist() == [1, 2, 3]

    def test_container_switches(self):
        r = build_recipe([0, 0, 1, 1, 0])
        assert r.container_switches() == 2

    def test_slice(self):
        r = build_recipe([0, 1, 2, 3])
        sub = r.slice(1, 3)
        assert sub.containers.tolist() == [1, 2]
        assert sub.generation == r.generation


class TestRunLengths:
    def test_example(self):
        runs = container_run_lengths(np.array([5, 5, 5, 7, 7, 5]))
        assert runs.tolist() == [3, 2, 1]

    def test_empty(self):
        assert container_run_lengths(np.array([])).size == 0

    def test_single(self):
        assert container_run_lengths(np.array([1])).tolist() == [1]

    def test_all_same(self):
        assert container_run_lengths(np.full(10, 3)).tolist() == [10]

    def test_all_different(self):
        assert container_run_lengths(np.arange(5)).tolist() == [1] * 5

    def test_sum_equals_length(self):
        seq = np.array([1, 1, 2, 3, 3, 3, 1])
        assert container_run_lengths(seq).sum() == seq.size


class TestLayoutReport:
    def test_perfectly_linear(self):
        r = build_recipe([0] * 10)
        rep = analyze_recipe(r)
        assert rep.n_fragments == 1
        assert rep.delinearization == 0.0
        assert rep.bytes_per_seek == r.total_bytes

    def test_fully_scattered(self):
        r = build_recipe(list(range(10)))
        rep = analyze_recipe(r)
        assert rep.n_fragments == 10
        assert rep.delinearization == 1.0

    def test_mixed(self):
        r = build_recipe([0, 0, 1, 1, 1, 2])
        rep = analyze_recipe(r)
        assert rep.n_fragments == 3
        assert rep.n_distinct_containers == 3
        assert rep.mean_run_chunks == pytest.approx(2.0)

    def test_empty(self):
        rep = analyze_recipe(RecipeBuilder(0).finalize())
        assert rep.n_fragments == 0
        assert rep.delinearization == 0.0
        assert rep.fragments_per_mib == 0.0
