"""Store-level GC primitives and accounting identities."""

import pytest

from repro.storage.container import CHUNK_METADATA_BYTES
from repro.storage.disk import DiskModel
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def make_store(capacity=1000):
    return ContainerStore(
        DiskModel(profile=TEST_PROFILE),
        config=StoreConfig(container_bytes=capacity, seal_seeks=0),
    )


class TestRemove:
    def test_remove_returns_freed_payload(self):
        s = make_store()
        s.append(1, 300)
        s.append(2, 200)
        s.flush()
        assert s.remove(0) == 500
        assert not s.has(0)
        assert s.n_containers == 0

    def test_remove_updates_stats(self):
        s = make_store()
        s.append(1, 300)
        s.flush()
        before_payload = s.stats.payload_bytes
        before_meta = s.stats.metadata_bytes
        s.remove(0)
        assert s.stats.payload_bytes == before_payload - 300
        assert s.stats.metadata_bytes == before_meta - CHUNK_METADATA_BYTES
        assert s.stats.containers_removed == 1

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            make_store().remove(99)

    def test_physical_bytes_identity_through_lifecycle(self):
        s = make_store(capacity=500)
        for fp in range(6):
            s.append(fp, 200)
        s.flush()
        expected = 6 * 200 + 6 * CHUNK_METADATA_BYTES
        assert s.stats.physical_bytes == expected
        s.remove(0)
        assert s.stats.physical_bytes < expected

    def test_append_after_remove_reuses_no_cid(self):
        """Container ids are log positions: never reused after removal."""
        s = make_store(capacity=250)
        cids_before = [s.append(fp, 200) for fp in range(3)]
        s.flush()
        s.remove(0)
        cid_new = s.append(99, 200)
        assert cid_new > max(cids_before)
