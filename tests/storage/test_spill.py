"""Out-of-core container store: spill backends, eviction, fault-back.

The twin-run contract is the heart of these tests: every simulated
number (disk charges, cids, packing, stats) must be byte-identical with
spilling on or off — the spill layer is machine IO only.
"""

import pathlib

import numpy as np
import pytest

from repro.obs import Observability, obs_session
from repro.storage.container import SealedContainer
from repro.storage.disk import DiskModel
from repro.storage.spill import (
    DirectorySpill,
    MemorySpill,
    decode_container,
    encode_container,
    make_spill,
)
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def make_store(resident=None, spill_dir=None, container_bytes=1000, journal=False):
    return ContainerStore(
        DiskModel(profile=TEST_PROFILE),
        config=StoreConfig(
            container_bytes=container_bytes,
            seal_seeks=0,
            journal=journal,
            resident_containers=resident,
            spill_dir=spill_dir,
        ),
    )


def ingest(store, n_chunks=40, size=300):
    for fp in range(n_chunks):
        store.append(fp + 1, size)
    store.flush()


class TestBlobCodec:
    def test_roundtrip(self):
        sealed = SealedContainer(
            cid=7,
            fingerprints=np.array([10, 20, 30], dtype=np.uint64),
            sizes=np.array([100, 200, 300], dtype=np.uint32),
        )
        back = decode_container(encode_container(sealed))
        assert back.cid == 7
        assert back.fingerprints.tolist() == [10, 20, 30]
        assert back.sizes.tolist() == [100, 200, 300]
        assert back.fingerprints.dtype == np.uint64
        assert back.sizes.dtype == np.uint32

    def test_empty_container_roundtrips(self):
        sealed = SealedContainer(
            cid=0,
            fingerprints=np.zeros(0, dtype=np.uint64),
            sizes=np.zeros(0, dtype=np.uint32),
        )
        back = decode_container(encode_container(sealed))
        assert back.n_chunks == 0

    def test_truncated_blob_rejected(self):
        sealed = SealedContainer(
            cid=1,
            fingerprints=np.array([1, 2], dtype=np.uint64),
            sizes=np.array([10, 20], dtype=np.uint32),
        )
        blob = encode_container(sealed)
        with pytest.raises(ValueError, match="!="):
            decode_container(blob[:-4])
        with pytest.raises(ValueError, match="truncated"):
            decode_container(blob[:8])

    def test_foreign_blob_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decode_container(b"NOPE" + b"\x00" * 32)


class TestBackends:
    def _roundtrip(self, spill):
        sealed = SealedContainer(
            cid=42,
            fingerprints=np.array([5], dtype=np.uint64),
            sizes=np.array([50], dtype=np.uint32),
        )
        blob = encode_container(sealed)
        assert 42 not in spill
        spill.put(42, blob)
        assert 42 in spill
        assert spill.get(42) == blob
        assert list(spill.cids()) == [42]
        spill.delete(42)
        assert 42 not in spill
        spill.delete(42)  # idempotent

    def test_memory_spill(self):
        self._roundtrip(MemorySpill())

    def test_directory_spill(self, tmp_path):
        self._roundtrip(DirectorySpill(tmp_path / "spill"))

    def test_make_spill_dispatch(self, tmp_path):
        assert isinstance(make_spill(None), MemorySpill)
        assert isinstance(make_spill(str(tmp_path / "d")), DirectorySpill)


class TestConfigValidation:
    def test_spill_dir_requires_budget(self, tmp_path):
        with pytest.raises(ValueError, match="resident_containers"):
            make_store(spill_dir=str(tmp_path))

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            make_store(resident=0)


class TestResidentBudget:
    def test_no_budget_keeps_everything_resident(self):
        store = make_store()
        ingest(store, n_chunks=40)
        assert not store.spilling
        assert store.n_resident == store.n_containers > 1
        assert store.spill_stats.spilled == 0

    def test_budget_bounds_resident_set(self):
        store = make_store(resident=2)
        ingest(store, n_chunks=40, size=300)
        assert store.spilling
        assert store.n_containers > 2
        assert store.n_resident <= 2
        assert store.spill_stats.spilled == store.stats.containers_sealed
        assert store.spill_stats.evictions > 0

    def test_fault_back_restores_content(self):
        store = make_store(resident=1)
        ingest(store, n_chunks=40)
        # every sealed container is readable, spilled or not, and the
        # content survives the serialize/evict/fault-back cycle
        for cid in store.cids():
            sealed = store.get(cid)
            assert sealed.cid == cid
            assert sealed.n_chunks > 0
        assert store.spill_stats.faults > 0

    def test_fault_back_charges_no_simulated_time(self):
        store = make_store(resident=1)
        ingest(store, n_chunks=40)
        t0 = store.disk.stats.total_time_s
        for cid in store.cids():
            store.get(cid)
        assert store.disk.stats.total_time_s == t0

    def test_lru_keeps_hot_container_resident(self):
        store = make_store(resident=2)
        ingest(store, n_chunks=40)
        hot = store.cids()[0]
        store.get(hot)
        faults0 = store.spill_stats.faults
        store.get(hot)  # second access: already resident, no fault
        assert store.spill_stats.faults == faults0

    def test_directory_spill_persists_files(self, tmp_path):
        spill_dir = tmp_path / "ctn"
        store = make_store(resident=1, spill_dir=str(spill_dir))
        ingest(store, n_chunks=40)
        # files live under the store's own unique subdirectory of the
        # configured root (two stores sharing a root must not collide)
        spill_path = pathlib.Path(store.spill_path)
        assert spill_path.parent == spill_dir
        files = list(spill_path.glob("*.ctn"))
        assert len(files) == store.n_containers

    def test_remove_deletes_spill_copy(self, tmp_path):
        spill_dir = tmp_path / "ctn"
        store = make_store(resident=1, spill_dir=str(spill_dir))
        ingest(store, n_chunks=40)
        victim = store.cids()[0]
        store.remove(victim)
        assert not store.has(victim)
        assert not (
            pathlib.Path(store.spill_path) / f"{victim:012d}.ctn"
        ).exists()
        with pytest.raises(KeyError):
            store.get(victim)

    def test_truncate_torn_deletes_spill_copy(self):
        store = make_store(resident=1, journal=True)
        ingest(store, n_chunks=40)
        # forge a torn tail: forget one container's commit marker
        torn_cid = store.cids()[-1]
        store._committed.discard(torn_cid)
        assert store.truncate_torn() == [torn_cid]
        assert not store.has(torn_cid)
        assert torn_cid not in store._spill

    def test_directory_queries_never_fault(self):
        store = make_store(resident=1)
        ingest(store, n_chunks=40)
        faults0 = store.spill_stats.faults
        store.cids()
        store.has(store.cids()[0])
        store.container_of_chunk_count()
        _ = store.n_containers
        assert store.spill_stats.faults == faults0


class TestTwinRun:
    """Simulated results must be byte-identical with spilling on or off."""

    def _run(self, **kwargs):
        store = make_store(container_bytes=700, **kwargs)
        rng = np.random.default_rng(7)
        fps = rng.integers(1, 1 << 60, size=300).tolist()
        sizes = rng.integers(50, 400, size=300).tolist()
        cids = store.append_run(fps, sizes)
        store.flush()
        reads = [store.read_container(c).data_bytes for c in store.cids()]
        store.prefetch_meta(store.cids()[0])
        return (
            cids,
            store.disk.stats.total_time_s,
            store.stats.__dict__.copy(),
            reads,
            {c: store.get(c).fingerprints.tolist() for c in store.cids()},
        )

    def test_spill_on_off_identical(self, tmp_path):
        plain = self._run()
        mem = self._run(resident=3)
        disk = self._run(resident=3, spill_dir=str(tmp_path / "s"))
        assert plain == mem == disk

    def test_obs_session_does_not_change_results(self):
        plain = self._run(resident=3)
        with obs_session(Observability()) as obs:
            traced = self._run(resident=3)
        assert plain == traced
        # and the session actually saw the spill counters
        snap = obs.registry.snapshot()
        counters = snap.get("counters", snap)
        assert any("store.spill" in k for k in counters)


class TestSpillObs:
    def test_counters_recorded_when_enabled(self):
        with obs_session(Observability()) as obs:
            store = make_store(resident=1)
            ingest(store, n_chunks=40)
            for cid in store.cids():
                store.get(cid)
        reg = obs.registry
        assert reg.counter("store.spill.spilled").value == store.spill_stats.spilled
        assert reg.counter("store.spill.faults").value == store.spill_stats.faults
        assert (
            reg.counter("store.spill.evictions").value
            == store.spill_stats.evictions
        )
        assert reg.gauge("store.spill.resident").value <= 1

    def test_stats_tracked_without_session(self):
        store = make_store(resident=1)
        ingest(store, n_chunks=40)
        assert store.spill_stats.bytes_spilled > 0
