"""Per-instance spill directories: concurrent stores must not collide.

ROADMAP item 5's safety requirement: parallel grid cells, per-tenant
stores, and per-engine memoized runs all construct their own
``ContainerStore`` but may share one configured ``spill_dir`` root.
Container ids start at 0 in every store, so without per-instance
subdirectories two stores would silently overwrite each other's
``{cid:012d}.ctn`` files. These tests pin the fix.
"""

import pathlib

import numpy as np

from repro.storage.disk import DiskModel
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def make_store(spill_dir, container_bytes=1000):
    return ContainerStore(
        DiskModel(profile=TEST_PROFILE),
        config=StoreConfig(
            container_bytes=container_bytes,
            seal_seeks=0,
            resident_containers=1,
            spill_dir=str(spill_dir),
        ),
    )


def ingest(store, fps, size=300):
    for fp in fps:
        store.append(fp, size)
    store.flush()


class TestPerInstanceSpillDirs:
    def test_two_stores_one_root_do_not_collide(self, tmp_path):
        """Two stores over one root keep distinct, correct contents even
        though their cid spaces are identical (both start at cid 0)."""
        a = make_store(tmp_path)
        b = make_store(tmp_path)
        ingest(a, fps=range(1, 41))
        ingest(b, fps=range(1001, 1041))
        assert a.spill_path != b.spill_path
        # every container faults back with its own store's fingerprints
        for cid in a.cids():
            got = a.get(cid).fingerprints
            assert got.max() <= 40, f"store A cid {cid} has B's chunks"
        for cid in b.cids():
            got = b.get(cid).fingerprints
            assert got.min() >= 1001, f"store B cid {cid} has A's chunks"

    def test_subdirs_nest_under_configured_root(self, tmp_path):
        a = make_store(tmp_path)
        b = make_store(tmp_path)
        ingest(a, fps=range(1, 21))
        ingest(b, fps=range(101, 121))
        pa = pathlib.Path(a.spill_path)
        pb = pathlib.Path(b.spill_path)
        assert pa.parent == tmp_path and pb.parent == tmp_path
        assert pa.name.startswith("store-") and pb.name.startswith("store-")
        # the root itself holds no container files — only the subdirs do
        assert list(tmp_path.glob("*.ctn")) == []
        assert len(list(pa.glob("*.ctn"))) == a.n_containers
        assert len(list(pb.glob("*.ctn"))) == b.n_containers

    def test_remove_touches_only_own_subdir(self, tmp_path):
        a = make_store(tmp_path)
        b = make_store(tmp_path)
        ingest(a, fps=range(1, 41))
        ingest(b, fps=range(1001, 1041))
        victim = a.cids()[0]
        assert victim in b.cids()  # same cid exists in both stores
        a.remove(victim)
        assert not a.has(victim)
        assert b.has(victim)
        assert b.get(victim).fingerprints.min() >= 1001

    def test_memory_spill_has_no_path(self):
        store = ContainerStore(
            DiskModel(profile=TEST_PROFILE),
            config=StoreConfig(
                container_bytes=1000, seal_seeks=0, resident_containers=1
            ),
        )
        assert store.spilling
        assert store.spill_path is None

    def test_twin_run_identical_with_shared_root(self, tmp_path):
        """Simulated results stay byte-identical whether two stores
        share a spill root or use separate ones (spill IO is machine IO
        only — the subdir scheme must not leak into the model)."""
        shared1 = make_store(tmp_path / "shared")
        shared2 = make_store(tmp_path / "shared")
        solo1 = make_store(tmp_path / "solo1")
        solo2 = make_store(tmp_path / "solo2")
        for store in (shared1, solo1):
            ingest(store, fps=range(1, 41))
        for store in (shared2, solo2):
            ingest(store, fps=range(1001, 1041))
        assert shared1.cids() == solo1.cids()
        assert shared2.cids() == solo2.cids()
        for cid in shared1.cids():
            np.testing.assert_array_equal(
                shared1.get(cid).fingerprints, solo1.get(cid).fingerprints
            )
        assert (
            shared1.disk.stats.total_time_s == solo1.disk.stats.total_time_s
        )
