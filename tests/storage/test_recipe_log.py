"""Recipe log: append-to-disk recipe retention with random access."""

import numpy as np
import pytest

from repro.storage.recipe import BackupRecipe
from repro.storage.recipe_log import RecipeLog


def make_recipe(generation=0, n=5, label="user0"):
    rng = np.random.default_rng(generation + 1)
    return BackupRecipe(
        generation=generation,
        fingerprints=rng.integers(1, 1 << 60, size=n).astype(np.uint64),
        sizes=rng.integers(100, 5000, size=n).astype(np.uint32),
        containers=rng.integers(0, 50, size=n).astype(np.int64),
        label=label,
    )


def assert_same(a: BackupRecipe, b: BackupRecipe):
    assert a.generation == b.generation
    assert a.label == b.label
    assert a.fingerprints.tolist() == b.fingerprints.tolist()
    assert a.sizes.tolist() == b.sizes.tolist()
    assert a.containers.tolist() == b.containers.tolist()
    assert b.fingerprints.dtype == np.uint64
    assert b.sizes.dtype == np.uint32
    assert b.containers.dtype == np.int64


@pytest.fixture(params=["memory", "file"])
def log(request, tmp_path):
    if request.param == "memory":
        with RecipeLog() as rl:
            yield rl
    else:
        with RecipeLog(str(tmp_path / "recipes.log")) as rl:
            yield rl


class TestRoundtrip:
    def test_append_load(self, log):
        recipes = [make_recipe(g, n=3 + g) for g in range(4)]
        for i, r in enumerate(recipes):
            assert log.append(r) == i
        assert len(log) == 4
        for i, r in enumerate(recipes):
            assert_same(r, log.load(i))

    def test_iter_is_oldest_first(self, log):
        recipes = [make_recipe(g) for g in range(3)]
        for r in recipes:
            log.append(r)
        for want, got in zip(recipes, log):
            assert_same(want, got)

    def test_random_access_after_later_appends(self, log):
        first = make_recipe(0, n=7)
        log.append(first)
        log.append(make_recipe(1, n=2))
        assert_same(first, log.load(0))

    def test_unlabeled_recipe(self, log):
        r = make_recipe(0, label=None)
        log.append(r)
        assert log.load(0).label is None

    def test_empty_recipe(self, log):
        r = BackupRecipe(
            generation=9,
            fingerprints=np.zeros(0, dtype=np.uint64),
            sizes=np.zeros(0, dtype=np.uint32),
            containers=np.zeros(0, dtype=np.int64),
        )
        log.append(r)
        assert log.load(0).n_chunks == 0

    def test_nbytes_grows(self, log):
        assert log.nbytes == 0
        log.append(make_recipe(0))
        first = log.nbytes
        assert first > 0
        log.append(make_recipe(1))
        assert log.nbytes > first


class TestFileBacked:
    def test_bytes_live_on_disk(self, tmp_path):
        path = tmp_path / "r.log"
        with RecipeLog(str(path)) as log:
            log.append(make_recipe(0, n=1000))
            assert path.stat().st_size == log.nbytes

    def test_out_of_range_index(self, tmp_path):
        with RecipeLog(str(tmp_path / "r.log")) as log:
            log.append(make_recipe(0))
            with pytest.raises(IndexError):
                log.load(5)
