"""Recovery scanner: torn-tail truncation, GC reconciliation, index rebuild."""

import numpy as np
import pytest

from repro.faults import FaultInjector, FaultPlan, FaultyDisk, SimulatedCrash
from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.obs import ListEventSink, Observability, obs_session
from repro.storage.recipe import BackupRecipe
from repro.storage.recovery import RecoveryScanner
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def journaled_machine(container_bytes=1000, plan=None):
    inj = FaultInjector(plan)
    disk = FaultyDisk(profile=TEST_PROFILE, injector=inj)
    store = ContainerStore(
        disk,
        config=StoreConfig(container_bytes=container_bytes, seal_seeks=0, journal=True),
    )
    index = DiskChunkIndex(disk, expected_entries=10_000, journaled=True)
    return disk, store, index


def fill_container(store, index, fps, size=300):
    """Append chunks, then seal + commit by flushing."""
    for fp in fps:
        cid = store.append(fp, size)
        index.insert(fp, ChunkLocation(cid, 0))
    store.flush()
    index.flush()


def recipe_for(store, fps, size=300, generation=0):
    cids = []
    for fp in fps:
        # find the container holding fp
        cids.append(
            next(c for c in store.cids() if fp in set(store.get(c).fingerprints))
        )
    return BackupRecipe(
        generation=generation,
        fingerprints=np.asarray(fps, dtype=np.uint64),
        sizes=np.full(len(fps), size, dtype=np.uint32),
        containers=np.asarray(cids, dtype=np.int64),
    )


class TestTornTail:
    def test_crash_between_seal_and_marker_is_truncated(self):
        # journaled seal = payload write (op 1) then marker write (op 2)
        _, store, index = journaled_machine(plan=FaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            fill_container(store, index, fps=[1, 2, 3])
        torn = store.uncommitted_cids()
        assert len(torn) == 1

        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.torn_truncated == 1
        assert store.cids() == []
        assert report.index_entries_rebuilt == 0

    def test_committed_containers_survive(self):
        _, store, index = journaled_machine()
        fill_container(store, index, fps=[1, 2, 3])
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.torn_truncated == 0
        assert report.containers_scanned == 1
        assert len(store.cids()) == 1


class TestIndexRebuild:
    def test_rebuild_covers_every_committed_chunk(self):
        _, store, index = journaled_machine(container_bytes=900)
        fill_container(store, index, fps=[1, 2, 3])
        fill_container(store, index, fps=[4, 5, 6])
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.index_entries_rebuilt == 6
        for fp in range(1, 7):
            loc = index.peek(fp)
            assert loc is not None
            assert fp in set(store.get(loc.cid).fingerprints)
            # segment identity is not persisted in container metadata
            assert loc.sid == -1

    def test_dropped_flush_entries_are_recovered(self):
        # the second index flush is silently lost; after a crash those
        # entries are gone from the index until recovery rebuilds it
        _, store, index = journaled_machine(
            container_bytes=900, plan=FaultPlan(drop_flushes=frozenset({2}))
        )
        fill_container(store, index, fps=[1, 2, 3])
        fill_container(store, index, fps=[4, 5, 6])  # this flush is dropped
        store.crash()
        index.crash()
        assert index.peek(1) is not None
        assert index.peek(4) is None  # lost with the dropped flush
        report, _ = RecoveryScanner(store, index).recover()
        assert report.index_entries_rebuilt == 6
        assert index.peek(4) is not None

    def test_recovery_charges_simulated_time(self):
        disk, store, index = journaled_machine()
        fill_container(store, index, fps=[1, 2, 3])
        store.crash()
        index.crash()
        t0 = disk.clock.now
        report, _ = RecoveryScanner(store, index).recover()
        assert report.sim_seconds > 0
        assert disk.clock.now > t0


class TestGCReconciliation:
    def test_dangling_mark_rolls_back(self):
        _, store, index = journaled_machine()
        fill_container(store, index, fps=[1, 2, 3])
        store.journal_append({"kind": "gc_mark", "victims": [0]})
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.gc_rolled_back
        assert not report.gc_rolled_forward
        # the victims were never removed; the mark is gone
        assert len(store.cids()) == 1
        kinds = [r["kind"] for r in store.journal_records()]
        assert "gc_mark" not in kinds

    def test_durable_commit_rolls_forward(self):
        _, store, index = journaled_machine(container_bytes=900)
        fill_container(store, index, fps=[1, 2, 3])  # cid 0: the victim
        fill_container(store, index, fps=[1, 2, 3])  # cid 1: moved copies
        old_cid, new_cid = store.cids()
        moved = {(fp, old_cid): new_cid for fp in (1, 2, 3)}
        store.journal_append({"kind": "gc_mark", "victims": [old_cid]})
        store.journal_append(
            {"kind": "gc_commit", "victims": [old_cid], "moved": moved}
        )
        # crash before the removals/remap were applied
        store.crash()
        index.crash()
        retained = [recipe_for(store, [1, 2, 3])]
        # the pre-crash recipe still points at the victim
        retained[0].containers[:] = old_cid
        report, remapped = RecoveryScanner(store, index).recover(retained)
        assert report.gc_rolled_forward
        assert report.recipes_remapped == 1
        assert not store.has(old_cid)
        assert list(remapped[0].containers) == [new_cid] * 3
        # the rebuilt index points at the surviving copy
        assert index.peek(1).cid == new_cid

    def test_applied_commit_is_a_noop(self):
        _, store, index = journaled_machine()
        fill_container(store, index, fps=[1, 2, 3])
        store.journal_append({"kind": "gc_mark", "victims": [99]})
        store.journal_append({"kind": "gc_commit", "victims": [99], "moved": {}})
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert not report.gc_rolled_back
        assert not report.gc_rolled_forward


class TestObservability:
    def test_recovery_pass_event_and_counters(self):
        _, store, index = journaled_machine(plan=FaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            fill_container(store, index, fps=[1, 2, 3])
        store.crash()
        index.crash()
        sink = ListEventSink()
        with obs_session(Observability(events=sink)) as obs:
            RecoveryScanner(store, index).recover()
        assert obs.registry.counter("recovery.passes").value == 1
        assert obs.registry.counter("recovery.torn_truncated").value == 1
        events = [e for e in sink.events if e["type"] == "recovery_pass"]
        assert len(events) == 1
        assert events[0]["torn_truncated"] == 1
