import pytest

from repro.storage.disk import DiskProfile, DiskStats, HDD_2012, SSD_SATA


class TestDiskProfile:
    def test_transfer_time(self):
        p = DiskProfile("p", 0.01, 100e6)
        assert p.transfer_time(100e6) == pytest.approx(1.0)

    def test_access_time_eq1_shape(self):
        p = DiskProfile("p", 0.01, 100e6)
        assert p.access_time(100e6, seeks=3) == pytest.approx(1.03)

    def test_zero_seek_profile_allowed(self):
        p = DiskProfile("ram", 0.0, 1e9)
        assert p.access_time(0, seeks=100) == 0.0

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ValueError):
            DiskProfile("bad", 0.01, 0)

    def test_rejects_negative_seek(self):
        with pytest.raises(ValueError):
            DiskProfile("bad", -1, 1e6)

    def test_builtin_profiles_sane(self):
        assert HDD_2012.seek_time_s > SSD_SATA.seek_time_s
        assert SSD_SATA.seq_bandwidth > HDD_2012.seq_bandwidth


class TestDiskModel:
    def test_seek_advances_clock(self, disk):
        t = disk.seek()
        assert disk.clock.now == pytest.approx(t)
        assert disk.stats.seeks == 1

    def test_multi_seek(self, disk):
        disk.seek(5)
        assert disk.stats.seeks == 5

    def test_read_accounting(self, disk):
        disk.read(2_000_000, seeks=1)
        assert disk.stats.bytes_read == 2_000_000
        assert disk.stats.seeks == 1
        expected = disk.profile.seek_time_s + 2_000_000 / disk.profile.seq_bandwidth
        assert disk.clock.now == pytest.approx(expected)

    def test_write_accounting(self, disk):
        disk.write(1_000_000)
        assert disk.stats.bytes_written == 1_000_000
        assert disk.stats.seeks == 0

    def test_estimate_does_not_mutate(self, disk):
        t = disk.estimate(seeks=2, nbytes=1000)
        assert t > 0
        assert disk.clock.now == 0.0
        assert disk.stats.seeks == 0

    def test_rejects_negative(self, disk):
        with pytest.raises(ValueError):
            disk.read(-1)


class TestDiskStats:
    def test_snapshot_independent(self, disk):
        snap = disk.stats.snapshot()
        disk.seek()
        assert snap.seeks == 0
        assert disk.stats.seeks == 1

    def test_delta_since(self, disk):
        disk.read(1000, seeks=1)
        snap = disk.stats.snapshot()
        disk.read(500, seeks=2)
        d = disk.stats.delta_since(snap)
        assert d.bytes_read == 500
        assert d.seeks == 2

    def test_total_time_sums_components(self):
        s = DiskStats(read_time_s=1.0, write_time_s=2.0, seek_time_s=0.5)
        assert s.total_time_s == pytest.approx(3.5)
