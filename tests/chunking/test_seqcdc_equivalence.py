"""Skip-then-scan Gear path: bit-identical to the exact reference sweep.

The tentpole contract: ``GearChunker()`` (SeqCDC-style skip-then-scan)
and ``GearChunker(exact=True)`` (the 64-pass full sweep) produce the
same cut sequence on every input, for every block-size knob — the knobs
tune memory and speed, never the cuts. Property-tested here with twin
runs, plus the shared :func:`select_cuts` clamp against a naive scalar
reference, the documented edge cases, bounded-allocation streaming, and
the byte-accounting invariants behind the ``chunking.*`` counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.gear import WARMUP, GearChunker
from repro.chunking.select import select_cuts
from repro.obs import obs_session


def random_bytes(n: int, seed: int = 0) -> bytes:
    return bytes(np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8))


class TestTwinRun:
    """fast path == exact path, cut for cut."""

    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(0, 40_000),
        data_seed=st.integers(0, 2**31 - 1),
        avg=st.sampled_from([256, 1024, 4096]),
        scan_block=st.sampled_from([64, 1000, 4096]),
        hash_block=st.sampled_from([4096, 1 << 20]),
    )
    def test_random_buffers(self, n, data_seed, avg, scan_block, hash_block):
        data = random_bytes(n, data_seed)
        fast = GearChunker(avg_size=avg, seed=7, scan_block=scan_block)
        exact = GearChunker(avg_size=avg, seed=7, exact=True, hash_block=hash_block)
        np.testing.assert_array_equal(
            fast.cut_boundaries(data), exact.cut_boundaries(data)
        )

    @settings(deadline=None, max_examples=60)
    @given(data=st.binary(max_size=20_000))
    def test_arbitrary_bytes(self, data):
        """Structured/repetitive inputs (hypothesis loves runs of one
        byte) exercise the degenerate-hash corners random data misses."""
        fast = GearChunker(avg_size=512)
        exact = GearChunker(avg_size=512, exact=True)
        np.testing.assert_array_equal(
            fast.cut_boundaries(data), exact.cut_boundaries(data)
        )

    @settings(deadline=None, max_examples=25)
    @given(
        data_seed=st.integers(0, 1000),
        min_frac=st.sampled_from([1, 2, 4]),
        max_frac=st.sampled_from([1, 2, 4]),
    )
    def test_nondefault_clamps(self, data_seed, min_frac, max_frac):
        """min/avg/max ratios other than the 1/4 .. 4x defaults."""
        avg = 1024
        kwargs = dict(
            avg_size=avg, min_size=avg // min_frac, max_size=avg * max_frac
        )
        data = random_bytes(12_000, data_seed)
        np.testing.assert_array_equal(
            GearChunker(**kwargs).cut_boundaries(data),
            GearChunker(**kwargs, exact=True).cut_boundaries(data),
        )


class TestSelectCuts:
    """The shared vectorized clamp against a naive scalar walk."""

    @staticmethod
    def naive(candidates, n, min_size, max_size):
        cuts = [0]
        last = 0
        cand = [int(c) for c in candidates]
        while last < n:
            limit = last + max_size
            cut = next(
                (c for c in cand if last + min_size <= c < limit), None
            )
            if cut is None:
                cut = min(limit, n)
            if cut >= n:
                cut = n
            cuts.append(cut)
            last = cut
        return cuts

    @settings(deadline=None, max_examples=150)
    @given(
        n=st.integers(0, 5000),
        min_size=st.integers(1, 400),
        extra=st.integers(0, 2000),
        cand=st.sets(st.integers(1, 5000), max_size=200),
    )
    def test_matches_naive_walk(self, n, min_size, extra, cand):
        max_size = min_size + extra
        candidates = np.asarray(
            sorted(c for c in cand if c <= n), dtype=np.int64
        )
        got = select_cuts(candidates, n, min_size, max_size)
        assert got.tolist() == self.naive(candidates, n, min_size, max_size)

    def test_empty_input(self):
        assert select_cuts(np.zeros(0, np.int64), 0, 10, 40).tolist() == [0]

    def test_no_candidates_forces_max(self):
        got = select_cuts(np.zeros(0, np.int64), 250, 10, 100)
        assert got.tolist() == [0, 100, 200, 250]


class TestEdgeCases:
    def test_empty_input(self):
        for chunker in (GearChunker(), GearChunker(exact=True)):
            assert chunker.cut_boundaries(b"").tolist() == [0]
            stats = chunker.last_stats
            assert stats is not None and stats.bytes_in == 0
            assert stats.chunks_out == 0

    def test_input_shorter_than_min_size(self):
        data = random_bytes(100)
        for chunker in (
            GearChunker(avg_size=1024),
            GearChunker(avg_size=1024, exact=True),
        ):
            assert chunker.cut_boundaries(data).tolist() == [0, 100]
            assert chunker.last_stats.chunks_out == 1

    def test_zero_candidates_means_forced_max_cuts(self):
        """A constant buffer whose steady-state hash misses the mask has
        no content cuts at all: every boundary is a forced max cut."""
        n = 20_000
        exact = GearChunker(avg_size=1024, seed=2012, exact=True)
        for b in range(256):
            data = bytes([b]) * n
            exact_cuts = exact.cut_boundaries(data)
            if exact.last_stats.candidates == 0:
                break
        else:  # pragma: no cover - (1023/1024)^256 chance per seed
            pytest.skip("every constant byte fires the mask for this seed")
        fast = GearChunker(avg_size=1024, seed=2012)
        cuts = fast.cut_boundaries(data)
        np.testing.assert_array_equal(cuts, exact_cuts)
        max_size = 4096
        assert cuts.tolist() == list(range(0, n, max_size)) + [n]
        assert fast.last_stats.candidates == 0

    def test_degenerate_min_avg_max_equal(self):
        """min == avg == max degenerates to fixed-size chunking."""
        data = random_bytes(5000, seed=9)
        fast = GearChunker(avg_size=512, min_size=512, max_size=512)
        exact = GearChunker(avg_size=512, min_size=512, max_size=512, exact=True)
        cuts = fast.cut_boundaries(data)
        np.testing.assert_array_equal(cuts, exact.cut_boundaries(data))
        assert cuts.tolist() == list(range(0, 5000, 512)) + [5000]

    def test_rejects_bad_clamps(self):
        with pytest.raises(ValueError):
            GearChunker(avg_size=1024, min_size=2048)
        with pytest.raises(ValueError):
            GearChunker(avg_size=1024, max_size=512)
        with pytest.raises(ValueError):
            GearChunker(avg_size=1024, scan_block=0)


class TestBlockSizeIndependence:
    def test_10mb_determinism_across_block_sizes(self):
        """One 10 MB buffer, many block-size knobs, one cut sequence."""
        data = random_bytes(10 * 1024 * 1024, seed=42)
        reference = GearChunker().cut_boundaries(data)
        assert reference.size > 100  # sanity: real chunking happened
        for scan_block in (257, 1024, 8192, 32 * 1024):
            got = GearChunker(scan_block=scan_block).cut_boundaries(data)
            np.testing.assert_array_equal(got, reference)
        # and a second identical run is bit-identical (determinism)
        np.testing.assert_array_equal(
            GearChunker().cut_boundaries(data), reference
        )

    def test_exact_path_blockwise_matches_one_shot(self):
        data = random_bytes(100_000, seed=5)
        small = GearChunker(avg_size=1024, exact=True, hash_block=4096)
        big = GearChunker(avg_size=1024, exact=True, hash_block=1 << 26)
        np.testing.assert_array_equal(
            small.cut_boundaries(data), big.cut_boundaries(data)
        )
        np.testing.assert_array_equal(
            small.rolling_hashes(data), big.rolling_hashes(data)
        )


class TestBoundedAllocation:
    def test_exact_path_slices_bounded_by_hash_block(self, monkeypatch):
        """The streaming sweep never materializes a slice larger than
        ``hash_block + WARMUP`` bytes, however large the input."""
        hash_block = 8192
        n = 200_000
        sizes = []
        orig = GearChunker._eval_block

        def spy(self, buf, lo, stop):
            sizes.append(stop - lo)
            return orig(self, buf, lo, stop)

        monkeypatch.setattr(GearChunker, "_eval_block", spy)
        chunker = GearChunker(avg_size=1024, exact=True, hash_block=hash_block)
        chunker.cut_boundaries(random_bytes(n, seed=3))
        assert len(sizes) == -(-n // hash_block)
        assert max(sizes) <= hash_block + WARMUP

    def test_rolling_hashes_slices_bounded(self, monkeypatch):
        hash_block = 4096
        n = 50_000
        sizes = []
        orig = GearChunker._eval_block
        monkeypatch.setattr(
            GearChunker,
            "_eval_block",
            lambda self, buf, lo, stop: (
                sizes.append(stop - lo),
                orig(self, buf, lo, stop),
            )[1],
        )
        GearChunker(hash_block=hash_block).rolling_hashes(random_bytes(n))
        assert sizes and max(sizes) <= hash_block + WARMUP


class TestScanStats:
    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(0, 60_000),
        data_seed=st.integers(0, 500),
        scan_block=st.sampled_from([64, 1024, 8192]),
    )
    def test_byte_accounting_partitions_input(self, n, data_seed, scan_block):
        """scan + skipped == bytes_in exactly, on every input."""
        data = random_bytes(n, data_seed)
        chunker = GearChunker(avg_size=1024, scan_block=scan_block)
        cuts = chunker.cut_boundaries(data)
        s = chunker.last_stats
        assert s.bytes_in == n
        assert s.scan_bytes + s.skipped_bytes == n
        assert s.scan_bytes >= 0 and s.skipped_bytes >= 0
        assert s.warmup_bytes >= 0
        assert s.chunks_out == cuts.size - 1

    def test_skip_region_sharp_bound(self):
        """Every chunk's first min_size - 1 positions are skipped except
        for the previous window's sub-block overshoot: the final
        sub-block extends at most scan_block - 1 bytes past the cut. A
        small scan_block makes the bound sharp — the quantitative basis
        of the 'hashes far less than the input' claim."""
        data = random_bytes(4 * 1024 * 1024, seed=17)
        chunker = GearChunker(scan_block=64)  # avg 8 KiB: min 2048
        chunker.cut_boundaries(data)
        s = chunker.last_stats
        min_skip = (s.chunks_out - 1) * (chunker.min_size - 1)
        overshoot = s.chunks_out * (chunker.scan_block - 1)
        assert s.skipped_bytes >= min_skip - overshoot
        assert s.scan_bytes <= s.bytes_in - min_skip + overshoot

    def test_fast_path_skips_a_nontrivial_fraction(self):
        data = random_bytes(4 * 1024 * 1024, seed=17)
        chunker = GearChunker()  # defaults: avg 8 KiB
        chunker.cut_boundaries(data)
        s = chunker.last_stats
        assert 0 < s.scan_bytes / s.bytes_in < 0.95
        assert s.skipped_bytes > 0

    def test_exact_path_scans_everything(self):
        data = random_bytes(100_000, seed=1)
        chunker = GearChunker(avg_size=1024, exact=True)
        chunker.cut_boundaries(data)
        s = chunker.last_stats
        assert s.scan_bytes == s.bytes_in == 100_000
        assert s.skipped_bytes == 0


class TestObsTwinRun:
    def test_recording_never_changes_cuts(self):
        data = random_bytes(300_000, seed=11)
        plain = GearChunker(avg_size=2048).cut_boundaries(data)
        with obs_session() as obs:
            recorded = GearChunker(avg_size=2048).cut_boundaries(data)
        np.testing.assert_array_equal(plain, recorded)
        snap = obs.registry.snapshot()
        counters = snap["counters"]
        assert counters["chunking.bytes_in"] == len(data)
        assert (
            counters["chunking.scan_bytes"] + counters["chunking.skipped_bytes"]
            == len(data)
        )
        assert counters["chunking.chunks_out"] == plain.size - 1
        span = snap["spans"]["chunking.phase.cut"]
        assert span["count"] == 1
        assert span["sim_seconds"] > 0

    def test_disabled_session_records_nothing(self):
        chunker = GearChunker(avg_size=2048)
        chunker.cut_boundaries(random_bytes(10_000))
        # no ambient session: the only trace is last_stats
        assert chunker.last_stats is not None
