"""The word-fold fingerprint family: batch fold == scalar reference.

``fingerprint_segments_fast`` is a different *family* from the BLAKE2b
path (not a drop-in hash), but within the family the vectorized batch
fold must match :func:`fingerprint64_fast` bit-for-bit per segment, for
every segment-size mix and batch granularity.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.fingerprint import (
    fingerprint64_fast,
    fingerprint_segments,
    fingerprint_segments_fast,
)
from repro.chunking.gear import GearChunker


def random_bytes(n: int, seed: int = 0) -> bytes:
    return bytes(np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8))


def boundaries_from_sizes(sizes):
    return np.concatenate(
        [[0], np.cumsum(np.asarray(sizes, dtype=np.int64))]
    )


class TestBatchMatchesScalar:
    @settings(deadline=None, max_examples=60)
    @given(
        sizes=st.lists(st.integers(1, 300), min_size=1, max_size=40),
        data_seed=st.integers(0, 2**31 - 1),
    )
    def test_segment_mix(self, sizes, data_seed):
        bounds = boundaries_from_sizes(sizes)
        data = random_bytes(int(bounds[-1]), data_seed)
        got = fingerprint_segments_fast(data, bounds)
        expected = [
            fingerprint64_fast(data[int(bounds[i]) : int(bounds[i + 1])])
            for i in range(len(sizes))
        ]
        assert got.tolist() == expected

    @settings(deadline=None, max_examples=30)
    @given(
        sizes=st.lists(st.integers(1, 500), min_size=1, max_size=60),
        batch_bytes=st.sampled_from([1, 64, 1000, 1 << 20]),
    )
    def test_batch_granularity_never_changes_values(self, sizes, batch_bytes):
        bounds = boundaries_from_sizes(sizes)
        data = random_bytes(int(bounds[-1]), 7)
        reference = fingerprint_segments_fast(data, bounds)
        got = fingerprint_segments_fast(data, bounds, batch_bytes=batch_bytes)
        np.testing.assert_array_equal(got, reference)

    def test_cdc_segments(self):
        """Real chunker output: the production pairing."""
        data = random_bytes(500_000, seed=1)
        bounds = GearChunker(avg_size=4096).cut_boundaries(data)
        got = fingerprint_segments_fast(data, bounds)
        for i in (0, 1, len(got) // 2, len(got) - 1):
            seg = data[int(bounds[i]) : int(bounds[i + 1])]
            assert int(got[i]) == fingerprint64_fast(seg)

    def test_word_edge_sizes(self):
        """Sizes straddling the 8-byte word boundary (padding corners)."""
        for size in (1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65):
            data = random_bytes(size, seed=size)
            got = fingerprint_segments_fast(data, [0, size])
            assert int(got[0]) == fingerprint64_fast(data)

    def test_tiny_segment_scatter_path(self):
        """Hundreds of 1-3 byte segments force the vectorized byte
        scatter (per-segment memcpy would dominate)."""
        sizes = ([1, 2, 3] * 200)[:500]
        bounds = boundaries_from_sizes(sizes)
        data = random_bytes(int(bounds[-1]), 2)
        got = fingerprint_segments_fast(data, bounds)
        for i in range(0, len(sizes), 97):
            seg = data[int(bounds[i]) : int(bounds[i + 1])]
            assert int(got[i]) == fingerprint64_fast(seg)

    def test_length_breaks_prefix_collisions(self):
        """A short chunk and its zero-padded extension must differ."""
        a = b"\x01\x02\x03"
        b = a + b"\x00" * 5  # same padded words, different length
        assert fingerprint64_fast(a) != fingerprint64_fast(b)

    def test_empty_segment_list(self):
        assert fingerprint_segments_fast(b"", [0]).size == 0
        assert fingerprint_segments_fast(b"", np.zeros(0, np.int64)).size == 0


class TestValidation:
    def test_rejects_non_increasing_boundaries(self):
        data = random_bytes(100)
        with pytest.raises(ValueError, match="strictly increasing"):
            fingerprint_segments_fast(data, [0, 50, 50, 100])
        with pytest.raises(ValueError, match="strictly increasing"):
            fingerprint_segments_fast(data, [0, 60, 40, 100])


class TestChunkerIntegration:
    def test_chunk_fingerprint_families(self):
        data = random_bytes(200_000, seed=3)
        chunker = GearChunker(avg_size=4096)
        blake = chunker.chunk(data)  # default family
        fast = chunker.chunk(data, fingerprints="fast")
        np.testing.assert_array_equal(blake.sizes, fast.sizes)
        # different families: same cuts, disjoint fingerprint values
        assert not np.array_equal(blake.fps, fast.fps)
        # fast family matches the scalar reference
        bounds = boundaries_from_sizes(fast.sizes)
        assert int(fast.fps[0]) == fingerprint64_fast(
            data[: int(bounds[1])]
        )
        # blake family still matches its own reference path
        np.testing.assert_array_equal(
            blake.fps, fingerprint_segments(data, bounds.tolist())
        )

    def test_chunk_rejects_unknown_family(self):
        with pytest.raises(ValueError, match="fingerprint family"):
            GearChunker().chunk(b"abc", fingerprints="md5")

    def test_fast_family_is_deterministic_across_calls(self):
        data = random_bytes(50_000, seed=4)
        a = GearChunker().chunk(data, fingerprints="fast")
        b = GearChunker().chunk(data, fingerprints="fast")
        np.testing.assert_array_equal(a.fps, b.fps)
