import numpy as np
import pytest

from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import GearChunker
from repro.chunking.rabin import RabinChunker


def random_bytes(n: int, seed: int = 0) -> bytes:
    return bytes(np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8))


def check_boundaries(boundaries, n):
    b = list(boundaries)
    assert b[0] == 0
    assert b[-1] == n
    assert all(b[i] < b[i + 1] for i in range(len(b) - 1))


class TestFixedChunker:
    def test_exact_division(self):
        c = FixedChunker(chunk_size=100)
        b = c.cut_boundaries(bytes(400))
        assert b.tolist() == [0, 100, 200, 300, 400]

    def test_trailing_short_chunk(self):
        c = FixedChunker(chunk_size=100)
        b = c.cut_boundaries(bytes(250))
        assert b.tolist() == [0, 100, 200, 250]

    def test_empty_input(self):
        c = FixedChunker()
        assert c.cut_boundaries(b"").tolist() == [0]
        assert len(c.chunk(b"")) == 0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            FixedChunker(chunk_size=0)

    def test_shift_intolerance(self):
        """The known weakness: one inserted byte re-aligns everything."""
        data = random_bytes(10000)
        c = FixedChunker(chunk_size=512)
        a = set(c.chunk(data).fps.tolist())
        b = set(c.chunk(b"\x00" + data).fps.tolist())
        assert len(a & b) / len(a) < 0.2


@pytest.mark.parametrize("chunker_cls", [GearChunker, RabinChunker])
class TestContentDefinedChunkers:
    def test_boundaries_wellformed(self, chunker_cls):
        data = random_bytes(20000)
        c = chunker_cls(avg_size=512)
        check_boundaries(c.cut_boundaries(data), len(data))

    def test_deterministic(self, chunker_cls):
        data = random_bytes(10000)
        c1 = chunker_cls(avg_size=512)
        c2 = chunker_cls(avg_size=512)
        assert c1.cut_boundaries(data).tolist() == c2.cut_boundaries(data).tolist()

    def test_respects_min_max(self, chunker_cls):
        data = random_bytes(50000, seed=3)
        c = chunker_cls(avg_size=512, min_size=128, max_size=2048)
        sizes = np.diff(c.cut_boundaries(data))
        # all but the final chunk obey the min; all obey the max
        assert (sizes[:-1] >= 128).all()
        assert (sizes <= 2048).all()

    def test_average_in_ballpark(self, chunker_cls):
        data = random_bytes(200000, seed=5)
        c = chunker_cls(avg_size=1024)
        sizes = np.diff(c.cut_boundaries(data))
        assert 512 < sizes.mean() < 2300

    def test_shift_tolerance(self, chunker_cls):
        """Insert 16 bytes mid-stream: most chunks must survive."""
        data = random_bytes(60000, seed=9)
        c = chunker_cls(avg_size=512)
        a = set(c.chunk(data).fps.tolist())
        mutated = data[:30000] + random_bytes(16, seed=10) + data[30000:]
        b = set(c.chunk(mutated).fps.tolist())
        assert len(a & b) / len(a) > 0.85

    def test_reassembly_preserves_length(self, chunker_cls):
        data = random_bytes(33333, seed=11)
        cs = chunker_cls(avg_size=1024).chunk(data)
        assert cs.total_bytes == len(data)

    def test_empty_input(self, chunker_cls):
        c = chunker_cls(avg_size=512)
        assert c.cut_boundaries(b"").tolist() == [0]

    def test_single_byte(self, chunker_cls):
        c = chunker_cls(avg_size=512)
        assert c.cut_boundaries(b"A").tolist() == [0, 1]

    def test_rejects_bad_ordering(self, chunker_cls):
        with pytest.raises(ValueError):
            chunker_cls(avg_size=512, min_size=600)


class TestGearSpecifics:
    def test_rolling_hash_window_locality(self):
        """Gear hash at position i depends only on the trailing 64 bytes."""
        g = GearChunker(avg_size=512)
        a = random_bytes(500, seed=1)
        b = random_bytes(500, seed=2)
        suffix = random_bytes(200, seed=3)
        ha = g.rolling_hashes(a + suffix)
        hb = g.rolling_hashes(b + suffix)
        # positions >= 64 bytes into the shared suffix agree
        assert np.array_equal(ha[500 + 64 :], hb[500 + 64 :])

    def test_different_seeds_cut_differently(self):
        data = random_bytes(30000, seed=4)
        a = GearChunker(avg_size=512, seed=1).cut_boundaries(data)
        b = GearChunker(avg_size=512, seed=2).cut_boundaries(data)
        assert a.tolist() != b.tolist()

    def test_max_cut_on_incompressible_run(self):
        """All-zero data never fires a content boundary reliably; max_size
        must bound every chunk."""
        g = GearChunker(avg_size=512, min_size=128, max_size=1024)
        sizes = np.diff(g.cut_boundaries(bytes(20000)))
        assert (sizes <= 1024).all()


class TestRabinSpecifics:
    def test_window_locality(self):
        """Same trailing window content + same state reset behaviour: two
        streams sharing a long suffix converge to identical cuts."""
        r = RabinChunker(avg_size=512)
        shared = random_bytes(40000, seed=21)
        a = random_bytes(1000, seed=22) + shared
        b = random_bytes(3000, seed=23) + shared
        cuts_a = {c - 1000 for c in r.cut_boundaries(a).tolist() if c > 1000}
        cuts_b = {c - 3000 for c in r.cut_boundaries(b).tolist() if c > 3000}
        inter = cuts_a & cuts_b
        assert len(inter) / max(len(cuts_a), 1) > 0.8
