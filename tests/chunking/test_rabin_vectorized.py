"""Vectorized Rabin path: cut-for-cut identical to the scalar loop.

The lag-table evaluation (one XOR gather per window byte) is exact only
when ``min_size >= window`` — below that, boundary checks can land
inside a partially-filled window whose value depends on the per-cut
state reset the scalar loop performs. The chunker auto-selects the
vectorized path exactly when it is exact, and refuses a forced
``vectorized=True`` otherwise.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.rabin import RabinChunker


def random_bytes(n: int, seed: int = 0) -> bytes:
    return bytes(np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8))


class TestCrossCheck:
    @settings(deadline=None, max_examples=20)
    @given(
        n=st.integers(0, 30_000),
        data_seed=st.integers(0, 2**31 - 1),
        avg=st.sampled_from([256, 1024, 4096]),
        hash_block=st.sampled_from([4096, 1 << 20]),
    )
    def test_vectorized_matches_scalar(self, n, data_seed, avg, hash_block):
        data = random_bytes(n, data_seed)
        chunker = RabinChunker(avg_size=avg, hash_block=hash_block)
        assert chunker.vectorized  # every sampled avg has min >= window
        np.testing.assert_array_equal(
            chunker.cut_boundaries(data), chunker.cut_boundaries_scalar(data)
        )

    @settings(deadline=None, max_examples=30)
    @given(data=st.binary(max_size=10_000))
    def test_arbitrary_bytes(self, data):
        chunker = RabinChunker(avg_size=512, min_size=128)
        np.testing.assert_array_equal(
            chunker.cut_boundaries(data), chunker.cut_boundaries_scalar(data)
        )

    def test_tiny_hash_block_crossing_many_blocks(self):
        data = random_bytes(300_000, seed=3)
        tiny = RabinChunker(avg_size=1024, hash_block=4096)
        np.testing.assert_array_equal(
            tiny.cut_boundaries(data), tiny.cut_boundaries_scalar(data)
        )

    def test_short_window_still_exact(self):
        chunker = RabinChunker(avg_size=256, min_size=64, window=16)
        data = random_bytes(50_000, seed=4)
        np.testing.assert_array_equal(
            chunker.cut_boundaries(data), chunker.cut_boundaries_scalar(data)
        )


class TestDispatch:
    def test_auto_vectorized_when_exactable(self):
        assert RabinChunker(avg_size=8192).vectorized  # min 2048 >= 48
        assert RabinChunker(avg_size=256, min_size=48).vectorized

    def test_auto_scalar_when_min_below_window(self):
        chunker = RabinChunker(avg_size=128)  # min 32 < window 48
        assert not chunker.vectorized
        data = random_bytes(5000, seed=5)
        np.testing.assert_array_equal(
            chunker.cut_boundaries(data), chunker.cut_boundaries_scalar(data)
        )

    def test_forcing_vectorized_below_window_raises(self):
        with pytest.raises(ValueError, match="min_size >= window"):
            RabinChunker(avg_size=128, vectorized=True)

    def test_forcing_scalar_is_allowed(self):
        chunker = RabinChunker(avg_size=8192, vectorized=False)
        assert not chunker.vectorized
        data = random_bytes(20_000, seed=6)
        np.testing.assert_array_equal(
            chunker.cut_boundaries(data),
            RabinChunker(avg_size=8192).cut_boundaries(data),
        )

    def test_empty_input(self):
        assert RabinChunker().cut_boundaries(b"").tolist() == [0]
        assert RabinChunker().cut_boundaries_scalar(b"").tolist() == [0]
