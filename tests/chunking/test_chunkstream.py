import numpy as np
import pytest

from repro.chunking.base import Chunk, ChunkStream

from tests.conftest import make_stream


class TestConstruction:
    def test_empty(self):
        s = ChunkStream.empty()
        assert len(s) == 0
        assert s.total_bytes == 0

    def test_from_pairs(self):
        s = ChunkStream.from_pairs([(1, 100), (2, 200)])
        assert len(s) == 2
        assert s.total_bytes == 300

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            ChunkStream(np.zeros(3, dtype=np.uint64), np.ones(2, dtype=np.uint32))

    def test_rejects_zero_sizes(self):
        with pytest.raises(ValueError):
            ChunkStream(np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint32))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ChunkStream(np.zeros((2, 2), dtype=np.uint64), np.ones((2, 2), dtype=np.uint32))


class TestAccess:
    def test_iteration_yields_chunks(self):
        s = ChunkStream.from_pairs([(1, 100), (2, 200)])
        chunks = list(s)
        assert chunks == [Chunk(1, 100), Chunk(2, 200)]

    def test_index_scalar(self):
        s = ChunkStream.from_pairs([(1, 100), (2, 200)])
        assert s[1] == Chunk(2, 200)

    def test_slice_returns_stream(self):
        s = make_stream(10)
        sub = s[2:5]
        assert isinstance(sub, ChunkStream)
        assert len(sub) == 3
        assert sub[0] == s[2]

    def test_equality(self):
        a = ChunkStream.from_pairs([(1, 10)])
        b = ChunkStream.from_pairs([(1, 10)])
        c = ChunkStream.from_pairs([(2, 10)])
        assert a == b
        assert a != c

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ChunkStream.empty())


class TestOps:
    def test_concat_order(self):
        a = ChunkStream.from_pairs([(1, 10)])
        b = ChunkStream.from_pairs([(2, 20)])
        c = ChunkStream.concat([a, b])
        assert list(c) == [Chunk(1, 10), Chunk(2, 20)]

    def test_concat_empty_list(self):
        assert len(ChunkStream.concat([])) == 0

    def test_unique_fingerprints_sorted(self):
        s = ChunkStream.from_pairs([(5, 10), (1, 10), (5, 10)])
        assert s.unique_fingerprints().tolist() == [1, 5]

    def test_duplicate_bytes_within(self):
        s = ChunkStream.from_pairs([(1, 100), (2, 50), (1, 100), (1, 100)])
        assert s.duplicate_bytes_within() == 200

    def test_duplicate_bytes_empty(self):
        assert ChunkStream.empty().duplicate_bytes_within() == 0

    def test_total_bytes_large_sum_no_overflow(self):
        # many large chunks: ensure int64 accumulation
        s = ChunkStream(
            np.arange(100000, dtype=np.uint64),
            np.full(100000, 65535, dtype=np.uint32),
        )
        assert s.total_bytes == 100000 * 65535
