import numpy as np

from repro.chunking.fingerprint import (
    fingerprint64,
    fingerprint_segments,
    splitmix64,
    splitmix64_array,
)


class TestFingerprint64:
    def test_deterministic(self):
        assert fingerprint64(b"hello") == fingerprint64(b"hello")

    def test_content_sensitive(self):
        assert fingerprint64(b"hello") != fingerprint64(b"hellp")

    def test_64bit_range(self):
        v = fingerprint64(b"x" * 1000)
        assert 0 <= v < 2**64

    def test_empty_input_ok(self):
        assert isinstance(fingerprint64(b""), int)


class TestFingerprintSegments:
    def test_matches_scalar(self):
        data = b"abcdefghij"
        fps = fingerprint_segments(data, [0, 3, 7, 10])
        assert fps[0] == fingerprint64(b"abc")
        assert fps[1] == fingerprint64(b"defg")
        assert fps[2] == fingerprint64(b"hij")

    def test_count(self):
        data = bytes(100)
        fps = fingerprint_segments(data, [0, 50, 100])
        assert fps.shape == (2,)
        assert fps.dtype == np.uint64

    def test_identical_content_identical_fp(self):
        data = b"samesame"
        fps = fingerprint_segments(data, [0, 4, 8])
        assert fps[0] == fps[1]


class TestSplitmix64:
    def test_bijective_no_collisions_in_range(self):
        xs = list(range(10000))
        ys = {splitmix64(x) for x in xs}
        assert len(ys) == len(xs)

    def test_array_matches_scalar(self):
        xs = np.arange(1000, dtype=np.uint64)
        arr = splitmix64_array(xs)
        for i in (0, 1, 42, 999):
            assert int(arr[i]) == splitmix64(i)

    def test_uniform_high_bits(self):
        # top bit should be ~50% set over sequential inputs
        arr = splitmix64_array(np.arange(4096, dtype=np.uint64))
        frac = float((arr >> np.uint64(63)).mean())
        assert 0.45 < frac < 0.55

    def test_large_input_wraps(self):
        big = (1 << 64) - 1
        assert 0 <= splitmix64(big) < 2**64
