"""Byte-level workload generation: real buffers through real CDC.

The byte twins of the chunk-level generators must (a) materialize
payloads as a pure function of the model fingerprint (so all modeled
redundancy survives the round trip through bytes), (b) keep the
BackupJob / ChunkStream contract the engines consume, and (c) stay lazy
— one generation's buffer live at a time.
"""

import numpy as np
import pytest

from repro.chunking.gear import GearChunker
from repro.workloads.bytegen import (
    byte_backup,
    chunk_payload,
    default_byte_chunker,
    group_fs_bytes,
    single_user_byte_stream,
)
from repro.workloads.fs_model import FileSystemModel
from repro.workloads.generators import BackupJob

FS_BYTES = 256 * 1024
# small model chunks + a small CDC target keep these tests fast while
# still cutting hundreds of chunks per generation
FS_KW = dict(avg_chunk_bytes=1024, min_chunk_bytes=256, max_chunk_bytes=4096)


def small_chunker(seed: int = 2012) -> GearChunker:
    return GearChunker(avg_size=1024, seed=seed)


class TestChunkPayload:
    def test_length_and_determinism(self):
        fps = np.arange(10, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        sizes = np.asarray([1, 7, 8, 9, 100, 1024, 3, 64, 65, 17], dtype=np.int64)
        a = chunk_payload(fps, sizes)
        assert len(a) == int(sizes.sum())
        assert a == chunk_payload(fps, sizes)

    def test_payload_is_a_function_of_the_fingerprint(self):
        """Equal fps -> byte-identical payloads, wherever they appear."""
        fp = np.uint64(123456789)
        sizes = np.asarray([500, 500], dtype=np.int64)
        buf = chunk_payload(np.asarray([fp, fp]), sizes)
        assert buf[:500] == buf[500:]
        # the same fp in a different stream position gives the same bytes
        other = chunk_payload(
            np.asarray([np.uint64(7), fp]), np.asarray([300, 500])
        )
        assert other[300:] == buf[:500]

    def test_different_fps_differ(self):
        sizes = np.asarray([256], dtype=np.int64)
        a = chunk_payload(np.asarray([np.uint64(1)]), sizes)
        b = chunk_payload(np.asarray([np.uint64(2)]), sizes)
        assert a != b

    def test_word_edge_sizes(self):
        """Trimming at non-multiple-of-8 sizes keeps the word prefix."""
        fp = np.uint64(42)
        full = chunk_payload(np.asarray([fp]), np.asarray([64]))
        for size in (1, 7, 8, 9, 17, 63):
            part = chunk_payload(np.asarray([fp]), np.asarray([size]))
            assert part == full[:size]

    def test_empty_and_invalid(self):
        assert chunk_payload(np.zeros(0, np.uint64), np.zeros(0, np.int64)) == b""
        with pytest.raises(ValueError):
            chunk_payload(np.asarray([np.uint64(1)]), np.asarray([0]))

    def test_tiny_chunk_gather_path_matches_memcpy_path(self):
        """Many 1-3 byte chunks force the vectorized gather; values must
        match the per-chunk slice semantics."""
        fps = np.arange(1, 301, dtype=np.uint64)
        sizes = np.asarray([1, 2, 3] * 100, dtype=np.int64)
        buf = chunk_payload(fps, sizes)
        assert len(buf) == int(sizes.sum())
        for i in (0, 1, 2, 150, 299):
            start = int(sizes[:i].sum())
            expected = chunk_payload(fps[i : i + 1], sizes[i : i + 1])
            assert buf[start : start + int(sizes[i])] == expected


class TestByteBackup:
    def test_matches_model_stream_bytes(self):
        fs = FileSystemModel(seed=3, initial_bytes=FS_BYTES, **FS_KW)
        data = byte_backup(fs)
        assert len(data) == fs.full_backup().total_bytes

    def test_evolution_changes_bytes_but_preserves_most(self):
        fs = FileSystemModel(seed=3, initial_bytes=FS_BYTES, **FS_KW)
        before = byte_backup(fs)
        fs.evolve()
        after = byte_backup(fs)
        assert before != after
        # CDC over both recovers heavy redundancy despite shifts
        chunker = small_chunker()
        a = chunker.chunk(before, fingerprints="fast")
        b = chunker.chunk(after, fingerprints="fast")
        prev = set(a.fps.tolist())
        dup = sum(
            int(s) for f, s in zip(b.fps, b.sizes) if int(f) in prev
        )
        assert dup / b.total_bytes > 0.5


class TestSingleUserByteStream:
    def jobs(self, n=3, seed=1):
        return list(
            single_user_byte_stream(
                n, FS_BYTES, seed=seed, chunker=small_chunker(), **FS_KW
            )
        )

    def test_contract(self):
        jobs = self.jobs()
        assert [j.generation for j in jobs] == [0, 1, 2]
        for j in jobs:
            assert isinstance(j, BackupJob)
            assert j.label == "user0"
            assert len(j.stream) > 10
            assert j.stream.fps.dtype == np.uint64
            assert int(j.stream.sizes.min()) > 0

    def test_deterministic(self):
        a = self.jobs(seed=5)
        b = self.jobs(seed=5)
        assert all(x.stream == y.stream for x, y in zip(a, b))

    def test_inter_generation_redundancy_survives_cdc(self):
        jobs = self.jobs()
        prev = set(jobs[0].stream.fps.tolist())
        cur = jobs[1].stream
        dup = sum(int(s) for f, s in zip(cur.fps, cur.sizes) if int(f) in prev)
        assert dup / cur.total_bytes > 0.5

    def test_lazy_one_generation_at_a_time(self):
        gen = single_user_byte_stream(
            1000, FS_BYTES, seed=1, chunker=small_chunker(), **FS_KW
        )
        first = next(gen)  # materializes only generation 0
        assert first.generation == 0
        gen.close()

    def test_rejects_zero_generations(self):
        with pytest.raises(ValueError):
            list(single_user_byte_stream(0, FS_BYTES))


class TestGroupFsBytes:
    def jobs(self, n_backups=6, seed=1, n_users=3):
        return list(
            group_fs_bytes(
                per_user_bytes=FS_BYTES,
                seed=seed,
                n_users=n_users,
                n_backups=n_backups,
                chunker=small_chunker(),
                **FS_KW,
            )
        )

    def test_round_robin_labels(self):
        jobs = self.jobs()
        assert [j.label for j in jobs] == [
            "student0", "student1", "student2",
            "student0", "student1", "student2",
        ]
        assert [j.generation for j in jobs] == list(range(6))

    def test_deterministic(self):
        a = self.jobs(seed=9)
        b = self.jobs(seed=9)
        assert all(x.stream == y.stream for x, y in zip(a, b))

    def test_cross_user_shared_chunks(self):
        """The shared pool materializes to identical bytes for every
        user, so CDC recovers cross-user redundancy."""
        jobs = self.jobs(n_backups=3)
        u0 = set(jobs[0].stream.fps.tolist())
        u1 = set(jobs[1].stream.fps.tolist())
        assert u0 & u1

    def test_second_round_redundant_with_first(self):
        jobs = self.jobs(n_backups=6)
        prev = set(jobs[0].stream.fps.tolist())
        cur = jobs[3].stream  # student0's second backup
        dup = sum(int(s) for f, s in zip(cur.fps, cur.sizes) if int(f) in prev)
        assert dup / cur.total_bytes > 0.5

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            list(group_fs_bytes(per_user_bytes=0))
        with pytest.raises(ValueError):
            list(group_fs_bytes(per_user_bytes=FS_BYTES, n_users=0))


class TestDefaultChunker:
    def test_defaults(self):
        chunker = default_byte_chunker()
        assert isinstance(chunker, GearChunker)
        assert chunker.avg_size == 8 * 1024
        assert not chunker.exact
        assert default_byte_chunker(avg_size=2048).avg_size == 2048
