import numpy as np
import pytest

from repro._util import MIB
from repro.workloads.fs_model import ChunkIdAllocator, ChurnProfile, FileSystemModel


class TestChunkIdAllocator:
    def test_unique_across_takes(self):
        a = ChunkIdAllocator(1)
        fps = np.concatenate([a.take(100), a.take(100), a.take(100)])
        assert np.unique(fps).size == 300

    def test_deterministic_per_seed(self):
        assert np.array_equal(ChunkIdAllocator(1).take(10), ChunkIdAllocator(1).take(10))

    def test_different_seeds_disjoint(self):
        a = ChunkIdAllocator(1).take(1000)
        b = ChunkIdAllocator(2).take(1000)
        assert np.intersect1d(a, b).size == 0

    def test_chunk_sizes_bounds(self):
        a = ChunkIdAllocator(1)
        sizes = a.chunk_sizes(1000, avg_bytes=8192, min_bytes=2048, max_bytes=65536)
        assert sizes.min() >= 2048
        assert sizes.max() <= 65536
        assert 6000 < sizes.mean() < 11000

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            ChunkIdAllocator(1).take(0)


class TestChurnProfile:
    def test_defaults_valid(self):
        ChurnProfile()

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            ChurnProfile(modify_frac=1.5)
        with pytest.raises(ValueError):
            ChurnProfile(insert_prob=0.6, delete_prob=0.6)
        with pytest.raises(ValueError):
            ChurnProfile(hot_fraction=0.0)
        with pytest.raises(ValueError):
            ChurnProfile(file_move_frac=-0.1)


class TestFileSystemModel:
    def make(self, nbytes=2 * MIB, churn=None, **kw):
        return FileSystemModel(seed=3, initial_bytes=nbytes, churn=churn, **kw)

    def test_initial_size_near_target(self):
        fs = self.make(4 * MIB)
        assert 0.95 * 4 * MIB <= fs.total_bytes <= 1.3 * 4 * MIB

    def test_full_backup_matches_fs(self):
        fs = self.make()
        s = fs.full_backup()
        assert s.total_bytes == fs.total_bytes
        assert len(s) == fs.total_chunks

    def test_evolve_advances_generation(self):
        fs = self.make()
        fs.evolve()
        assert fs.generation == 1

    def test_evolution_preserves_most_content(self):
        fs = self.make(4 * MIB)
        before = set(fs.full_backup().fps.tolist())
        fs.evolve()
        after = fs.full_backup()
        dup = sum(int(sz) for fp, sz in zip(after.fps, after.sizes) if int(fp) in before)
        assert dup / after.total_bytes > 0.8

    def test_evolution_introduces_new_chunks(self):
        fs = self.make(4 * MIB)
        before = set(fs.full_backup().fps.tolist())
        fs.evolve()
        after = set(fs.full_backup().fps.tolist())
        assert after - before

    def test_growth_bounded(self):
        fs = self.make(4 * MIB)
        start = fs.total_bytes
        for _ in range(10):
            fs.evolve()
        assert fs.total_bytes < start * 1.6

    def test_deterministic(self):
        a = self.make()
        b = self.make()
        for _ in range(3):
            a.evolve()
            b.evolve()
        assert a.full_backup() == b.full_backup()

    def test_incremental_smaller_than_full(self):
        fs = self.make(8 * MIB)
        fs.evolve()
        inc = fs.incremental_backup()
        assert 0 < inc.total_bytes < fs.total_bytes

    def test_incremental_before_evolve_is_full(self):
        fs = self.make()
        assert fs.incremental_backup() == fs.full_backup()

    def test_incremental_contains_changed_content(self):
        fs = self.make(8 * MIB)
        before = set(fs.full_backup().fps.tolist())
        fs.evolve()
        inc = set(fs.incremental_backup().fps.tolist())
        full = set(fs.full_backup().fps.tolist())
        # everything brand-new in the FS must be shipped by the incremental
        assert (full - before) <= inc

    def test_shared_pool_cross_user_redundancy(self):
        from repro.workloads.fs_model import ChunkIdAllocator

        alloc = ChunkIdAllocator(9)
        pool_fps = alloc.take(2000)
        pool_sizes = alloc.chunk_sizes(2000, 8192, 2048, 65536)
        a = FileSystemModel(
            seed=3, initial_bytes=4 * MIB, user="a", allocator=alloc,
            shared_pool=(pool_fps, pool_sizes), shared_frac=0.5,
        )
        b = FileSystemModel(
            seed=3, initial_bytes=4 * MIB, user="b", allocator=alloc,
            shared_pool=(pool_fps, pool_sizes), shared_frac=0.5,
        )
        sa = set(a.full_backup().fps.tolist())
        sb = set(b.full_backup().fps.tolist())
        assert len(sa & sb) > 0

    def test_moves_preserve_content(self):
        churn = ChurnProfile(
            modify_frac=0.0, file_move_frac=0.5, file_delete_frac=0.0,
            file_create_frac=0.0, file_rewrite_frac=0.0,
        )
        fs = self.make(4 * MIB, churn=churn)
        before = fs.full_backup()
        fs.evolve()
        after = fs.full_backup()
        assert sorted(after.fps.tolist()) == sorted(before.fps.tolist())
        assert after.fps.tolist() != before.fps.tolist()  # order changed
