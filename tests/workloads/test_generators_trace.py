import itertools

import pytest

from repro._util import MIB
from repro.workloads.generators import (
    author_fs_20_full,
    author_fs_20_incremental,
    group_fs_66,
    single_user_incrementals,
    single_user_stream,
)
from repro.workloads.trace import load_trace, save_trace


class TestSingleUserStream:
    def test_generation_numbering(self):
        jobs = list(single_user_stream(4, 2 * MIB, seed=1))
        assert [j.generation for j in jobs] == [0, 1, 2, 3]

    def test_full_backups_similar_size(self):
        jobs = list(single_user_stream(4, 2 * MIB, seed=1))
        sizes = [j.stream.total_bytes for j in jobs]
        assert max(sizes) < min(sizes) * 1.5

    def test_inter_generation_redundancy(self):
        jobs = list(single_user_stream(3, 2 * MIB, seed=1))
        prev = set(jobs[0].stream.fps.tolist())
        cur = jobs[1].stream
        dup = sum(int(s) for f, s in zip(cur.fps, cur.sizes) if int(f) in prev)
        assert dup / cur.total_bytes > 0.8

    def test_deterministic(self):
        a = [j.stream for j in single_user_stream(3, MIB, seed=5)]
        b = [j.stream for j in single_user_stream(3, MIB, seed=5)]
        assert all(x == y for x, y in zip(a, b))

    def test_rejects_zero_generations(self):
        with pytest.raises(ValueError):
            list(single_user_stream(0, MIB))


class TestIncrementals:
    def test_first_is_full(self):
        jobs = list(single_user_incrementals(3, 2 * MIB, seed=1))
        assert jobs[0].stream.total_bytes > 5 * jobs[1].stream.total_bytes

    def test_author_workloads_labels(self):
        full = next(iter(author_fs_20_full(fs_bytes=MIB, n_generations=1)))
        incr = next(iter(author_fs_20_incremental(fs_bytes=MIB, n_generations=1)))
        assert full.label == "author-fs"
        assert incr.label == "author-fs-incr"


class TestGroupWorkload:
    def test_round_robin_labels(self):
        jobs = list(itertools.islice(group_fs_66(per_user_bytes=MIB, n_backups=7), 7))
        assert [j.label for j in jobs] == [
            "student0", "student1", "student2", "student3", "student4",
            "student0", "student1",
        ]

    def test_users_share_pool_content(self):
        jobs = list(itertools.islice(
            group_fs_66(per_user_bytes=2 * MIB, n_backups=2, shared_frac=0.4), 2
        ))
        a = set(jobs[0].stream.fps.tolist())
        b = set(jobs[1].stream.fps.tolist())
        assert a & b

    def test_user_streams_evolve(self):
        jobs = list(itertools.islice(group_fs_66(per_user_bytes=MIB, n_backups=6), 6))
        u0_first, u0_second = jobs[0].stream, jobs[5].stream
        assert u0_first != u0_second
        shared = set(u0_first.fps.tolist()) & set(u0_second.fps.tolist())
        assert shared  # but highly redundant


class TestTrace:
    def test_roundtrip(self, tmp_path, small_jobs):
        path = tmp_path / "trace.npz"
        n = save_trace(small_jobs, path)
        assert n == len(small_jobs)
        loaded = list(load_trace(path))
        assert len(loaded) == len(small_jobs)
        for a, b in zip(small_jobs, loaded):
            assert a.generation == b.generation
            assert a.label == b.label
            assert a.stream == b.stream

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        assert save_trace([], path) == 0
        assert list(load_trace(path)) == []
