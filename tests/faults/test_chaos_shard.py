"""Crash recovery over a sharded fingerprint index.

A sharded flush is N per-shard journaled flushes in shard order, each
wrapped in the ``shard`` injector tag — so crash points can land
*between* shards, after some are durable and before others. These
tests prove the recovery story holds there too: the scanner's rebuild
re-partitions across the ring (``load_recovered``), and the stratified
sweep stays zero-data-loss over a sharded, partly-spilled store.
"""

from repro.chaos import ChaosScenario, classify_tags, run_chaos
from repro.faults import FaultInjector, FaultyDisk
from repro.index.full_index import ChunkLocation
from repro.sharding import ShardedChunkIndex
from repro.storage.recovery import RecoveryScanner
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def sharded_machine(n_shards=3, container_bytes=1000):
    inj = FaultInjector()
    disk = FaultyDisk(profile=TEST_PROFILE, injector=inj)
    store = ContainerStore(
        disk,
        config=StoreConfig(
            container_bytes=container_bytes, seal_seeks=0, journal=True
        ),
    )
    index = ShardedChunkIndex.create(
        disk, n_shards=n_shards, expected_entries=10_000, journaled=True
    )
    return disk, store, index


class TestShardedRecovery:
    def test_rebuild_repartitions_across_the_ring(self):
        _, store, index = sharded_machine(n_shards=3)
        for fp in range(1, 31):
            cid = store.append(fp, 300)
            index.insert(fp, ChunkLocation(cid, 0))
        store.flush()
        index.flush()
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.index_entries_rebuilt == 30
        for fp in range(1, 31):
            loc = index.peek(fp)
            assert loc is not None
            assert fp in set(store.get(loc.cid).fingerprints)
        # every entry lives on the shard the router owns it to
        for fp in range(1, 31):
            owner = index.router.shard_of(fp)
            assert fp in index.shards[owner]._map

    def test_crash_rolls_every_shard_back(self):
        _, store, index = sharded_machine(n_shards=3)
        for fp in range(1, 16):
            index.insert(fp, ChunkLocation(0, 0))
        index.flush()
        for fp in range(16, 31):
            index.insert(fp, ChunkLocation(1, 0))
        index.crash()  # unflushed entries on every shard are volatile
        assert len(index) == 15
        for fp in range(1, 16):
            assert index.peek(fp) is not None
        for fp in range(16, 31):
            assert index.peek(fp) is None


class TestShardedSweep:
    # a sharded, partly-spilled scenario: most crash points land while
    # the bulk of the store is spilled AND the index is 3 shards wide
    SCENARIO = ChaosScenario(
        n_generations=4,
        fs_bytes=1 * 1024 * 1024,
        gc_every=2,
        retain=2,
        seed=17,
        resident_containers=2,
        n_shards=3,
    )

    def test_sharded_sweep_recovers_everywhere(self):
        report = run_chaos(n_points=10, seed=17, scenario=self.SCENARIO)
        assert report.ok
        assert report.fired == 10

    def test_shard_crash_class_is_exercised(self):
        report = run_chaos(n_points=10, seed=17, scenario=self.SCENARIO)
        counts = report.class_counts()
        assert counts.get("shard", 0) > 0
        fired_shard = [
            r for r in report.results if r.fired and r.crash_class == "shard"
        ]
        # the shard tag stacks over the per-shard index_flush tag
        for r in fired_shard:
            assert "shard" in r.crash_tags
            assert classify_tags(r.crash_tags.split(".")) == "shard"

    def test_one_shard_scenario_has_no_shard_class(self):
        scenario = ChaosScenario(
            n_generations=3,
            fs_bytes=1 * 1024 * 1024,
            gc_every=2,
            retain=2,
            seed=17,
            n_shards=1,
        )
        report = run_chaos(n_points=6, seed=17, scenario=scenario)
        assert report.ok
        assert report.class_counts().get("shard", 0) == 0
