"""Chaos harness: stratified crash-point selection and small sweeps."""

from repro.chaos import (
    CRASH_CLASSES,
    ChaosScenario,
    classify_tags,
    run_chaos,
    select_crash_points,
)


class TestClassify:
    def test_gc_context_wins(self):
        assert classify_tags(("gc", "seal")) == "gc"
        assert classify_tags(("gc", "journal")) == "gc"

    def test_maintenance_context_wins_over_gc(self):
        # a maintenance pass runs journaled GC inside its own tag scope,
        # so ops carry both tags; the maint window owns them
        assert classify_tags(("maint", "gc")) == "maint"
        assert classify_tags(("maint", "gc", "seal")) == "maint"

    def test_commit_protocol_windows(self):
        assert classify_tags(("seal",)) == "seal"
        assert classify_tags(("seal_marker",)) == "seal_marker"
        assert classify_tags(("index_flush",)) == "index_flush"

    def test_shard_context_wins_over_index_flush(self):
        # a sharded flush wraps each per-shard index_flush in the shard
        # tag; the crash window reported is the between-shards one
        assert classify_tags(("shard", "index_flush")) == "shard"

    def test_plain_io_is_ingest(self):
        assert classify_tags(()) == "ingest"


class TestSelection:
    CENSUS = (
        [("read", ())] * 10
        + [("write", ("seal",))] * 3
        + [("write", ("seal_marker",))] * 3
        + [("write", ("index_flush",))] * 2
        + [("write", ("shard", "index_flush"))] * 2
        + [("write", ("gc", "journal"))] * 2
        + [("write", ("maint", "gc", "journal"))] * 2
    )

    def test_deterministic(self):
        a = select_crash_points(self.CENSUS, 10, seed=3)
        b = select_crash_points(self.CENSUS, 10, seed=3)
        assert a == b

    def test_stratified_across_classes(self):
        picks = select_crash_points(self.CENSUS, 10, seed=3)
        classes = {cls for _, cls in picks}
        assert classes == set(CRASH_CLASSES)

    def test_no_duplicate_ops(self):
        picks = select_crash_points(self.CENSUS, len(self.CENSUS), seed=3)
        ops = [op for op, _ in picks]
        assert len(ops) == len(set(ops)) == len(self.CENSUS)

    def test_laps_when_census_is_smaller_than_the_sweep(self):
        picks = select_crash_points(self.CENSUS, 50, seed=3)
        assert len(picks) == 50
        # one full lap covers every op before any repeats
        first_lap = {op for op, _ in picks[: len(self.CENSUS)]}
        assert len(first_lap) == len(self.CENSUS)


class TestSweep:
    # one small scenario shared by the sweep tests (class-level cache)
    SCENARIO = ChaosScenario(
        n_generations=4, fs_bytes=1 * 1024 * 1024, gc_every=2, retain=2, seed=11
    )

    def test_small_sweep_recovers_everywhere(self):
        report = run_chaos(n_points=8, seed=11, scenario=self.SCENARIO)
        assert report.ok
        assert report.fired == 8
        # the stratified picks must include commit-protocol windows
        counts = report.class_counts()
        assert counts["seal"] > 0
        assert counts["seal_marker"] > 0

    def test_report_is_deterministic_and_serializable(self):
        a = run_chaos(n_points=4, seed=11, scenario=self.SCENARIO).to_dict()
        b = run_chaos(n_points=4, seed=11, scenario=self.SCENARIO).to_dict()
        assert a == b
        import json

        json.dumps(a)  # JSON-serializable without custom encoders
