"""Fault-injection layer: plans, the injector, the faulty disk, retries."""

import pytest

from repro.faults import (
    FatalIOError,
    FaultInjector,
    FaultPlan,
    FaultyDisk,
    RetryPolicy,
    SimulatedCrash,
    injector_of,
    with_retry,
)
from repro.obs import ListEventSink, Observability, obs_session
from repro.storage.disk import DiskModel
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def faulty(plan=None, record=False):
    inj = FaultInjector(plan, record=record)
    return FaultyDisk(profile=TEST_PROFILE, injector=inj), inj


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(5, n_ops=100, n_io_errors=3, n_drop_flushes=2, n_flushes=10)
        b = FaultPlan.seeded(5, n_ops=100, n_io_errors=3, n_drop_flushes=2, n_flushes=10)
        assert a == b
        assert a.io_errors and a.drop_flushes

    def test_seeded_varies_with_seed(self):
        a = FaultPlan.seeded(5, n_ops=500, n_io_errors=5)
        b = FaultPlan.seeded(6, n_ops=500, n_io_errors=5)
        assert a.io_errors != b.io_errors

    def test_bursts_are_consecutive(self):
        plan = FaultPlan.seeded(9, n_ops=1000, n_io_errors=1, burst=3)
        ops = sorted(plan.io_errors)
        assert len(ops) == 3
        assert ops[2] - ops[0] == 2


class TestInjector:
    def test_ops_are_one_based_and_crash_fires_once(self):
        disk, inj = faulty(FaultPlan(crash_at=2))
        disk.read(100)
        with pytest.raises(SimulatedCrash) as exc:
            disk.write(100)
        assert exc.value.op == 2
        # the plan crashes once; the machine that replaced it runs on
        disk.read(100)
        assert inj.op_count == 3
        assert inj.injected_crashes == 1

    def test_charge_happens_before_the_crash(self):
        disk, _ = faulty(FaultPlan(crash_at=1))
        with pytest.raises(SimulatedCrash):
            disk.read(200_000_000, seeks=1)
        expected = TEST_PROFILE.seek_time_s + 200_000_000 / TEST_PROFILE.seq_bandwidth
        assert disk.clock.now == pytest.approx(expected)

    def test_tags_stack_and_label_the_crash(self):
        disk, inj = faulty(FaultPlan(crash_at=1))
        with inj.tagged("gc"):
            with inj.tagged("seal"):
                assert inj.tags == ("gc", "seal")
                with pytest.raises(SimulatedCrash) as exc:
                    disk.write(10)
        assert exc.value.tags == ("gc", "seal")
        assert inj.tags == ()

    def test_record_mode_keeps_the_census(self):
        disk, inj = faulty(record=True)
        disk.read(10)
        with inj.tagged("seal"):
            disk.write(20)
        assert inj.op_log == [("read", ()), ("write", ("seal",))]

    def test_flush_drops(self):
        _, inj = faulty(FaultPlan(drop_flushes=frozenset({2})))
        assert [inj.take_flush_drop() for _ in range(3)] == [False, True, False]
        assert inj.dropped_flushes == 1

    def test_injector_of(self):
        disk, inj = faulty()
        assert injector_of(disk) is inj
        assert injector_of(DiskModel(profile=TEST_PROFILE)) is None


class TestRetry:
    def test_backoff_is_priced_on_the_simulated_clock(self):
        disk, inj = faulty(FaultPlan(io_errors=frozenset({1, 2})))
        policy = RetryPolicy(max_attempts=4, base_delay_s=1e-3, multiplier=4.0)
        read = with_retry(disk, policy, disk.read, "t.read")
        read(1000, seeks=0)
        # three attempts charged transfer time, two backoff pauses
        io_time = 3 * 1000 / TEST_PROFILE.seq_bandwidth
        assert disk.clock.now == pytest.approx(io_time + 1e-3 + 4e-3)
        assert inj.retries == 2
        assert inj.injected_io_errors == 2

    def test_exhaustion_is_fatal(self):
        disk, inj = faulty(FaultPlan(io_errors=frozenset(range(1, 10))))
        policy = RetryPolicy(max_attempts=3, base_delay_s=1e-3)
        write = with_retry(disk, policy, disk.write, "t.write")
        with pytest.raises(FatalIOError):
            write(100)
        assert inj.injected_io_errors == 3

    def test_crash_is_never_retried(self):
        disk, _ = faulty(FaultPlan(crash_at=1))
        policy = RetryPolicy()
        read = with_retry(disk, policy, disk.read, "t.read")
        with pytest.raises(SimulatedCrash):
            read(100)

    def test_events_and_counters(self):
        disk, _ = faulty(FaultPlan(io_errors=frozenset({1})))
        read = with_retry(disk, RetryPolicy(), disk.read, "t.read")
        sink = ListEventSink()
        with obs_session(Observability(events=sink)) as obs:
            read(100)
        kinds = [e["type"] for e in sink.events]
        assert "fault_injected" in kinds and "retry" in kinds
        assert obs.registry.counter("faults.retries").value == 1


class TestZeroCostWhenDisabled:
    def test_store_binds_raw_disk_methods_without_a_policy(self):
        disk = DiskModel(profile=TEST_PROFILE)
        store = ContainerStore(disk, config=StoreConfig())
        assert store._read == disk.read
        assert store._write == disk.write

    def test_store_binds_retrying_wrappers_with_a_policy(self):
        disk, _ = faulty()
        store = ContainerStore(
            disk, config=StoreConfig(journal=True, retry=RetryPolicy())
        )
        assert store._read.__name__ == "retrying_store.read"
        assert store._write.__name__ == "retrying_store.write"

    def test_unjournaled_store_charges_no_marker_writes(self):
        plain = ContainerStore(
            DiskModel(profile=TEST_PROFILE),
            config=StoreConfig(container_bytes=1000, seal_seeks=0),
        )
        journaled = ContainerStore(
            DiskModel(profile=TEST_PROFILE),
            config=StoreConfig(container_bytes=1000, seal_seeks=0, journal=True),
        )
        for store in (plain, journaled):
            for fp in range(5):
                store.append(fp, 300)
            store.flush()
        assert plain.disk.stats.bytes_written < journaled.disk.stats.bytes_written
