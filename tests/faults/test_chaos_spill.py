"""Crash recovery over a spilling store.

The spill layer introduces new machinery (write-through, evict,
fault-back) inside the journaled commit path; these tests prove the
recovery story is unchanged: the scanner rebuilds a store whose
containers are mostly spilled, and the stratified chaos sweep stays
zero-data-loss with a tight resident budget.
"""

import pytest

from repro.chaos import ChaosScenario, run_chaos
from repro.faults import FaultInjector, FaultPlan, FaultyDisk, SimulatedCrash
from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.storage.recovery import RecoveryScanner
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


def spilling_machine(resident=1, container_bytes=1000, plan=None):
    inj = FaultInjector(plan)
    disk = FaultyDisk(profile=TEST_PROFILE, injector=inj)
    store = ContainerStore(
        disk,
        config=StoreConfig(
            container_bytes=container_bytes,
            seal_seeks=0,
            journal=True,
            resident_containers=resident,
        ),
    )
    index = DiskChunkIndex(disk, expected_entries=10_000, journaled=True)
    return disk, store, index


def fill_container(store, index, fps, size=300):
    for fp in fps:
        cid = store.append(fp, size)
        index.insert(fp, ChunkLocation(cid, 0))
    store.flush()
    index.flush()


class TestRecoveryOverSpilledStore:
    def test_index_rebuild_faults_spilled_containers_back(self):
        _, store, index = spilling_machine(resident=1, container_bytes=900)
        for base in range(0, 12, 3):
            fill_container(store, index, fps=[base + 1, base + 2, base + 3])
        assert store.n_containers > store.n_resident  # mostly spilled
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.index_entries_rebuilt == 12
        for fp in range(1, 13):
            loc = index.peek(fp)
            assert loc is not None
            assert fp in set(store.get(loc.cid).fingerprints)

    def test_torn_tail_truncated_in_spill_too(self):
        # journaled seal = payload write (op 1) then marker write (op 2);
        # crashing at op 2 leaves a torn, already-spilled container
        _, store, index = spilling_machine(resident=1, plan=FaultPlan(crash_at=2))
        with pytest.raises(SimulatedCrash):
            fill_container(store, index, fps=[1, 2, 3])
        torn = store.uncommitted_cids()
        assert len(torn) == 1
        assert torn[0] in store._spill  # write-through happened pre-marker
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.torn_truncated == 1
        assert store.cids() == []
        assert torn[0] not in store._spill

    def test_committed_spilled_containers_survive_crash(self):
        _, store, index = spilling_machine(resident=1, container_bytes=900)
        fill_container(store, index, fps=[1, 2, 3])
        fill_container(store, index, fps=[4, 5, 6])
        store.crash()
        index.crash()
        report, _ = RecoveryScanner(store, index).recover()
        assert report.torn_truncated == 0
        assert len(store.cids()) == 2
        # content is intact after recovery faults everything back
        seen = set()
        for cid in store.cids():
            seen |= set(int(f) for f in store.get(cid).fingerprints)
        assert seen == {1, 2, 3, 4, 5, 6}


class TestChaosSweepWithSpill:
    def test_stratified_sweep_zero_data_loss(self):
        scenario = ChaosScenario(seed=2012, resident_containers=2)
        report = run_chaos(n_points=20, seed=7, scenario=scenario)
        assert report.ok, report.render()
        # the sweep still covers every crash-site class
        assert report.fired > 0

    def test_spill_actually_exercised_by_scenario(self):
        # the scenario seals far more containers than the budget, so a
        # fault-free run must evict and fault back through the sweep's
        # own ingest/GC/restore cycle
        from repro.api import create_engine, create_resources
        from repro.dedup.pipeline import run_prepared_backup

        scenario = ChaosScenario(seed=2012, resident_containers=2)
        config = scenario.experiment_config()
        resources = create_resources(config)
        engine = create_engine(scenario.engine, config, resources)
        for prepared in scenario.prepare():
            run_prepared_backup(engine, prepared)
        store = resources.store
        assert store.spilling
        assert store.n_containers > 2
        assert store.n_resident <= 2
        assert store.spill_stats.evictions > 0
        assert store.spill_stats.faults > 0
