"""Batch-vs-scalar ingest equivalence.

The vectorized batch ingest path (``batch=True``, the default) must be
*byte-identical* to the chunk-at-a-time reference ladder — not just the
same dedup outcomes, but the same simulated clock (float addition order
included), the same stats down to every counter, and the same recipes.
These tests run the same workload through twin engines that differ only
in the ``batch`` flag and compare everything an engine can report.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chunking.base import ChunkStream
from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.dedup.idedup import IDedupEngine
from repro.dedup.pipeline import GroundTruth, run_backup
from repro.dedup.silo import SiLoEngine
from repro.dedup.sparse import SparseIndexEngine
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.workloads.generators import BackupJob, single_user_incrementals

from tests.conftest import TEST_PROFILE


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE,
        container_bytes=64 * 1024,
        expected_entries=50_000,
        index_page_cache_pages=4,
    )
    res.store.seal_seeks = 0
    return res


ENGINE_FACTORIES = {
    "exact": lambda r, b: ExactEngine(r, batch=b),
    "ddfs": lambda r, b: DDFSEngine(r, bloom_capacity=50_000, cache_containers=4, batch=b),
    "silo": lambda r, b: SiLoEngine(
        r, block_bytes=64 * 1024, cache_blocks=4, similarity_capacity=32, batch=b
    ),
    "defrag": lambda r, b: DeFragEngine(
        r,
        policy=SPLThresholdPolicy(0.1),
        bloom_capacity=50_000,
        cache_containers=4,
        batch=b,
    ),
    "idedup": lambda r, b: IDedupEngine(
        r, min_sequence=4, bloom_capacity=50_000, cache_containers=4, batch=b
    ),
    "sparse": lambda r, b: SparseIndexEngine(r, cache_manifests=4, batch=b),
}


def run_twin(name, streams):
    """Run the same stream sequence through batch and scalar twins and
    return both full-state fingerprints."""
    prints = []
    for batch in (True, False):
        res = fresh_resources()
        engine = ENGINE_FACTORIES[name](res, batch)
        gt = GroundTruth()
        reports = [
            run_backup(engine, BackupJob(g, "u", s), small_segmenter(), gt)
            for g, s in enumerate(streams)
        ]
        prints.append(state_fingerprint(res, reports, engine))
    return prints


def engine_counters(engine):
    """Every engine-level stats counter the two ingest paths must agree
    on: prefetch-cache hit/miss/eviction accounting, bloom insert count,
    similarity-index stats, rewrite totals, manifest loads."""
    out = {}
    cache = getattr(engine, "cache", None)
    if cache is not None:
        out["cache"] = dataclasses.astuple(cache.stats)
    bloom = getattr(engine, "bloom", None)
    if bloom is not None:
        out["bloom_added"] = bloom.n_added
    similarity = getattr(engine, "similarity", None)
    if similarity is not None:
        out["similarity"] = dataclasses.astuple(similarity.stats)
    for attr in ("total_rewritten_bytes", "total_rewritten_chunks", "manifest_loads"):
        if hasattr(engine, attr):
            out[attr] = getattr(engine, attr)
    return tuple(sorted(out.items()))


def state_fingerprint(res, reports, engine=None):
    """Everything observable from a run, hashable for equality."""
    out = []
    for r in reports:
        out.append(
            (
                r.generation,
                r.label,
                r.n_chunks,
                r.logical_bytes,
                r.written_new_bytes,
                r.removed_dup_bytes,
                r.rewritten_dup_bytes,
                r.elapsed_seconds,  # simulated clock: float-exact
                r.true_dup_bytes,
                tuple(r.seg_true_dup_bytes or ()),
                tuple(r.seg_fully_dup or ()),
                tuple(sorted(r.extras.items())),
                r.recipe.fingerprints.tobytes(),
                r.recipe.sizes.tobytes(),
                r.recipe.containers.tobytes(),
            )
        )
    out.append(dataclasses.astuple(res.disk.stats))
    out.append(dataclasses.astuple(res.index.stats))
    out.append(dataclasses.astuple(res.store.stats))
    if engine is not None:
        out.append(engine_counters(engine))
    return out


# small fp alphabet forces duplicates; sizes deterministic per fp
stream_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=0, max_size=150
).map(lambda fps: ChunkStream.from_pairs([(fp, 256 + (fp * 37) % 3840) for fp in fps]))


@st.composite
def stream_pairs(draw):
    return draw(stream_strategy), draw(stream_strategy)


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    @given(streams=stream_pairs())
    @settings(max_examples=15, deadline=None)
    def test_random_streams_identical(self, name, streams):
        batch_print, scalar_print = run_twin(name, streams)
        assert batch_print == scalar_print

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_generational_workload_identical(self, name):
        """A multi-generation churned workload (drives prefetching, cache
        evictions, bloom growth, rewrites — every mid-segment event the
        batch path must replay at exact chunk positions)."""
        jobs = single_user_incrementals(4, 256 * 1024, seed=7)
        streams = [j.stream for j in jobs]
        batch_print, scalar_print = run_twin(name, streams)
        assert batch_print == scalar_print


class TestEquivalenceUnderTracing:
    """Observability must not perturb the twin-run contract: with a
    session on (metrics + event tracing), batch and scalar twins still
    agree on every report, counter, and clock — and on the recorded
    metric snapshots and event streams themselves."""

    def _run_traced(self, name, streams, batch):
        from repro.obs import ListEventSink, Observability, obs_session

        res = fresh_resources()
        sink = ListEventSink()
        with obs_session(Observability(events=sink)) as obs:
            engine = ENGINE_FACTORIES[name](res, batch)
            gt = GroundTruth()
            reports = [
                run_backup(engine, BackupJob(g, "u", s), small_segmenter(), gt)
                for g, s in enumerate(streams)
            ]
        fingerprint = state_fingerprint(res, reports, engine)
        return fingerprint, obs.registry.snapshot(), sink.events

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_traced_twins_identical(self, name):
        jobs = single_user_incrementals(3, 128 * 1024, seed=11)
        streams = [j.stream for j in jobs]
        batch_run = self._run_traced(name, streams, True)
        scalar_run = self._run_traced(name, streams, False)
        assert batch_run[0] == scalar_run[0]  # reports, clocks, counters
        assert batch_run[1] == scalar_run[1]  # metric snapshots
        assert batch_run[2] == scalar_run[2]  # event streams

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_tracing_changes_nothing_observable(self, name):
        """The same run traced and untraced produces the identical
        fingerprint: observability is read-only on the simulation."""
        jobs = single_user_incrementals(3, 128 * 1024, seed=11)
        streams = [j.stream for j in jobs]
        traced_fp, _, _ = self._run_traced(name, streams, True)

        res = fresh_resources()
        engine = ENGINE_FACTORIES[name](res, True)
        gt = GroundTruth()
        reports = [
            run_backup(engine, BackupJob(g, "u", s), small_segmenter(), gt)
            for g, s in enumerate(streams)
        ]
        assert state_fingerprint(res, reports, engine) == traced_fp


class TestIndexBatchAccounting:
    """``lookup_many`` must charge exactly what N sequential ``lookup``
    calls charge: same page-fault sequence, same simulated clock, same
    counters (negative lookups included)."""

    def _twin_indexes(self):
        pair = []
        for _ in range(2):
            res = fresh_resources()
            index = res.index
            from repro.index.full_index import ChunkLocation

            for fp in range(0, 400, 2):  # evens present, odds absent
                index.insert(fp, ChunkLocation(fp % 17, fp % 5))
            pair.append(res)
        return pair

    def test_lookup_many_matches_sequential_lookups(self):
        res_a, res_b = self._twin_indexes()
        rng = np.random.default_rng(42)
        fps = rng.integers(0, 400, size=300).tolist()

        got_many = res_a.index.lookup_many(fps)
        got_seq = [res_b.index.lookup(fp) for fp in fps]

        assert got_many == got_seq
        assert dataclasses.astuple(res_a.index.stats) == dataclasses.astuple(
            res_b.index.stats
        )
        assert dataclasses.astuple(res_a.disk.stats) == dataclasses.astuple(
            res_b.disk.stats
        )
        assert res_a.disk.clock.now == res_b.disk.clock.now

    def test_negative_lookup_counter(self):
        res, _ = self._twin_indexes()
        index = res.index
        before = index.stats.negative_lookups
        assert index.lookup(1) is None  # odd: absent
        assert index.lookup(2) is not None
        assert index.lookup(3) is None
        assert index.stats.negative_lookups == before + 2
        # the batch path counts the same misses
        index.lookup_many([5, 2, 7])
        assert index.stats.negative_lookups == before + 4
