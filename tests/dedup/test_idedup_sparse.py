"""Tests for the extended related-work engines: iDedup and SparseIndex."""

import pytest

from repro.chunking.base import ChunkStream
from repro.dedup.base import EngineResources
from repro.dedup.idedup import IDedupEngine
from repro.dedup.pipeline import GroundTruth, run_backup, run_workload
from repro.dedup.sparse import SparseIndexEngine
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=256 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    return res


def idedup(min_sequence=8):
    return IDedupEngine(
        fresh_resources(), min_sequence=min_sequence,
        bloom_capacity=100_000, cache_containers=8,
    )


def sparse(**kw):
    return SparseIndexEngine(fresh_resources(), **kw)


def run_stream(engine, stream, segmenter, gen=0, gt=None):
    return run_backup(engine, BackupJob(gen, "t", stream), segmenter, gt)


class TestIDedup:
    def test_long_sequences_deduplicated(self, segmenter):
        eng = idedup(min_sequence=4)
        s = make_stream(400, seed=1)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        # the repeat stream is one long duplicate sequence per container
        assert report.removed_dup_bytes / s.total_bytes > 0.9

    def test_short_sequences_rewritten(self, segmenter):
        eng = idedup(min_sequence=8)
        gen0 = make_stream(400, seed=2)
        run_stream(eng, gen0, segmenter, 0)
        # gen1: isolated duplicates (every 16th chunk) -> runs of length 1
        fps = make_stream(400, seed=3).fps.copy()
        fps[::16] = gen0.fps[::16]
        gen1 = ChunkStream(fps, gen0.sizes)
        report = run_stream(eng, gen1, segmenter, 1)
        assert report.removed_dup_bytes == 0
        assert report.rewritten_dup_bytes > 0

    def test_threshold_one_is_exact_dedup(self, segmenter):
        eng = idedup(min_sequence=1)
        s = make_stream(300, seed=4)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes == s.total_bytes
        assert report.rewritten_dup_bytes == 0

    def test_never_misses(self, segmenter, small_jobs):
        eng = idedup()
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports:
            assert r.missed_dup_bytes == 0

    def test_partition_identity(self, segmenter, small_jobs):
        eng = idedup()
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports:
            assert (
                r.written_new_bytes + r.removed_dup_bytes + r.rewritten_dup_bytes
                == r.logical_bytes
            )

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            idedup(min_sequence=0)

    def test_rewrite_counters(self, segmenter):
        eng = idedup(min_sequence=1000)  # rewrite every duplicate
        s = make_stream(100, seed=5)
        run_stream(eng, s, segmenter, 0)
        run_stream(eng, s, segmenter, 1)
        assert eng.total_rewritten_chunks == 100


class TestSparseIndex:
    def test_repeat_stream_mostly_found(self, segmenter):
        eng = sparse(sample_rate=8, max_champions=2)
        s = make_stream(500, seed=6)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes / s.total_bytes > 0.8

    def test_near_exact_misses_possible(self, segmenter):
        """With an absurd sample rate nothing is ever hooked: every
        duplicate is missed."""
        eng = sparse(sample_rate=2**40)
        gt = GroundTruth()
        s = make_stream(300, seed=7)
        run_stream(eng, s, segmenter, 0, gt)
        report = run_stream(eng, s, segmenter, 1, gt)
        assert report.missed_dup_bytes == report.true_dup_bytes

    def test_never_touches_disk_index(self, segmenter):
        eng = sparse(sample_rate=8)
        s = make_stream(200, seed=8)
        run_stream(eng, s, segmenter, 0)
        run_stream(eng, s, segmenter, 1)
        assert eng.res.index.stats.lookups == 0

    def test_manifest_loads_charged(self, segmenter):
        eng = sparse(sample_rate=8)
        s = make_stream(400, seed=9)
        run_stream(eng, s, segmenter, 0)
        before = eng.res.disk.stats.snapshot()
        report = run_stream(eng, s, segmenter, 1)
        assert report.extras["manifest_loads"] > 0
        assert eng.res.disk.stats.delta_since(before).seeks > 0

    def test_hook_history_bounded(self, segmenter):
        eng = sparse(sample_rate=4, hook_history=2)
        s = make_stream(200, seed=10)
        for gen in range(5):
            run_stream(eng, s, segmenter, gen)
        assert all(len(h) <= 2 for h in eng._hooks.values())

    def test_partition_identity(self, segmenter, small_jobs):
        eng = sparse()
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports:
            assert (
                r.written_new_bytes + r.removed_dup_bytes + r.rewritten_dup_bytes
                == r.logical_bytes
            )

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            sparse(sample_rate=0)
        with pytest.raises(ValueError):
            sparse(max_champions=0)
