"""Engine lifecycle v2: the out-of-line maintenance phase.

Three contracts:

* a no-op maintenance phase is *free*: driving any inline engine through
  :func:`run_workload_with_maintenance` is byte-identical to
  :func:`run_workload` (hypothesis twin-run over random streams);
* the two maintenance engines (RevDedup, Hybrid) keep every retained
  backup byte-restorable across their rewrite passes; and
* crash points landing *inside* a maintenance pass recover with zero
  data loss (the stratified chaos sweep with ``maintenance_every=1``).
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos import ChaosScenario, recipe_signature, run_chaos
from repro.chunking.base import ChunkStream
from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.hybrid import HybridEngine
from repro.dedup.pipeline import (
    run_backup,
    run_workload,
    run_workload_with_maintenance,
)
from repro.dedup.revdedup import RevDedupEngine
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.store import StoreConfig
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=50_000
    )
    res.store.seal_seeks = 0
    return res


def reader_for(res):
    return RestoreReader(res.store, config=StoreConfig(cache_containers=4))


def jobs_from_streams(streams):
    return [BackupJob(g, "t", s) for g, s in enumerate(streams)]


def churned_stream(gen, n=300):
    """Mostly-stable content with a few per-generation mutations — the
    cross-generation duplicate structure maintenance passes feed on."""
    fps = list(range(n))
    for i in range(0, n, 17):
        fps[i] = 100_000 + gen * 1_000 + i
    return ChunkStream.from_pairs([(fp, 256 + (fp * 37) % 3840) for fp in fps])


# streams: small fp alphabet forces duplicates across generations; size
# is a pure function of fp (same chunk == same bytes)
stream_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=0, max_size=120
).map(
    lambda fps: ChunkStream.from_pairs([(fp, 256 + (fp * 37) % 3840) for fp in fps])
)

NOOP_FACTORIES = [
    lambda r: ExactEngine(r),
    lambda r: DeFragEngine(
        r, policy=SPLThresholdPolicy(0.1), bloom_capacity=50_000, cache_containers=4
    ),
]


class TestNoopMaintenanceTwinRun:
    """run_workload_with_maintenance == run_workload for inline engines."""

    @pytest.mark.parametrize("factory", NOOP_FACTORIES)
    @given(streams=st.lists(stream_strategy, min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_byte_identical_to_plain_workload(self, factory, streams):
        segmenter = small_segmenter()
        res_a, res_b = fresh_resources(), fresh_resources()
        plain = run_workload(factory(res_a), jobs_from_streams(streams), segmenter)
        maint = run_workload_with_maintenance(
            factory(res_b), jobs_from_streams(streams), segmenter
        )
        assert len(plain) == len(maint)
        for a, b in zip(plain, maint):
            assert recipe_signature(a.recipe) == recipe_signature(b.recipe)
            assert a.written_new_bytes == b.written_new_bytes
            assert a.elapsed_seconds == b.elapsed_seconds
        # the clock never moved for the no-op passes, and the physical
        # layout is the same byte for byte
        assert res_a.disk.clock.now == res_b.disk.clock.now
        assert dataclasses.asdict(res_a.store.stats) == dataclasses.asdict(
            res_b.store.stats
        )

    def test_noop_maintenance_returns_same_recipes(self, segmenter):
        eng = ExactEngine(fresh_resources())
        r = run_backup(eng, BackupJob(0, "t", make_stream(120, seed=3)), segmenter)
        report, remapped = eng.end_generation([r.recipe])
        assert report is None
        assert len(remapped) == 1 and remapped[0] is r.recipe

    def test_end_generation_raises_mid_backup(self):
        eng = RevDedupEngine(fresh_resources())
        eng.begin_backup(0)
        with pytest.raises(RuntimeError):
            eng.end_generation([])


class TestRevDedupLifecycle:
    def _run(self, n_gens=4, n_chunks=300):
        segmenter = small_segmenter()
        res = fresh_resources()
        eng = RevDedupEngine(res)
        jobs = [
            BackupJob(g, "t", make_stream(n_chunks, seed=41 + g))
            for g in range(n_gens)
        ]
        reports = run_workload_with_maintenance(eng, jobs, segmenter)
        return res, eng, reports

    def test_outcome_partition_invariant(self, segmenter):
        eng = RevDedupEngine(fresh_resources())
        r = run_backup(eng, BackupJob(0, "t", make_stream(200, seed=5)), segmenter)
        assert (
            r.removed_dup_bytes + r.written_new_bytes + r.rewritten_dup_bytes
            == r.logical_bytes
        )

    def test_all_generations_restore_after_maintenance(self):
        res, _eng, reports = self._run()
        reader = reader_for(res)
        for r in reports:
            rr = reader.restore(r.recipe)
            assert rr.logical_bytes == r.logical_bytes

    def test_maintenance_reports_and_reclaim(self):
        segmenter = small_segmenter()
        res = fresh_resources()
        eng = RevDedupEngine(res)
        reports = []
        maint_reports = []
        for g in range(3):
            reports.append(
                run_backup(eng, BackupJob(g, "t", churned_stream(g)), segmenter)
            )
            m, remapped = eng.end_generation([r.recipe for r in reports])
            for report, recipe in zip(reports, remapped):
                report.recipe = recipe
            if m is not None:
                maint_reports.append(m)
        assert maint_reports, "rewriting engine must produce maintenance work"
        for m in maint_reports:
            assert m.engine == "RevDedup"
            assert m.elapsed_seconds > 0
            assert m.index_lookups > 0
        # generations past the first rewrite superseded copies
        assert any(m.redirected_chunks > 0 for m in maint_reports[1:])
        assert any(m.bytes_reclaimed > 0 for m in maint_reports[1:])

    def test_maintenance_idempotent_when_nothing_pending(self):
        res, eng, reports = self._run(n_gens=2)
        before = res.disk.clock.now
        m, remapped = eng.end_generation([r.recipe for r in reports])
        assert m is None
        assert all(a is b for a, b in zip(remapped, (r.recipe for r in reports)))
        assert res.disk.clock.now == before

    def test_charges_index_sweep(self):
        res, _eng, _reports = self._run(n_gens=3)
        assert res.index.stats.sweeps >= 1
        assert res.index.stats.sweep_pages > 0


class TestHybridLifecycle:
    def _run(self, n_gens=4, n_chunks=300, cache_chunks=4096):
        segmenter = small_segmenter()
        res = fresh_resources()
        eng = HybridEngine(res, cache_chunks=cache_chunks)
        jobs = [
            BackupJob(g, "t", make_stream(n_chunks, seed=71 + g))
            for g in range(n_gens)
        ]
        reports = run_workload_with_maintenance(eng, jobs, segmenter)
        return res, eng, reports

    def test_all_generations_restore_after_maintenance(self):
        res, _eng, reports = self._run()
        reader = reader_for(res)
        for r in reports:
            rr = reader.restore(r.recipe)
            assert rr.logical_bytes == r.logical_bytes

    def test_exact_grade_dedup_after_maintenance(self):
        """After the deferred pass, no fingerprint occupies live space
        twice — the store holds at most one live copy per chunk."""
        res, _eng, reports = self._run()
        live = {}
        for r in reports:
            for fp, cid in zip(r.recipe.fingerprints, r.recipe.containers):
                live.setdefault(int(fp), set()).add(int(cid))
        # maintenance redirected every retained duplicate to one copy
        assert all(len(cids) == 1 for cids in live.values())

    def test_tiny_cache_still_correct(self):
        res, _eng, reports = self._run(cache_chunks=8)
        reader = reader_for(res)
        rr = reader.restore(reports[-1].recipe)
        assert rr.logical_bytes == reports[-1].logical_bytes

    def test_stale_cache_entry_invalidated_by_external_gc(self, segmenter):
        """A GC pass the engine never drove must not poison the inline
        cache: the next backup re-resolves evicted copies instead of
        referencing removed containers."""
        from repro.storage.gc import GarbageCollector

        res = fresh_resources()
        eng = HybridEngine(res, cache_chunks=4096)
        r0 = run_backup(eng, BackupJob(0, "t", churned_stream(0)), segmenter)
        r1 = run_backup(eng, BackupJob(1, "t", churned_stream(1)), segmenter)
        # external GC retaining only the newest backup: dropping gen 0
        # leaves containers under-utilized, so compaction moves the
        # still-live copies to fresh container ids
        gc = GarbageCollector(res.store, res.index)
        _, remapped = gc.collect([r1.recipe], min_utilization=0.9)
        r1.recipe = remapped[0]
        # third backup over near-identical data: cache entries pointing
        # at collected containers must be dropped, not referenced
        r1 = run_backup(eng, BackupJob(2, "t", churned_stream(1)), segmenter)
        store_cids = set(res.store.cids())
        assert set(int(c) for c in r1.recipe.unique_containers()) <= store_cids
        rr = reader_for(res).restore(r1.recipe)
        assert rr.logical_bytes == r1.logical_bytes


class TestChaosMaintenance:
    """Crash points inside a maintenance pass recover with zero loss."""

    @pytest.mark.parametrize("engine", ["RevDedup", "Hybrid"])
    def test_sweep_zero_data_loss(self, engine):
        scenario = ChaosScenario(
            engine=engine,
            n_generations=4,
            maintenance_every=1,
            gc_every=3,
            seed=2026,
        )
        report = run_chaos(n_points=12, seed=2026, scenario=scenario)
        failures = [r for r in report.results if not r.ok]
        assert not failures, [f.errors for f in failures]
        # the stratified selector actually placed points in the pass
        assert report.class_counts().get("maint", 0) >= 1
