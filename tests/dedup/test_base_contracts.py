"""Contract tests for the engine base layer: cost model, outcomes,
reports, resources."""

import pytest

from repro._util import MIB
from repro.dedup.base import (
    BackupReport,
    CostModel,
    EngineResources,
    SegmentOutcome,
)
from repro.storage.disk import DiskStats, SSD_SATA
from repro.storage.recipe import RecipeBuilder


class TestCostModel:
    def test_defaults_positive(self):
        c = CostModel()
        assert c.segment_cpu_seconds(MIB, 128) > 0

    def test_linear_in_bytes_and_chunks(self):
        c = CostModel(cpu_seconds_per_byte=1e-9, cpu_seconds_per_chunk=1e-6)
        assert c.segment_cpu_seconds(1000, 10) == pytest.approx(1e-6 + 1e-5)

    def test_zero_cost_model_allowed(self):
        c = CostModel(cpu_seconds_per_byte=0.0, cpu_seconds_per_chunk=0.0)
        assert c.segment_cpu_seconds(MIB, 100) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel(cpu_seconds_per_byte=-1e-9)


class TestSegmentOutcome:
    def test_partition_check_passes(self):
        o = SegmentOutcome(index=0, n_chunks=3, nbytes=300, written_new=100,
                           removed_dup=150, rewritten_dup=50)
        o.check_partition()
        assert o.stored_bytes == 150

    def test_partition_check_fails(self):
        o = SegmentOutcome(index=0, n_chunks=3, nbytes=300, written_new=100)
        with pytest.raises(AssertionError):
            o.check_partition()

    def test_rejects_negative_accounting(self):
        with pytest.raises(ValueError):
            SegmentOutcome(index=0, n_chunks=-1, nbytes=0)


class TestBackupReport:
    def make(self, **kw):
        defaults = dict(
            generation=3,
            label="x",
            n_chunks=10,
            logical_bytes=1000,
            written_new_bytes=400,
            removed_dup_bytes=600,
            rewritten_dup_bytes=0,
            elapsed_seconds=2.0,
            recipe=RecipeBuilder(3).finalize(),
            disk_delta=DiskStats(),
        )
        defaults.update(kw)
        return BackupReport(**defaults)

    def test_throughput(self):
        assert self.make().throughput == 500.0

    def test_throughput_zero_elapsed(self):
        assert self.make(elapsed_seconds=0.0).throughput == 0.0

    def test_dedup_ratio_infinite_when_nothing_stored(self):
        r = self.make(written_new_bytes=0, removed_dup_bytes=1000)
        assert r.dedup_ratio == float("inf")

    def test_efficiency_with_rewrites_excluded(self):
        r = self.make(rewritten_dup_bytes=100, removed_dup_bytes=500)
        r.true_dup_bytes = 600
        assert r.efficiency == pytest.approx(500 / 600)
        assert r.missed_dup_bytes == 0


class TestEngineResources:
    def test_create_wires_shared_disk(self):
        res = EngineResources.create()
        assert res.store.disk is res.disk
        assert res.index.disk is res.disk

    def test_create_with_profile(self):
        res = EngineResources.create(profile=SSD_SATA)
        assert res.disk.profile is SSD_SATA

    def test_container_bytes_respected(self):
        res = EngineResources.create(container_bytes=MIB)
        assert res.store.container_bytes == MIB
