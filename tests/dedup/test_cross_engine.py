"""Cross-engine integration invariants on a shared workload."""

import pytest

from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_workload
from repro.dedup.silo import SiLoEngine
from repro.restore.reader import RestoreReader

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=256 * 1024, expected_entries=200_000
    )
    res.store.seal_seeks = 0
    return res


@pytest.fixture(scope="module")
def all_runs(request):
    """Run the small workload through every engine once per module."""
    from repro._util import MIB
    from repro.segmenting.segmenter import ContentDefinedSegmenter
    from repro.workloads.fs_model import ChurnProfile
    from repro.workloads.generators import author_fs_20_full

    segmenter = ContentDefinedSegmenter(
        min_bytes=16 * 1024, avg_bytes=32 * 1024, max_bytes=64 * 1024,
        avg_chunk_bytes=1024,
    )
    churn = ChurnProfile(modify_frac=0.2, edits_per_file_mean=3.0, file_move_frac=0.05)
    runs = {}
    for name, factory in (
        ("exact", lambda r: ExactEngine(r)),
        ("ddfs", lambda r: DDFSEngine(r, bloom_capacity=200_000, cache_containers=8)),
        ("silo", lambda r: SiLoEngine(r, block_bytes=128 * 1024, cache_blocks=8,
                                      similarity_capacity=64)),
        ("defrag", lambda r: DeFragEngine(r, policy=SPLThresholdPolicy(0.1),
                                          bloom_capacity=200_000, cache_containers=8)),
    ):
        res = fresh_resources()
        jobs = author_fs_20_full(fs_bytes=3 * MIB, seed=77, n_generations=8, churn=churn)
        runs[name] = (res, run_workload(factory(res), jobs, segmenter))
    return runs


class TestCrossEngineInvariants:
    def test_all_process_same_logical_bytes(self, all_runs):
        totals = {
            name: sum(r.logical_bytes for r in reports)
            for name, (_res, reports) in all_runs.items()
        }
        assert len(set(totals.values())) == 1

    def test_exact_and_ddfs_remove_everything(self, all_runs):
        for name in ("exact", "ddfs"):
            _res, reports = all_runs[name]
            for r in reports:
                assert r.missed_dup_bytes == 0, f"{name} gen {r.generation}"

    def test_silo_removes_no_more_than_exact(self, all_runs):
        exact = sum(r.removed_dup_bytes for r in all_runs["exact"][1])
        silo = sum(r.removed_dup_bytes for r in all_runs["silo"][1])
        assert silo <= exact

    def test_silo_misses_are_nonnegative(self, all_runs):
        for r in all_runs["silo"][1]:
            assert r.missed_dup_bytes >= 0

    def test_defrag_misses_nothing(self, all_runs):
        """DeFrag's identification is exact: redundancy is either removed
        or knowingly rewritten, never silently missed."""
        for r in all_runs["defrag"][1]:
            assert r.missed_dup_bytes == 0

    def test_defrag_stores_at_least_ddfs(self, all_runs):
        ddfs = sum(r.stored_bytes for r in all_runs["ddfs"][1])
        defrag = sum(r.stored_bytes for r in all_runs["defrag"][1])
        assert defrag >= ddfs

    def test_storage_identity_per_engine(self, all_runs):
        """Physical container payload == sum of stored bytes per engine."""
        for name, (res, reports) in all_runs.items():
            stored = sum(r.stored_bytes for r in reports)
            assert res.store.stats.payload_bytes == stored, name

    def test_every_recipe_restorable(self, all_runs):
        for name, (res, reports) in all_runs.items():
            reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
            rr = reader.restore(reports[-1].recipe)
            assert rr.logical_bytes == reports[-1].logical_bytes, name

    def test_defrag_last_gen_layout_comparable_or_better(self, all_runs):
        """At toy scale individual rewrites can split a run here and there,
        so allow a small tolerance; the strict improvement is asserted at
        experiment scale (tests/experiments)."""
        from repro.storage.layout import analyze_recipe

        frag_defrag = analyze_recipe(all_runs["defrag"][1][-1].recipe).n_fragments
        frag_ddfs = analyze_recipe(all_runs["ddfs"][1][-1].recipe).n_fragments
        assert frag_defrag <= frag_ddfs * 1.15

    def test_simulated_time_monotone(self, all_runs):
        for name, (res, reports) in all_runs.items():
            assert res.disk.clock.now > 0
            assert all(r.elapsed_seconds > 0 for r in reports), name
