import numpy as np
import pytest

from repro.chunking.base import ChunkStream
from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import GroundTruth, run_backup, run_workload
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def fresh_engine():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=256 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    return ExactEngine(res)


class TestGroundTruth:
    def seg_cuts(self, stream, step=50):
        n = len(stream)
        cuts = list(range(0, n, step))
        if cuts[-1] != n:
            cuts.append(n)
        return np.asarray(cuts)

    def test_fresh_stream_no_dups(self):
        gt = GroundTruth()
        s = make_stream(100)
        total, per_seg, fully = gt.observe(s, self.seg_cuts(s))
        assert total == 0
        assert sum(per_seg) == 0
        assert not any(fully)

    def test_repeat_stream_fully_dup(self):
        gt = GroundTruth()
        s = make_stream(100)
        gt.observe(s, self.seg_cuts(s))
        total, per_seg, fully = gt.observe(s, self.seg_cuts(s))
        assert total == s.total_bytes
        assert all(fully)

    def test_intra_stream_dups_counted(self):
        gt = GroundTruth()
        base = make_stream(50)
        doubled = ChunkStream.concat([base, base])
        total, _, _ = gt.observe(doubled, self.seg_cuts(doubled))
        assert total == base.total_bytes

    def test_partial_segment_flags(self):
        gt = GroundTruth()
        a = make_stream(50, seed=1)
        gt.observe(a, self.seg_cuts(a))
        b = make_stream(50, seed=2)
        mixed = ChunkStream.concat([a, b])
        total, per_seg, fully = gt.observe(mixed, np.asarray([0, 50, 100]))
        assert total == a.total_bytes
        assert fully == [True, False]
        assert per_seg == [a.total_bytes, 0]

    def test_empty_stream(self):
        gt = GroundTruth()
        total, per_seg, fully = gt.observe(ChunkStream.empty(), np.asarray([0]))
        assert total == 0
        assert per_seg == []

    def test_seen_population_grows(self):
        gt = GroundTruth()
        s1, s2 = make_stream(50, seed=1), make_stream(50, seed=2)
        gt.observe(s1, self.seg_cuts(s1))
        assert gt.unique_fingerprints == 50
        gt.observe(s2, self.seg_cuts(s2))
        assert gt.unique_fingerprints == 100

    def test_spilled_oracle_is_equivalent(self, tmp_path):
        # the memmap-backed base must give byte-identical answers; feed
        # enough disjoint + overlapping streams to force consolidations
        plain, spilled = GroundTruth(), GroundTruth(spill_dir=str(tmp_path))
        streams = [make_stream(60, seed=s) for s in (1, 2, 1, 3, 2)]
        for s in streams:
            cuts = self.seg_cuts(s)
            assert plain.observe(s, cuts) == spilled.observe(s, cuts)
        assert plain.unique_fingerprints == spilled.unique_fingerprints
        # the consolidated base really lives in a backing file
        assert list(tmp_path.glob("gt_seen_*.u64"))
        assert isinstance(spilled._seen, np.memmap)


class TestRunHelpers:
    def test_run_backup_annotates_truth(self, segmenter):
        eng = fresh_engine()
        gt = GroundTruth()
        s = make_stream(100)
        r0 = run_backup(eng, BackupJob(0, "a", s), segmenter, gt)
        r1 = run_backup(eng, BackupJob(1, "a", s), segmenter, gt)
        assert r0.true_dup_bytes == 0
        assert r1.true_dup_bytes == s.total_bytes
        assert r1.efficiency == pytest.approx(1.0)
        assert r1.missed_dup_bytes == 0

    def test_run_workload_report_per_job(self, segmenter, small_jobs):
        eng = fresh_engine()
        reports = run_workload(eng, small_jobs, segmenter)
        assert len(reports) == len(small_jobs)
        assert [r.generation for r in reports] == [j.generation for j in small_jobs]

    def test_run_workload_progress_callback(self, segmenter, small_jobs):
        eng = fresh_engine()
        seen = []
        run_workload(eng, small_jobs, segmenter, progress=lambda r: seen.append(r.generation))
        assert seen == [j.generation for j in small_jobs]

    def test_run_workload_without_truth(self, segmenter, small_jobs):
        eng = fresh_engine()
        reports = run_workload(eng, small_jobs, segmenter, with_ground_truth=False)
        assert all(r.true_dup_bytes is None for r in reports)
        assert all(r.efficiency is None for r in reports)

    def test_exact_engine_efficiency_one(self, segmenter, small_jobs):
        """ExactEngine removes every detectable duplicate."""
        eng = fresh_engine()
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports[1:]:
            assert r.efficiency == pytest.approx(1.0)

    def test_segment_truth_aligned(self, segmenter, small_jobs):
        eng = fresh_engine()
        reports = run_workload(eng, small_jobs, segmenter)
        for r in reports:
            assert len(r.seg_true_dup_bytes) == len(r.segments)
            assert len(r.seg_fully_dup) == len(r.segments)
            # per-segment truth sums to the stream truth
            assert sum(r.seg_true_dup_bytes) == r.true_dup_bytes
