"""Engine edge cases: oversized chunks, degenerate streams, bloom false
positives, tiny caches."""

import numpy as np
import pytest

from repro.chunking.base import ChunkStream
from repro.dedup.base import CostModel, EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def fresh_resources(container_bytes=256 * 1024):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=container_bytes,
        expected_entries=100_000,
    )
    res.store.seal_seeks = 0
    return res


class TestDegenerateStreams:
    def test_single_chunk_stream(self, segmenter):
        eng = ExactEngine(fresh_resources())
        s = ChunkStream.from_pairs([(42, 1234)])
        r = run_backup(eng, BackupJob(0, "t", s), segmenter)
        assert r.n_chunks == 1
        assert r.written_new_bytes == 1234

    def test_chunk_larger_than_container(self, segmenter):
        """An oversized chunk must land in a container of its own."""
        eng = ExactEngine(fresh_resources(container_bytes=1024))
        s = ChunkStream.from_pairs([(1, 5000), (2, 5000)])
        r = run_backup(eng, BackupJob(0, "t", s), segmenter)
        assert r.written_new_bytes == 10000
        assert eng.res.store.n_containers + (
            1 if eng.res.store.open_container else 0
        ) >= 2

    def test_all_identical_chunks(self, segmenter):
        eng = ExactEngine(fresh_resources())
        s = ChunkStream(
            np.full(100, 7, dtype=np.uint64), np.full(100, 1000, dtype=np.uint32)
        )
        r = run_backup(eng, BackupJob(0, "t", s), segmenter)
        assert r.written_new_bytes == 1000
        assert r.removed_dup_bytes == 99_000

    def test_zero_cost_model(self, segmenter):
        """With zero CPU cost and a fresh stream, time is pure disk."""
        res = fresh_resources()
        eng = ExactEngine(res, cost=CostModel(0.0, 0.0))
        s = make_stream(50, seed=20)
        r = run_backup(eng, BackupJob(0, "t", s), segmenter)
        assert r.elapsed_seconds == pytest.approx(
            r.disk_delta.total_time_s, rel=1e-9
        )


class TestBloomFalsePositives:
    def test_false_positive_charges_negative_lookup(self, segmenter):
        """An undersized bloom produces false positives; each one costs a
        (fruitless) on-disk index lookup but never corrupts dedup."""
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=16, bloom_fp_rate=0.5, cache_containers=4)
        s = make_stream(300, seed=21)
        r = run_backup(eng, BackupJob(0, "t", s), segmenter)
        # all chunks are genuinely new; any index lookups were FPs
        assert r.written_new_bytes == s.total_bytes
        assert res.index.stats.lookups > 0  # saturated bloom lies a lot
        assert r.removed_dup_bytes == 0

    def test_dedup_correct_despite_fp_storm(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=16, bloom_fp_rate=0.5, cache_containers=4)
        s = make_stream(200, seed=22)
        run_backup(eng, BackupJob(0, "t", s), segmenter)
        r = run_backup(eng, BackupJob(1, "t", s), segmenter)
        assert r.removed_dup_bytes == s.total_bytes


class TestTinyCache:
    def test_cache_of_one_container_still_correct(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=100_000, cache_containers=1,
                         prefetch_ahead=1)
        s = make_stream(400, seed=23)
        run_backup(eng, BackupJob(0, "t", s), segmenter)
        r = run_backup(eng, BackupJob(1, "t", s), segmenter)
        assert r.removed_dup_bytes == s.total_bytes

    def test_smaller_cache_never_faster(self, segmenter):
        def elapsed(cache):
            res = fresh_resources()
            eng = DDFSEngine(res, bloom_capacity=100_000,
                             cache_containers=cache, prefetch_ahead=1)
            s = make_stream(600, seed=24)
            run_backup(eng, BackupJob(0, "t", s), segmenter)
            return run_backup(eng, BackupJob(1, "t", s), segmenter).elapsed_seconds

        assert elapsed(16) <= elapsed(1) + 1e-9


class TestSegmenterInteraction:
    def test_segment_bigger_than_stream(self):
        """A stream smaller than min segment size becomes one segment."""
        seg = ContentDefinedSegmenter()  # 0.5-2 MB segments
        eng = ExactEngine(fresh_resources())
        s = make_stream(5, size=1000)  # 5 KB total
        r = run_backup(eng, BackupJob(0, "t", s), seg)
        assert len(r.segments) == 1
        assert r.segments[0].n_chunks == 5
