"""Engine behaviour tests shared across all four implementations, plus
engine-specific mechanics."""

import numpy as np
import pytest

from repro.chunking.base import ChunkStream
from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.dedup.silo import SiLoEngine
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE,
        container_bytes=256 * 1024,
        expected_entries=100_000,
        index_page_cache_pages=8,
    )
    res.store.seal_seeks = 0
    return res


ENGINE_FACTORIES = {
    "exact": lambda res: ExactEngine(res),
    "ddfs": lambda res: DDFSEngine(res, bloom_capacity=100_000, cache_containers=8),
    "silo": lambda res: SiLoEngine(res, block_bytes=128 * 1024, cache_blocks=8),
    "defrag": lambda res: DeFragEngine(
        res, policy=SPLThresholdPolicy(0.1), bloom_capacity=100_000, cache_containers=8
    ),
}


def run_stream(engine, stream, segmenter, gen=0, gt=None):
    return run_backup(engine, BackupJob(gen, "t", stream), segmenter, gt)


@pytest.fixture(params=list(ENGINE_FACTORIES))
def engine_name(request):
    return request.param


@pytest.fixture
def engine(engine_name):
    return ENGINE_FACTORIES[engine_name](fresh_resources())


class TestEngineContract:
    def test_unique_stream_all_written(self, engine, segmenter):
        s = make_stream(100)
        report = run_stream(engine, s, segmenter)
        assert report.written_new_bytes == s.total_bytes
        assert report.removed_dup_bytes == 0
        assert report.logical_bytes == s.total_bytes
        assert report.n_chunks == 100

    def test_identical_second_stream_mostly_removed(self, engine, segmenter):
        s = make_stream(300, seed=1)
        run_stream(engine, s, segmenter, gen=0)
        report = run_stream(engine, s, segmenter, gen=1)
        handled = report.removed_dup_bytes + report.rewritten_dup_bytes
        assert handled / s.total_bytes > 0.7

    def test_partition_identity(self, engine, segmenter):
        s = make_stream(200, seed=2)
        run_stream(engine, s, segmenter, 0)
        report = run_stream(engine, s, segmenter, 1)
        assert (
            report.written_new_bytes
            + report.removed_dup_bytes
            + report.rewritten_dup_bytes
            == report.logical_bytes
        )

    def test_recipe_covers_stream(self, engine, segmenter):
        s = make_stream(150, seed=3)
        report = run_stream(engine, s, segmenter)
        assert np.array_equal(report.recipe.fingerprints, s.fps)
        assert np.array_equal(report.recipe.sizes, s.sizes)

    def test_recipe_containers_sealed(self, engine, segmenter):
        """Every container referenced by a recipe must exist after flush."""
        s = make_stream(150, seed=4)
        run_stream(engine, s, segmenter, 0)
        report = run_stream(engine, s, segmenter, 1)
        for cid in report.recipe.unique_containers():
            assert engine.res.store.has(int(cid)), f"container {cid} missing"

    def test_elapsed_positive_and_throughput(self, engine, segmenter):
        s = make_stream(100, seed=5)
        report = run_stream(engine, s, segmenter)
        assert report.elapsed_seconds > 0
        assert report.throughput > 0

    def test_empty_stream(self, engine, segmenter):
        report = run_stream(engine, ChunkStream.empty(), segmenter)
        assert report.n_chunks == 0
        assert report.logical_bytes == 0

    def test_lifecycle_enforced(self, engine, segmenter):
        with pytest.raises(RuntimeError):
            engine.end_backup()
        engine.begin_backup(0, "x")
        with pytest.raises(RuntimeError):
            engine.begin_backup(1, "y")
        engine.end_backup()

    def test_intra_stream_duplicates_detected(self, engine, segmenter):
        base = make_stream(100, seed=6)
        doubled = ChunkStream.concat([base, base])
        report = run_stream(engine, doubled, segmenter)
        assert report.removed_dup_bytes + report.rewritten_dup_bytes >= 0.6 * base.total_bytes


class TestExactSpecifics:
    def test_every_chunk_consults_index(self, segmenter):
        res = fresh_resources()
        eng = ExactEngine(res)
        s = make_stream(50)
        run_stream(eng, s, segmenter)
        assert res.index.stats.lookups == 50

    def test_exact_removes_all_duplicates(self, segmenter):
        res = fresh_resources()
        eng = ExactEngine(res)
        s = make_stream(200, seed=7)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes == s.total_bytes


class TestDDFSSpecifics:
    def test_bloom_screens_new_chunks(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=100_000, cache_containers=8)
        s = make_stream(100, seed=8)
        run_stream(eng, s, segmenter)
        # new chunks should rarely reach the on-disk index (bloom FP only)
        assert res.index.stats.lookups <= 5

    def test_dedup_exactness(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=100_000, cache_containers=8)
        s = make_stream(300, seed=9)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes == s.total_bytes

    def test_prefetch_amortizes_index_lookups(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=100_000, cache_containers=8)
        s = make_stream(400, seed=10)
        run_stream(eng, s, segmenter, 0)
        run_stream(eng, s, segmenter, 1)
        # far fewer index lookups than duplicate chunks
        assert res.index.stats.lookups < 100

    def test_prefetch_ahead_reduces_seeks(self, segmenter):
        def seeks_with(ahead):
            res = fresh_resources()
            eng = DDFSEngine(
                res, bloom_capacity=100_000, cache_containers=16, prefetch_ahead=ahead
            )
            s = make_stream(800, seed=11)
            run_stream(eng, s, segmenter, 0)
            r = run_stream(eng, s, segmenter, 1)
            return r.disk_delta.seeks

        assert seeks_with(4) < seeks_with(1)

    def test_extras_present(self, segmenter):
        res = fresh_resources()
        eng = DDFSEngine(res, bloom_capacity=100_000, cache_containers=8)
        s = make_stream(100, seed=12)
        r = run_stream(eng, s, segmenter)
        for key in ("cache_hits", "prefetches", "hits_per_prefetch", "index_faults"):
            assert key in r.extras


class TestSiLoSpecifics:
    def test_similarity_detects_repeat_stream(self, segmenter):
        res = fresh_resources()
        eng = SiLoEngine(res, block_bytes=128 * 1024, cache_blocks=8)
        s = make_stream(400, seed=13)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes / s.total_bytes > 0.9

    def test_never_touches_disk_index(self, segmenter):
        res = fresh_resources()
        eng = SiLoEngine(res, block_bytes=128 * 1024, cache_blocks=8)
        s = make_stream(200, seed=14)
        run_stream(eng, s, segmenter, 0)
        run_stream(eng, s, segmenter, 1)
        assert res.index.stats.lookups == 0

    def test_bounded_similarity_misses(self, segmenter):
        """With a tiny similarity budget, repeats are partially missed."""
        res = fresh_resources()
        eng = SiLoEngine(
            res, block_bytes=128 * 1024, cache_blocks=8, similarity_capacity=2
        )
        s = make_stream(600, seed=15)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.removed_dup_bytes < s.total_bytes

    def test_blocks_sealed_at_backup_end(self, segmenter):
        res = fresh_resources()
        eng = SiLoEngine(res, block_bytes=10**9, cache_blocks=8)
        s = make_stream(100, seed=16)
        run_stream(eng, s, segmenter, 0)
        assert len(eng._blocks) == 1  # sealed despite not reaching capacity

    def test_extras_present(self, segmenter):
        res = fresh_resources()
        eng = SiLoEngine(res, block_bytes=128 * 1024, cache_blocks=8)
        r = run_stream(eng, make_stream(100, seed=17), segmenter)
        for key in ("block_fetches", "similarity_hit_rate", "hits_per_prefetch"):
            assert key in r.extras
