"""End-to-end byte-level ingest through the public convenience API."""

import numpy as np
import pytest

from repro.chunking.gear import GearChunker
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.pipeline import GroundTruth, ingest_bytes
from repro.segmenting.segmenter import ContentDefinedSegmenter

from tests.conftest import TEST_PROFILE


def fresh_engine():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=50_000
    )
    res.store.seal_seeks = 0
    return DDFSEngine(res, bloom_capacity=50_000, cache_containers=8)


def payload(nbytes, seed=0):
    return bytes(np.random.default_rng(seed).integers(0, 256, nbytes, dtype=np.uint8))


@pytest.fixture
def byte_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=8 * 1024, avg_bytes=16 * 1024, max_bytes=32 * 1024,
        avg_chunk_bytes=1024,
    )


class TestIngestBytes:
    def test_round_numbers(self, byte_segmenter):
        eng = fresh_engine()
        data = payload(256 * 1024)
        report = ingest_bytes(eng, data, GearChunker(avg_size=1024), byte_segmenter)
        assert report.logical_bytes == len(data)
        assert report.written_new_bytes == len(data)

    def test_second_version_deduplicates(self, byte_segmenter):
        eng = fresh_engine()
        chunker = GearChunker(avg_size=1024)
        v1 = payload(256 * 1024, seed=1)
        # insert bytes mid-file: offsets shift, content mostly identical
        v2 = v1[: 100_000] + payload(64, seed=2) + v1[100_000:]
        ingest_bytes(eng, v1, chunker, byte_segmenter, generation=0)
        report = ingest_bytes(eng, v2, chunker, byte_segmenter, generation=1)
        assert report.removed_dup_bytes / report.logical_bytes > 0.8

    def test_ground_truth_integration(self, byte_segmenter):
        eng = fresh_engine()
        chunker = GearChunker(avg_size=1024)
        gt = GroundTruth()
        data = payload(128 * 1024, seed=3)
        ingest_bytes(eng, data, chunker, byte_segmenter, ground_truth=gt)
        report = ingest_bytes(
            eng, data, chunker, byte_segmenter, generation=1, ground_truth=gt
        )
        assert report.true_dup_bytes == report.logical_bytes
        assert report.efficiency == pytest.approx(1.0)

    def test_label_and_generation_propagate(self, byte_segmenter):
        eng = fresh_engine()
        report = ingest_bytes(
            eng, payload(64 * 1024), GearChunker(avg_size=1024), byte_segmenter,
            generation=7, label="mydata",
        )
        assert report.generation == 7
        assert report.label == "mydata"
        assert report.recipe.label == "mydata"
