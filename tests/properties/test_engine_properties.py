"""Property-based tests over the dedup engines: random chunk streams in,
invariants out."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chunking.base import ChunkStream
from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import GroundTruth, run_backup
from repro.dedup.silo import SiLoEngine
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


def fresh(factory):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=50_000
    )
    res.store.seal_seeks = 0
    return factory(res)


FACTORIES = [
    lambda r: ExactEngine(r),
    lambda r: DDFSEngine(r, bloom_capacity=50_000, cache_containers=4),
    lambda r: SiLoEngine(r, block_bytes=64 * 1024, cache_blocks=4, similarity_capacity=32),
    lambda r: DeFragEngine(r, policy=SPLThresholdPolicy(0.1),
                           bloom_capacity=50_000, cache_containers=4),
]

# streams: lists of (fp-class, size); small fp alphabet forces duplicates
stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=60),
              st.integers(min_value=256, max_value=4096)),
    min_size=0, max_size=150,
).map(
    lambda pairs: ChunkStream.from_pairs(
        # sizes must be consistent per fingerprint (same chunk == same bytes)
        [(fp, 256 + (fp * 37) % 3840) for fp, _ in pairs]
    )
)


@st.composite
def two_streams(draw):
    return draw(stream_strategy), draw(stream_strategy)


class TestEngineInvariantProperties:
    @given(stream_strategy)
    @settings(max_examples=20, deadline=None)
    def test_partition_and_recipe(self, stream):
        for factory in FACTORIES:
            eng = fresh(factory)
            r = run_backup(eng, BackupJob(0, "p", stream), small_segmenter())
            assert (
                r.written_new_bytes + r.removed_dup_bytes + r.rewritten_dup_bytes
                == r.logical_bytes
            )
            assert np.array_equal(r.recipe.fingerprints, stream.fps)

    @given(two_streams())
    @settings(max_examples=15, deadline=None)
    def test_no_misses_for_exact_family(self, streams):
        s1, s2 = streams
        for factory in FACTORIES[:2] + FACTORIES[3:]:  # exact, ddfs, defrag
            eng = fresh(factory)
            gt = GroundTruth()
            run_backup(eng, BackupJob(0, "p", s1), small_segmenter(), gt)
            r = run_backup(eng, BackupJob(1, "p", s2), small_segmenter(), gt)
            assert r.missed_dup_bytes == 0

    @given(two_streams())
    @settings(max_examples=15, deadline=None)
    def test_restore_returns_all_bytes(self, streams):
        s1, s2 = streams
        for factory in FACTORIES:
            eng = fresh(factory)
            run_backup(eng, BackupJob(0, "p", s1), small_segmenter())
            r = run_backup(eng, BackupJob(1, "p", s2), small_segmenter())
            rr = RestoreReader(eng.res.store, config=StoreConfig(cache_containers=4)).restore(r.recipe)
            assert rr.logical_bytes == s2.total_bytes

    @given(stream_strategy)
    @settings(max_examples=15, deadline=None)
    def test_silo_never_removes_more_than_truth(self, stream):
        eng = fresh(FACTORIES[2])
        gt = GroundTruth()
        r = run_backup(eng, BackupJob(0, "p", stream), small_segmenter(), gt)
        assert r.removed_dup_bytes <= (r.true_dup_bytes or 0) or r.true_dup_bytes is None
