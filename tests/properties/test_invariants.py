"""Property-based tests (hypothesis) on core data structures and
invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chunking.base import ChunkStream
from repro.chunking.fingerprint import splitmix64, splitmix64_array
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import GearChunker
from repro.core.policy import CappingPolicy, SPLThresholdPolicy
from repro.core.spl import spl_profile
from repro.index.bloom import BloomFilter
from repro.storage.layout import container_run_lengths


fps_arrays = st.lists(
    st.integers(min_value=0, max_value=2**64 - 1), min_size=0, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.uint64))


class TestSplitmix:
    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_range(self, x):
        assert 0 <= splitmix64(x) < 2**64

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1),
                    min_size=1, max_size=100, unique=True))
    def test_injective_on_sample(self, xs):
        ys = [splitmix64(x) for x in xs]
        assert len(set(ys)) == len(xs)

    @given(fps_arrays)
    def test_vectorized_matches_scalar(self, arr):
        out = splitmix64_array(arr)
        for i in range(min(len(arr), 10)):
            assert int(out[i]) == splitmix64(int(arr[i]))


class TestBloomProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_no_false_negatives(self, keys):
        b = BloomFilter(1000, 0.01)
        arr = np.asarray(keys, dtype=np.uint64)
        b.add_many(arr)
        assert b.contains_many(arr).all()


class TestChunkerProperties:
    @given(st.binary(min_size=0, max_size=8000))
    @settings(max_examples=30, deadline=None)
    def test_gear_boundaries_partition(self, data):
        cuts = GearChunker(avg_size=256).cut_boundaries(data)
        assert cuts[0] == 0
        assert cuts[-1] == len(data)
        assert (np.diff(cuts) > 0).all() or len(data) == 0

    @given(st.binary(min_size=1, max_size=8000))
    @settings(max_examples=30, deadline=None)
    def test_gear_sizes_bounded(self, data):
        c = GearChunker(avg_size=256, min_size=64, max_size=1024)
        sizes = np.diff(c.cut_boundaries(data))
        assert (sizes <= 1024).all()
        if len(sizes) > 1:
            assert (sizes[:-1] >= 64).all()

    @given(st.binary(min_size=0, max_size=5000),
           st.integers(min_value=1, max_value=512))
    @settings(max_examples=30, deadline=None)
    def test_fixed_chunker_reassembles(self, data, size):
        cuts = FixedChunker(chunk_size=size).cut_boundaries(data)
        assert int(np.diff(cuts).sum()) == len(data)

    @given(st.binary(min_size=200, max_size=3000))
    @settings(max_examples=20, deadline=None)
    def test_gear_chunk_total_bytes(self, data):
        cs = GearChunker(avg_size=256).chunk(data)
        assert cs.total_bytes == len(data)


class TestChunkStreamProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**64 - 1),
                              st.integers(min_value=1, max_value=10**6)),
                    max_size=100))
    def test_concat_length_additive(self, pairs):
        s = ChunkStream.from_pairs(pairs)
        double = ChunkStream.concat([s, s])
        assert len(double) == 2 * len(s)
        assert double.total_bytes == 2 * s.total_bytes

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**64 - 1),
                              st.integers(min_value=1, max_value=10**6)),
                    max_size=100))
    def test_duplicate_bytes_bounds(self, pairs):
        s = ChunkStream.from_pairs(pairs)
        d = s.duplicate_bytes_within()
        assert 0 <= d <= s.total_bytes


class TestSPLProperties:
    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=50),
           st.integers(min_value=50, max_value=200))
    def test_spl_in_unit_interval(self, sids, total):
        p = spl_profile(sids, segment_n_chunks=total)
        for sid, v in p.items():
            assert 0.0 <= v <= 1.0
        assert 0.0 <= p.max_spl <= 1.0
        assert 0.0 <= p.duplicate_fraction <= 1.0

    @given(st.integers(min_value=1, max_value=100))
    def test_exact_cover_spl_one(self, n):
        p = spl_profile([1] * n, segment_n_chunks=n)
        assert p.spl(1) == 1.0

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=40),
           st.floats(min_value=0.0, max_value=1.0))
    def test_threshold_policy_consistent(self, sids, alpha):
        total = max(len(sids), 1)
        p = spl_profile(sids, segment_n_chunks=total)
        d = SPLThresholdPolicy(alpha=alpha).decide(p)
        for sid in d.rewrite_sids:
            assert p.spl(sid) < alpha
        for sid, _cnt in p.shares.items():
            if p.spl(sid) >= alpha:
                assert not d.should_rewrite(sid)

    @given(st.dictionaries(st.integers(min_value=0, max_value=30),
                           st.integers(min_value=1, max_value=5), max_size=10),
           st.integers(min_value=0, max_value=8))
    def test_capping_policy_bounds_references(self, shares, cap):
        total = max(sum(shares.values()), 1)
        sids = [s for s, c in shares.items() for _ in range(c)]
        p = spl_profile(sids, segment_n_chunks=total)
        d = CappingPolicy(cap=cap).decide(p)
        kept = len(p.shares) - len(d.rewrite_sids)
        assert kept <= max(cap, len(p.shares) if len(p.shares) <= cap else cap)


class TestRunLengthProperties:
    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_runs_partition_sequence(self, cids):
        arr = np.asarray(cids, dtype=np.int64)
        runs = container_run_lengths(arr)
        assert int(runs.sum()) == arr.size
        if arr.size:
            assert (runs >= 1).all()
