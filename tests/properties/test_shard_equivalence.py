"""Property suite: the sharded index is indistinguishable from one index.

Random operation sequences driven through an N-shard
``ShardedChunkIndex`` and a single reference ``DiskChunkIndex`` must
give equal answers everywhere an engine can observe them — lookups
(scalar, batched, sorted-sweep), peeks, membership, length. Plus the
router's own invariants (partition covers a batch exactly once; routing
is a stable pure function, including across a process boundary) and an
engine-level check that sharding never changes dedup decisions.

CI runs this file with a pinned seed (``--hypothesis-seed=2012``) so
the examples are reproducible across runs.
"""

import subprocess
import sys
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.index.full_index import ChunkLocation, DiskChunkIndex
from repro.sharding import ShardedChunkIndex
from repro.sharding.router import ShardRouter
from repro.storage.disk import DiskModel

from tests.conftest import TEST_PROFILE


# a small fingerprint alphabet forces lookup hits, re-inserts, and
# updates; fps are offset so sequential ids still hash apart
fp_strategy = st.integers(min_value=1, max_value=120).map(
    lambda x: x * 0x9E3779B97F4A7C15 % ((1 << 62) - 1) + 1
)

op_strategy = st.one_of(
    st.tuples(st.just("insert"), st.lists(fp_strategy, max_size=40)),
    st.tuples(st.just("lookup"), st.lists(fp_strategy, max_size=40)),
    st.tuples(st.just("sorted"), st.lists(fp_strategy, max_size=40)),
    st.tuples(st.just("flush"), st.just([])),
)

ops_strategy = st.lists(op_strategy, max_size=25)


def fresh_sharded(n_shards):
    return ShardedChunkIndex.create(
        DiskModel(profile=TEST_PROFILE),
        n_shards=n_shards,
        expected_entries=10_000,
    )


def apply_ops(index, ops):
    """Drive one op sequence; returns everything observable."""
    observed = []
    serial = 0
    for op, fps in ops:
        if op == "insert":
            locs = [ChunkLocation(serial + i, 0) for i in range(len(fps))]
            serial += len(fps)
            index.insert_many(fps, locs)
        elif op == "lookup":
            observed.append(index.lookup_many(fps))
        elif op == "sorted":
            observed.append(index.lookup_batch_sorted(fps))
        elif op == "flush":
            index.flush()
        observed.append(len(index))
    probe = [fp * 0x9E3779B97F4A7C15 % ((1 << 62) - 1) + 1 for fp in range(1, 121)]
    observed.append([index.peek(fp) for fp in probe])
    observed.append([fp in index for fp in probe])
    return observed


class TestShardEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy, n_shards=st.integers(min_value=2, max_value=5))
    def test_sharded_matches_single_index_reference(self, ops, n_shards):
        reference = DiskChunkIndex(
            DiskModel(profile=TEST_PROFILE), expected_entries=10_000
        )
        sharded = fresh_sharded(n_shards)
        assert apply_ops(sharded, ops) == apply_ops(reference, ops)

    @settings(max_examples=25, deadline=None)
    @given(ops=ops_strategy)
    def test_one_shard_is_the_identity_wrapper(self, ops):
        reference = DiskChunkIndex(
            DiskModel(profile=TEST_PROFILE), expected_entries=10_000
        )
        one = fresh_sharded(1)
        assert apply_ops(one, ops) == apply_ops(reference, ops)
        # byte-identity: stats and the simulated clock agree too
        assert dict(vars(one.stats)) == dict(vars(reference.stats))
        assert one.disk.stats.total_time_s == reference.disk.stats.total_time_s


class TestRouterProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        fps=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1)),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    def test_partition_is_a_partition(self, fps, n_shards):
        router = ShardRouter(n_shards)
        parts = router.partition(fps)
        positions = sorted(
            pos for positions, _ in parts.values() for pos in positions
        )
        assert positions == list(range(len(fps)))
        for shard, (pos_list, shard_fps) in parts.items():
            for pos, fp in zip(pos_list, shard_fps):
                assert fps[pos] == fp
                assert router.shard_of(fp) == shard

    @settings(max_examples=50, deadline=None)
    @given(
        fps=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1)),
        n_shards=st.integers(min_value=1, max_value=8),
    )
    def test_batch_routing_matches_scalar_routing(self, fps, n_shards):
        router = ShardRouter(n_shards)
        assert router.route_many(fps).tolist() == [
            router.shard_of(fp) for fp in fps
        ]


class TestEngineLevelEquivalence:
    """Sharding never changes what an engine decides to write."""

    @staticmethod
    def _run(n_shards, streams):
        from repro.dedup.base import EngineResources
        from repro.dedup.exact import ExactEngine
        from repro.dedup.pipeline import run_backup
        from repro.segmenting.segmenter import ContentDefinedSegmenter
        from repro.workloads.generators import BackupJob

        res = EngineResources.create(
            profile=TEST_PROFILE,
            container_bytes=64 * 1024,
            expected_entries=50_000,
        )
        res.store.seal_seeks = 0
        if n_shards > 1:
            res.index = ShardedChunkIndex.create(
                res.disk, n_shards=n_shards, expected_entries=50_000
            )
        engine = ExactEngine(res)
        segmenter = ContentDefinedSegmenter(
            min_bytes=4096,
            avg_bytes=8192,
            max_bytes=16384,
            avg_chunk_bytes=1024,
        )
        recipes = []
        for gen, stream in enumerate(streams):
            report = run_backup(
                engine, BackupJob(gen, "p", stream), segmenter
            )
            recipes.append(
                (
                    report.recipe.fingerprints.tolist(),
                    report.recipe.containers.tolist(),
                )
            )
        store = res.store
        store.flush()
        contents = {
            cid: list(store.get(cid).fingerprints) for cid in store.cids()
        }
        return recipes, contents

    @settings(max_examples=10, deadline=None)
    @given(
        data=st.lists(
            st.lists(
                st.integers(min_value=0, max_value=60), max_size=120
            ),
            min_size=1,
            max_size=3,
        ),
        n_shards=st.integers(min_value=2, max_value=4),
    )
    def test_sharded_engine_writes_the_same_backups(self, data, n_shards):
        from repro.chunking.base import ChunkStream

        streams = [
            ChunkStream.from_pairs(
                [(fp, 256 + (fp * 37) % 3840) for fp in fps]
            )
            for fps in data
        ]
        assert self._run(1, streams) == self._run(n_shards, streams)


def test_routing_is_stable_across_processes():
    """The ring is blake2b-derived, not hash()-derived: a fresh
    interpreter (fresh PYTHONHASHSEED) routes identically."""
    fps = [fp * 1_000_003 + 7 for fp in range(200)]
    here = [ShardRouter(4).shard_of(fp) for fp in fps]
    code = (
        "from repro.sharding.router import ShardRouter\n"
        f"fps = {fps!r}\n"
        "r = ShardRouter(4)\n"
        "print(','.join(str(r.shard_of(fp)) for fp in fps))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={
            "PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
            "PYTHONHASHSEED": "12345",
        },
    )
    assert [int(x) for x in out.stdout.strip().split(",")] == here
