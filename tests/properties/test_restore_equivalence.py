"""Property suite: the restore subsystem is equivalence-locked.

Three layers of invariants, all over hypothesis-generated inputs:

* **plan layer** — :func:`access_trace` is exactly the flattening of
  :func:`plan_assembly`; plans cover their recipe; FAA-off planning is
  the scalar per-run sequence; a window never reads a container twice.
* **policy layer** — hits + misses account for every access; Belady's
  MIN never misses more than any realizable policy on the same trace.
* **reader layer** — whatever the (policy, cache size, FAA window,
  read-ahead) combination, a restore touches every container the recipe
  references and reports the stream's exact byte/chunk totals; and the
  default configuration issues the *identical ordered sequence* of
  container reads as an independent reimplementation of the original
  scalar LRU loop (the byte-identity anchor for ``repro all``).
"""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.chunking.base import ChunkStream
from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.restore.cache import make_cache
from repro.restore.faa import access_trace, plan_assembly
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.layout import container_run_lengths
from repro.storage.recipe import RecipeBuilder
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig


# -- strategies ---------------------------------------------------------

#: container-id sequences as a restore would walk them (small alphabet
#: forces revisits, the interesting case for caches and windows)
cid_seq = st.lists(st.integers(min_value=0, max_value=12), min_size=0, max_size=80)

windows = st.integers(min_value=0, max_value=20)

capacities = st.integers(min_value=1, max_value=8)

stream_strategy = st.lists(
    st.integers(min_value=0, max_value=60), min_size=1, max_size=150
).map(
    lambda fps: ChunkStream.from_pairs([(fp, 256 + (fp * 37) % 3840) for fp in fps])
)


def recipe_of(cids):
    b = RecipeBuilder(0)
    for i, cid in enumerate(cids):
        b.add(i + 1, 512, cid)
    return b.finalize()


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


def ingest(stream):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=16 * 1024, expected_entries=50_000
    )
    res.store.seal_seeks = 0
    eng = ExactEngine(res)
    report = run_backup(eng, BackupJob(0, "p", stream), small_segmenter())
    return res, report


def drive(cache, trace):
    misses = 0
    for pos, cid in enumerate(trace):
        if not cache.access(cid, pos):
            misses += 1
            cache.admit(cid, pos)
    return misses


def recorded_reads(store):
    """Wrap the store so every container fetch is logged in order."""
    reads = []
    orig_one, orig_run = store.read_container, store.read_container_run

    def one(cid):
        reads.append(int(cid))
        return orig_one(cid)

    def run(cids):
        reads.extend(int(c) for c in cids)
        return orig_run(cids)

    store.read_container, store.read_container_run = one, run
    return reads


def scalar_lru_reference(recipe, capacity):
    """Independent reimplementation of the pre-subsystem scalar reader:
    one access per maximal same-container run, OrderedDict LRU."""
    runs = container_run_lengths(recipe.containers)
    if not runs.size:
        return []
    starts = np.concatenate(([0], np.cumsum(runs)[:-1]))
    cache = OrderedDict()
    reads = []
    for cid in (int(c) for c in recipe.containers[starts]):
        if cid in cache:
            cache.move_to_end(cid)
            continue
        reads.append(cid)
        if len(cache) >= capacity:
            cache.popitem(last=False)
        cache[cid] = True
    return reads


# -- plan layer ---------------------------------------------------------


class TestPlanProperties:
    @given(cid_seq, windows)
    @settings(max_examples=60, deadline=None)
    def test_trace_is_plan_flattening(self, cids, window):
        recipe = recipe_of(cids)
        trace, window_ends, n_runs = access_trace(recipe, window)
        plan = plan_assembly(recipe, window)
        assert trace == plan.trace
        assert n_runs == plan.n_runs == container_run_lengths(recipe.containers).size
        assert len(window_ends) == len(trace)
        assert all(e <= len(trace) for e in window_ends)
        assert window_ends == sorted(window_ends)

    @given(cid_seq, windows)
    @settings(max_examples=60, deadline=None)
    def test_plan_covers_recipe(self, cids, window):
        recipe = recipe_of(cids)
        assert plan_assembly(recipe, window).covers(recipe)

    @given(cid_seq, st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_no_container_read_twice_per_window(self, cids, window):
        plan = plan_assembly(recipe_of(cids), window)
        for w in plan.windows:
            assert len(w.accesses) == len(set(w.accesses))

    @given(cid_seq)
    @settings(max_examples=60, deadline=None)
    def test_faa_off_is_run_sequence(self, cids):
        trace, _, n_runs = access_trace(recipe_of(cids), 0)
        expected = [cid for i, cid in enumerate(cids) if i == 0 or cids[i - 1] != cid]
        assert trace == expected
        assert n_runs == len(expected)


# -- policy layer -------------------------------------------------------


class TestPolicyProperties:
    @given(cid_seq, capacities)
    @settings(max_examples=60, deadline=None)
    def test_accounting_covers_every_access(self, cids, capacity):
        for policy in ("lru", "lfu", "belady"):
            cache = make_cache(policy, capacity, trace=cids)
            drive(cache, cids)
            assert cache.stats.accesses == len(cids)
            assert cache.stats.hits + cache.stats.misses == len(cids)
            assert len(cache) <= capacity

    @given(cid_seq, capacities)
    @settings(max_examples=60, deadline=None)
    def test_belady_is_the_lower_bound_on_misses(self, cids, capacity):
        miss = {}
        for policy in ("lru", "lfu", "belady"):
            cache = make_cache(policy, capacity, trace=cids)
            miss[policy] = drive(cache, cids)
        assert miss["belady"] <= miss["lru"]
        assert miss["belady"] <= miss["lfu"]

    @given(cid_seq, capacities)
    @settings(max_examples=60, deadline=None)
    def test_infinite_cache_misses_once_per_distinct(self, cids, capacity):
        big = len(set(cids)) + capacity
        for policy in ("lru", "lfu", "belady"):
            cache = make_cache(policy, big, trace=cids)
            assert drive(cache, cids) == len(set(cids))
            assert cache.stats.evictions == 0


# -- reader layer -------------------------------------------------------

READER_COMBOS = [
    {"policy": p, "faa_window": w, "readahead": ra}
    for p in ("lru", "lfu", "belady")
    for w in (0, 16)
    for ra in (False, True)
]


class TestRestoreEquivalence:
    @given(stream_strategy, capacities)
    @settings(max_examples=10, deadline=None)
    def test_every_combo_restores_the_whole_stream(self, stream, capacity):
        res, report = ingest(stream)
        needed = set(int(c) for c in report.recipe.unique_containers())
        for kwargs in READER_COMBOS:
            reads = recorded_reads(res.store)
            rr = RestoreReader(
                res.store, config=StoreConfig(cache_containers=capacity), **kwargs
            ).restore(report.recipe)
            assert rr.logical_bytes == stream.total_bytes
            assert rr.n_chunks == len(stream.fps)
            # a fresh client cache means every referenced container is
            # actually fetched, whatever the policy/window/read-ahead
            assert set(reads) >= needed
            assert rr.container_reads == len(reads)

    @given(stream_strategy, capacities)
    @settings(max_examples=10, deadline=None)
    def test_default_reader_is_the_scalar_lru_loop(self, stream, capacity):
        res, report = ingest(stream)
        expected = scalar_lru_reference(report.recipe, capacity)
        reads = recorded_reads(res.store)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=capacity)).restore(report.recipe)
        assert reads == expected, "default path must replay the scalar reader"
        assert rr.container_reads == len(expected)
        assert rr.seeks == len(expected)

    @given(stream_strategy, capacities, st.sampled_from([0, 16]))
    @settings(max_examples=10, deadline=None)
    def test_belady_restore_never_misses_more(self, stream, capacity, window):
        res, report = ingest(stream)
        misses = {}
        for policy in ("lru", "lfu", "belady"):
            rr = RestoreReader(
                res.store,
                config=StoreConfig(cache_containers=capacity),
                policy=policy,
                faa_window=window,
            ).restore(report.recipe)
            misses[policy] = rr.cache_misses
        assert misses["belady"] <= misses["lru"]
        assert misses["belady"] <= misses["lfu"]
