"""Property-based crash-recovery tests: wherever the crash lands, the
post-recovery log restores every retained backup byte-identically, and
GC never removes a container a retained recipe references."""

from functools import lru_cache

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.chaos import ChaosScenario, _ScenarioRunner, _run_crash_point
from repro.faults import FaultInjector


@lru_cache(maxsize=4)
def runner_and_census(seed, min_utilization=0.6):
    """One shared scenario per seed: prepared workload, reference census."""
    scenario = ChaosScenario(
        n_generations=4,
        fs_bytes=768 * 1024,
        container_bytes=128 * 1024,
        gc_every=2,
        retain=2,
        min_utilization=min_utilization,
        seed=seed,
    )
    runner = _ScenarioRunner(scenario, scenario.prepare())
    inj = FaultInjector(record=True)
    state = runner.new_state(inj)
    runner.run_steps(state)
    return runner, len(inj.op_log), inj.flush_count


@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.sampled_from([11, 23]), frac=st.floats(0.0, 1.0))
def test_any_crash_point_recovers_with_zero_data_loss(seed, frac):
    """Crash at an arbitrary disk op -> recovery leaves every retained
    backup intact, byte-identical, and restorable; the resumed scenario
    then completes with the same guarantees."""
    runner, n_ops, n_flushes = runner_and_census(seed)
    crash_at = 1 + int(frac * (n_ops - 1))
    result = _run_crash_point(
        runner,
        crash_at,
        planned_class="any",
        point_seed=seed * 1_000 + crash_at,
        spice=False,
        n_ops=n_ops,
        n_flushes=n_flushes,
    )
    assert result.fired
    assert result.ok, result.errors


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.sampled_from([7, 31]),
    min_utilization=st.floats(0.1, 0.95),
)
def test_gc_never_removes_referenced_containers(seed, min_utilization):
    """Fault-free scenario with an arbitrary compaction threshold: after
    every GC pass, all retained recipes reference only live containers
    that physically hold their chunks (the verify() intact check)."""
    runner, _, _ = runner_and_census(seed, round(min_utilization, 2))
    state = runner.new_state(FaultInjector())
    runner.run_steps(state)
    errors = runner.verify(state, f"gc@{min_utilization:.2f}")
    assert not errors, errors
