"""Property-based tests for garbage collection: whatever the retention
window and threshold, retained backups stay bit-for-bit restorable."""

from hypothesis import given, settings, strategies as st

from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.pipeline import run_backup
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.gc import GarbageCollector
from repro.workloads.generators import BackupJob
from repro.workloads.fs_model import ChurnProfile, FileSystemModel

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=8 * 1024, avg_bytes=16 * 1024, max_bytes=32 * 1024,
        avg_chunk_bytes=1024,
    )


def run_generations(seed, n_gens, alpha):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    eng = DeFragEngine(
        res, policy=SPLThresholdPolicy(alpha),
        bloom_capacity=100_000, cache_containers=8,
    )
    fs = FileSystemModel(
        seed=seed, initial_bytes=512 * 1024,
        churn=ChurnProfile(modify_frac=0.4, edits_per_file_mean=3.0),
    )
    reports = []
    for g in range(n_gens):
        if g:
            fs.evolve()
        reports.append(
            run_backup(eng, BackupJob(g, "t", fs.full_backup()), small_segmenter())
        )
    return res, reports


class TestGCProperties:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        retain=st.integers(min_value=1, max_value=4),
        threshold=st.floats(min_value=0.1, max_value=1.0),
        alpha=st.sampled_from([0.1, 0.5, 1.0]),
    )
    @settings(max_examples=12, deadline=None)
    def test_retained_backups_survive_any_collection(
        self, seed, retain, threshold, alpha
    ):
        res, reports = run_generations(seed, n_gens=4, alpha=alpha)
        retained = [r.recipe for r in reports[-retain:]]
        gc = GarbageCollector(res.store, index=res.index)
        report, remapped = gc.collect(retained, min_utilization=threshold)
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        for original, recipe in zip(reports[-retain:], remapped):
            rr = reader.restore(recipe)
            assert rr.logical_bytes == original.logical_bytes
            assert rr.n_chunks == original.n_chunks
        # accounting identities
        assert report.bytes_reclaimed >= 0
        assert report.bytes_moved >= 0
        assert report.utilization_after >= report.utilization_before - 1e-9
