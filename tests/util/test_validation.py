import pytest

from repro._util import check_fraction, check_nonnegative, check_positive


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive("x", -1)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert check_nonnegative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("x", -0.1)


class TestCheckFraction:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, v):
        assert check_fraction("f", v) == v

    @pytest.mark.parametrize("v", [-0.01, 1.01, 5])
    def test_rejects_outside(self, v):
        with pytest.raises(ValueError):
            check_fraction("f", v)
