"""Perf-trajectory history: records, append/load, drift direction."""

import json

from repro.bench import (
    HISTORY_METRICS,
    append_history,
    drift_summary,
    history_record,
    load_history,
)


def _records():
    ingest = {"batch_seconds": 0.2, "scalar_seconds": 1.3, "speedup": 6.5}
    restore = {"restore_seconds": 0.025, "faa_seconds": 0.024}
    chunking = {"seqcdc_mb_per_s": 60.0, "speedup": 24.0}
    memory = {"peak_rss_mb": 160.0, "logical_bytes": 11_900_000_000}
    return ingest, restore, chunking, memory


class TestHistoryRecord:
    def test_headline_metrics_extracted(self):
        ingest, restore, chunking, memory = _records()
        rec = history_record(
            ingest=ingest, restore=restore, chunking=chunking, memory=memory
        )
        assert rec["ingest_batch_seconds"] == 0.2
        assert rec["restore_seconds"] == 0.025
        assert rec["chunking_mb_per_s"] == 60.0
        assert rec["peak_rss_mb"] == 160.0
        # every HISTORY_METRICS key is present
        assert set(HISTORY_METRICS) <= set(rec)

    def test_partial_inputs(self):
        rec = history_record(ingest={"batch_seconds": 0.3})
        assert rec["ingest_batch_seconds"] == 0.3
        assert "restore_seconds" not in rec

    def test_manifest_merged_first(self):
        rec = history_record(
            ingest={"batch_seconds": 0.1}, manifest={"commit": "abc", "seed": 1}
        )
        assert rec["commit"] == "abc"
        assert rec["ingest_batch_seconds"] == 0.1


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history({"a": 1}, path)
        append_history({"a": 2}, path)
        assert load_history(path) == [{"a": 1}, {"a": 2}]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "none.jsonl") == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        path.write_text('{"ok":1}\n{broken\n\n[1,2]\n{"ok":2}\n')
        assert load_history(path) == [{"ok": 1}, {"ok": 2}]

    def test_append_is_one_compact_line(self, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history({"x": 1, "y": [1, 2]}, path)
        line = path.read_text()
        assert line.endswith("\n") and line.count("\n") == 1
        assert json.loads(line) == {"x": 1, "y": [1, 2]}


class TestDriftSummary:
    def test_empty_history_no_lines(self):
        assert drift_summary({"ingest_batch_seconds": 0.2}, []) == []

    def test_steady_within_epsilon(self):
        lines = drift_summary(
            {"ingest_batch_seconds": 0.201},
            [{"ingest_batch_seconds": 0.2}],
        )
        assert len(lines) == 1
        assert "steady" in lines[0]

    def test_lower_seconds_is_improving(self):
        (line,) = drift_summary(
            {"ingest_batch_seconds": 0.1}, [{"ingest_batch_seconds": 0.2}]
        )
        assert "improving" in line

    def test_higher_seconds_is_regressing(self):
        (line,) = drift_summary(
            {"ingest_batch_seconds": 0.4}, [{"ingest_batch_seconds": 0.2}]
        )
        assert "regressing" in line

    def test_higher_throughput_is_improving(self):
        (line,) = drift_summary(
            {"chunking_mb_per_s": 80.0}, [{"chunking_mb_per_s": 60.0}]
        )
        assert "improving" in line

    def test_compares_against_most_recent_entry_with_metric(self):
        history = [
            {"chunking_mb_per_s": 10.0},
            {"ingest_batch_seconds": 0.2},  # no chunking number here
        ]
        (line,) = drift_summary({"chunking_mb_per_s": 30.0}, history)
        assert "10" in line and "improving" in line

    def test_committed_history_wellformed(self):
        """The repo ships a seeded BENCH_history.jsonl; every line must
        parse and carry at least one headline metric."""
        import pathlib

        import repro

        root = pathlib.Path(repro.__file__).resolve().parents[2]
        path = root / "BENCH_history.jsonl"
        if not path.is_file():
            import pytest

            pytest.skip("no committed history")
        records = load_history(path)
        assert records
        for record in records:
            assert any(record.get(k) is not None for k in HISTORY_METRICS)
