import numpy as np
import pytest

from repro._util import SimClock, derive_seed, rng_from


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_tag_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_tag_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concat_ambiguity(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_nonnegative_63bit(self):
        for s in range(20):
            v = derive_seed(s, "tag")
            assert 0 <= v < 2**63


class TestRngFrom:
    def test_streams_reproducible(self):
        a = rng_from(5, "x").integers(0, 1000, 10)
        b = rng_from(5, "x").integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        a = rng_from(5, "x").integers(0, 1000, 10)
        b = rng_from(5, "y").integers(0, 1000, 10)
        assert not np.array_equal(a, b)


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(3.0).now == 3.0

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == pytest.approx(2.0)

    def test_advance_returns_now(self):
        c = SimClock()
        assert c.advance(2.0) == pytest.approx(2.0)

    def test_elapsed_since(self):
        c = SimClock()
        t0 = c.now
        c.advance(4.0)
        assert c.elapsed_since(t0) == pytest.approx(4.0)

    def test_rejects_negative_advance(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1)
