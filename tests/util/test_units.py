import pytest

from repro._util import GIB, KIB, MIB, TIB, format_bytes, format_rate, format_seconds, parse_size


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds(self):
        assert parse_size(10.6) == 11

    def test_bare_number_string(self):
        assert parse_size("123") == 123

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1k", KIB),
            ("1K", KIB),
            ("4KiB", 4 * KIB),
            ("8kb", 8 * KIB),
            ("2m", 2 * MIB),
            ("2MiB", 2 * MIB),
            ("3g", 3 * GIB),
            ("1tb", TIB),
            ("0.5m", MIB // 2),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_size(text) == expected

    def test_whitespace_tolerated(self):
        assert parse_size("  2 MiB ") == 2 * MIB

    @pytest.mark.parametrize("bad", ["", "abc", "1x", "-5", "1..2k"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_size(bad)

    def test_rejects_negative_number(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            parse_size(True)


class TestFormatBytes:
    def test_bytes(self):
        assert format_bytes(512) == "512 B"

    def test_kib(self):
        assert format_bytes(2 * KIB) == "2.00 KiB"

    def test_mib(self):
        assert format_bytes(int(2.5 * MIB)) == "2.50 MiB"

    def test_gib_and_tib(self):
        assert format_bytes(GIB) == "1.00 GiB"
        assert format_bytes(3 * TIB) == "3.00 TiB"

    def test_negative(self):
        assert format_bytes(-MIB) == "-1.00 MiB"

    def test_rate_suffix(self):
        assert format_rate(MIB) == "1.00 MiB/s"


class TestFormatSeconds:
    def test_microseconds(self):
        assert format_seconds(5e-6) == "5 us"

    def test_milliseconds(self):
        assert format_seconds(0.25) == "250 ms"

    def test_seconds(self):
        assert format_seconds(1.5) == "1.50 s"

    def test_minutes(self):
        assert format_seconds(191) == "3 m 11 s"

    def test_negative_mirrors(self):
        assert format_seconds(-0.25) == "-250 ms"
