"""The chunking bench: measurement smoke + both regression gates.

The measurement itself runs on a tiny buffer (CI-cheap); the gate logic
is unit-tested against fabricated records so both failure modes — fresh
wall-clock regression and loss of the fast path's speed-over-exact
structure — have pinned messages.
"""

from repro.bench import (
    CHUNKING_BASELINE_FILENAME,
    CHUNKING_SPEEDUP_FLOOR,
    check_chunking_regression,
    chunking_fixture,
    load_chunking_baseline,
    measure_chunking,
    run_chunking_bench,
)

SMALL = 256 * 1024


class TestMeasurement:
    def test_fixture_deterministic(self):
        assert chunking_fixture(1024) == chunking_fixture(1024)
        assert chunking_fixture(1024, seed=1) != chunking_fixture(1024, seed=2)

    def test_measure_chunking_smoke(self):
        data = chunking_fixture(SMALL)
        result = measure_chunking(data, repeats=1)
        assert result["seconds"] > 0
        assert result["mb_per_s"] > 0
        assert result["n_chunks"] >= SMALL // (32 * 1024)  # >= at max_size
        assert 0 < result["scan_fraction"] <= 1

    def test_exact_scan_fraction_is_one(self):
        data = chunking_fixture(SMALL)
        result = measure_chunking(data, exact=True, repeats=1)
        assert result["scan_fraction"] == 1.0

    def test_run_chunking_bench_quick_record(self):
        record = run_chunking_bench(repeats=1, exact=False, nbytes=SMALL)
        for key in (
            "seqcdc_seconds",
            "seqcdc_mb_per_s",
            "n_chunks",
            "scan_fraction",
            "fingerprint_mb_per_s",
            "nbytes",
        ):
            assert key in record, key
        assert "exact_seconds" not in record  # quick mode skips the sweep

    def test_run_chunking_bench_exact_record(self):
        record = run_chunking_bench(repeats=1, exact=True, nbytes=SMALL)
        assert record["identical_cuts"] is True
        assert record["speedup"] > 1.0


class TestGates:
    BASELINE = {
        "chunking": {"seqcdc_seconds": 0.10, "exact_mb_per_s": 2.5}
    }

    @staticmethod
    def result(seconds=0.11, mb_per_s=60.0):
        return {"seqcdc_seconds": seconds, "seqcdc_mb_per_s": mb_per_s}

    def test_within_both_gates_passes(self):
        assert check_chunking_regression(self.result(), self.BASELINE) is None

    def test_wall_clock_regression_fails(self):
        msg = check_chunking_regression(self.result(seconds=0.30), self.BASELINE)
        assert msg is not None and "regressed" in msg

    def test_speedup_floor_fails(self):
        slow = self.result(mb_per_s=CHUNKING_SPEEDUP_FLOOR * 2.5 - 1)
        msg = check_chunking_regression(slow, self.BASELINE)
        assert msg is not None and "below" in msg

    def test_gates_tolerate_partial_baseline(self):
        """A baseline missing either field only runs the other gate."""
        assert (
            check_chunking_regression(
                self.result(seconds=99), {"chunking": {"exact_mb_per_s": 2.5}}
            )
            is None
        )
        assert (
            check_chunking_regression(
                self.result(mb_per_s=0.1),
                {"chunking": {"seqcdc_seconds": 0.10}},
            )
            is None
        )

    def test_unwrapped_record_accepted(self):
        """The gate accepts both the file record and its inner dict."""
        assert check_chunking_regression(self.result(), self.BASELINE["chunking"]) is None


class TestCommittedBaseline:
    def test_committed_baseline_loads_and_is_wellformed(self):
        baseline = load_chunking_baseline()
        if baseline is None:  # running outside the repo root
            import pathlib

            root = pathlib.Path(__file__).resolve().parents[2]
            baseline = load_chunking_baseline(root / CHUNKING_BASELINE_FILENAME)
        assert baseline is not None
        rec = baseline["chunking"]
        assert rec["seqcdc_seconds"] > 0
        assert rec["exact_mb_per_s"] > 0
        assert rec["identical_cuts"] is True
        assert rec["seqcdc_mb_per_s"] >= CHUNKING_SPEEDUP_FLOOR * rec["exact_mb_per_s"]
