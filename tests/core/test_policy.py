import pytest

from repro.core.policy import (
    AlwaysRewritePolicy,
    CappingPolicy,
    NeverRewritePolicy,
    SPLThresholdPolicy,
)
from repro.core.spl import spl_profile


def profile(shares, total=100):
    sids = []
    for sid, count in shares.items():
        sids.extend([sid] * count)
    return spl_profile(sids, segment_n_chunks=total)


class TestSPLThresholdPolicy:
    def test_paper_semantics(self):
        """Groups strictly below alpha*|Seg_m| are rewritten."""
        pol = SPLThresholdPolicy(alpha=0.1)
        d = pol.decide(profile({1: 50, 2: 9, 3: 10}, total=100))
        assert d.should_rewrite(2)  # 9 < 10
        assert not d.should_rewrite(3)  # 10 == alpha boundary: kept
        assert not d.should_rewrite(1)
        assert d.n_rewritten_segments == 1

    def test_alpha_zero_is_ddfs(self):
        pol = SPLThresholdPolicy(alpha=0.0)
        d = pol.decide(profile({1: 1, 2: 99}, total=100))
        assert d.rewrite_sids == frozenset()

    def test_alpha_one_rewrites_everything_partial(self):
        pol = SPLThresholdPolicy(alpha=1.0)
        d = pol.decide(profile({1: 50, 2: 50}, total=100))
        assert d.rewrite_sids == frozenset({1, 2})

    def test_full_cover_never_rewritten_at_alpha_below_one(self):
        pol = SPLThresholdPolicy(alpha=0.5)
        d = pol.decide(profile({1: 100}, total=100))
        assert not d.should_rewrite(1)

    def test_empty_profile(self):
        d = SPLThresholdPolicy(0.1).decide(profile({}))
        assert d.rewrite_sids == frozenset()

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            SPLThresholdPolicy(alpha=1.5)


class TestCappingPolicy:
    def test_keeps_top_k(self):
        pol = CappingPolicy(cap=2)
        d = pol.decide(profile({1: 40, 2: 30, 3: 20, 4: 5}, total=100))
        assert d.rewrite_sids == frozenset({3, 4})

    def test_under_cap_untouched(self):
        pol = CappingPolicy(cap=4)
        d = pol.decide(profile({1: 10, 2: 10}))
        assert d.rewrite_sids == frozenset()

    def test_tie_break_deterministic(self):
        pol = CappingPolicy(cap=1)
        d1 = pol.decide(profile({1: 10, 2: 10}))
        d2 = pol.decide(profile({1: 10, 2: 10}))
        assert d1.rewrite_sids == d2.rewrite_sids == frozenset({2})

    def test_cap_zero_rewrites_all(self):
        d = CappingPolicy(cap=0).decide(profile({1: 10, 2: 5}))
        assert d.rewrite_sids == frozenset({1, 2})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CappingPolicy(cap=-1)


class TestBoundPolicies:
    def test_never(self):
        d = NeverRewritePolicy().decide(profile({1: 1, 2: 1}))
        assert d.rewrite_sids == frozenset()

    def test_always(self):
        d = AlwaysRewritePolicy().decide(profile({1: 1, 2: 1}))
        assert d.rewrite_sids == frozenset({1, 2})
