import pytest

from repro.core.spl import SPLProfile, spl_profile


class TestSPLProfile:
    def test_full_cover_spl_one(self):
        p = spl_profile([7] * 10, segment_n_chunks=10)
        assert p.spl(7) == 1.0
        assert p.max_spl == 1.0
        assert p.duplicate_fraction == 1.0

    def test_partial_shares(self):
        p = spl_profile([1, 1, 2], segment_n_chunks=10)
        assert p.spl(1) == pytest.approx(0.2)
        assert p.spl(2) == pytest.approx(0.1)
        assert p.spl(99) == 0.0
        assert p.max_spl == pytest.approx(0.2)
        assert p.duplicate_fraction == pytest.approx(0.3)
        assert p.n_referenced_segments == 2

    def test_no_duplicates(self):
        p = spl_profile([], segment_n_chunks=10)
        assert p.max_spl == 0.0
        assert p.duplicate_fraction == 0.0
        assert p.n_referenced_segments == 0

    def test_items_pairs(self):
        p = spl_profile([1, 2, 2], segment_n_chunks=4)
        assert dict(p.items()) == {1: 0.25, 2: 0.5}

    def test_spl_bounds(self):
        p = spl_profile([3] * 5 + [4] * 5, segment_n_chunks=10)
        for _, v in p.items():
            assert 0.0 <= v <= 1.0

    def test_byte_weighted(self):
        p = spl_profile(
            [1, 2], segment_n_chunks=2, dup_weights=[900, 100], segment_nbytes=1000
        )
        assert p.spl(1) == pytest.approx(0.9)
        assert p.spl(2) == pytest.approx(0.1)

    def test_weights_require_nbytes(self):
        with pytest.raises(ValueError):
            spl_profile([1], 1, dup_weights=[10])
        with pytest.raises(ValueError):
            spl_profile([1], 1, segment_nbytes=100)

    def test_weights_length_check(self):
        with pytest.raises(ValueError):
            spl_profile([1, 2], 2, dup_weights=[10], segment_nbytes=100)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            spl_profile([1] * 11, segment_n_chunks=10)

    def test_zero_total_degenerate(self):
        p = SPLProfile(segment_total=0, shares={})
        assert p.spl(1) == 0.0
        assert p.max_spl == 0.0
