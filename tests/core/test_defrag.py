import numpy as np

from repro.core.defrag import DeFragEngine
from repro.core.policy import (
    AlwaysRewritePolicy,
    NeverRewritePolicy,
    SPLThresholdPolicy,
)
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.pipeline import run_backup, run_workload
from repro.storage.layout import analyze_recipe
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=256 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    return res


def defrag(policy=None, **kw):
    return DeFragEngine(
        fresh_resources(),
        policy=policy if policy is not None else SPLThresholdPolicy(0.1),
        bloom_capacity=100_000,
        cache_containers=8,
        **kw,
    )


def run_stream(engine, stream, segmenter, gen=0):
    return run_backup(engine, BackupJob(gen, "t", stream), segmenter)


class TestDeFragMechanics:
    def test_never_policy_matches_ddfs_exactly(self, segmenter, small_jobs):
        """With NeverRewritePolicy, DeFrag degrades to byte-identical DDFS."""
        defr = DeFragEngine(
            fresh_resources(), policy=NeverRewritePolicy(),
            bloom_capacity=100_000, cache_containers=8,
        )
        ddfs = DDFSEngine(fresh_resources(), bloom_capacity=100_000, cache_containers=8)
        ra = run_workload(defr, small_jobs, segmenter)
        rb = run_workload(ddfs, small_jobs, segmenter)
        for a, b in zip(ra, rb):
            assert a.written_new_bytes == b.written_new_bytes
            assert a.removed_dup_bytes == b.removed_dup_bytes
            assert a.rewritten_dup_bytes == 0
            assert np.array_equal(a.recipe.containers, b.recipe.containers)

    def test_alpha_zero_matches_ddfs(self, segmenter, small_jobs):
        defr = DeFragEngine(
            fresh_resources(), policy=SPLThresholdPolicy(0.0),
            bloom_capacity=100_000, cache_containers=8,
        )
        reports = run_workload(defr, small_jobs, segmenter)
        assert all(r.rewritten_dup_bytes == 0 for r in reports)

    def test_always_policy_rewrites_every_cross_segment_dup(self, segmenter):
        eng = DeFragEngine(
            fresh_resources(), policy=AlwaysRewritePolicy(),
            bloom_capacity=100_000, cache_containers=8,
        )
        s = make_stream(300, seed=1)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        # the repeat stream's duplicates live in other (gen-0) segments:
        # everything cross-segment is rewritten
        assert report.removed_dup_bytes == 0
        assert report.rewritten_dup_bytes == s.total_bytes

    def test_low_spl_sliver_rewritten(self, segmenter):
        """A stream whose second generation shares only a tiny sliver per
        segment rewrites that sliver under the paper's policy."""
        eng = defrag(SPLThresholdPolicy(0.3))
        gen0 = make_stream(400, seed=2)
        run_stream(eng, gen0, segmenter, 0)
        # gen1: mostly new chunks, with every 20th chunk reused from gen0
        fps = make_stream(400, seed=3).fps.copy()
        fps[::20] = gen0.fps[::20]
        from repro.chunking.base import ChunkStream

        gen1 = ChunkStream(fps, gen0.sizes)
        report = run_stream(eng, gen1, segmenter, 1)
        assert report.rewritten_dup_bytes > 0
        assert report.removed_dup_bytes < report.rewritten_dup_bytes

    def test_high_spl_kept(self, segmenter):
        """A fully repeated stream has SPL ~1 per segment: no rewrites."""
        eng = defrag(SPLThresholdPolicy(0.1))
        s = make_stream(400, seed=4)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert report.rewritten_dup_bytes <= 0.1 * s.total_bytes
        assert report.removed_dup_bytes >= 0.9 * s.total_bytes

    def test_rewrite_repoints_index(self, segmenter):
        eng = DeFragEngine(
            fresh_resources(), policy=AlwaysRewritePolicy(),
            bloom_capacity=100_000, cache_containers=8,
        )
        s = make_stream(100, seed=5)
        run_stream(eng, s, segmenter, 0)
        loc_before = {int(fp): eng.res.index.peek(int(fp)) for fp in s.fps[:10]}
        run_stream(eng, s, segmenter, 1)
        moved = sum(
            1 for fp, loc in loc_before.items() if eng.res.index.peek(fp) != loc
        )
        assert moved == len(loc_before)

    def test_rewrite_counters(self, segmenter):
        eng = DeFragEngine(
            fresh_resources(), policy=AlwaysRewritePolicy(),
            bloom_capacity=100_000, cache_containers=8,
        )
        s = make_stream(100, seed=6)
        run_stream(eng, s, segmenter, 0)
        run_stream(eng, s, segmenter, 1)
        assert eng.total_rewritten_chunks == 100
        assert eng.total_rewritten_bytes == s.total_bytes

    def test_byte_weighted_mode(self, segmenter):
        eng = defrag(SPLThresholdPolicy(0.1), byte_weighted_spl=True)
        s = make_stream(200, seed=7)
        run_stream(eng, s, segmenter, 0)
        report = run_stream(eng, s, segmenter, 1)
        assert (
            report.written_new_bytes
            + report.removed_dup_bytes
            + report.rewritten_dup_bytes
            == report.logical_bytes
        )


class TestDeFragOutcomes:
    def test_layout_no_worse_than_ddfs(self, segmenter, small_jobs):
        """DeFrag's recipes must be at most as fragmented as DDFS's."""
        defr = defrag()
        ddfs = DDFSEngine(fresh_resources(), bloom_capacity=100_000, cache_containers=8)
        ra = run_workload(defr, small_jobs, segmenter)
        rb = run_workload(ddfs, small_jobs, segmenter)
        frag_defrag = analyze_recipe(ra[-1].recipe).n_fragments
        frag_ddfs = analyze_recipe(rb[-1].recipe).n_fragments
        assert frag_defrag <= frag_ddfs

    def test_storage_overhead_bounded(self, segmenter, small_jobs):
        """Rewrites cost storage, but far less than disabling dedup."""
        defr = defrag()
        reports = run_workload(defr, small_jobs, segmenter)
        stored = sum(r.stored_bytes for r in reports)
        logical = sum(r.logical_bytes for r in reports)
        unique_floor = sum(r.written_new_bytes for r in reports)
        assert stored < logical  # still deduplicates
        assert stored >= unique_floor

    def test_efficiency_below_one_when_rewriting(self, segmenter):
        eng = defrag(SPLThresholdPolicy(0.5))
        from repro.dedup.pipeline import GroundTruth

        gt = GroundTruth()
        gen0 = make_stream(400, seed=8)
        run_backup(eng, BackupJob(0, "t", gen0), segmenter, gt)
        fps = make_stream(400, seed=9).fps.copy()
        fps[::4] = gen0.fps[::4]
        from repro.chunking.base import ChunkStream

        gen1 = ChunkStream(fps, gen0.sizes)
        r = run_backup(eng, BackupJob(1, "t", gen1), segmenter, gt)
        assert r.efficiency is not None and r.efficiency < 1.0
        # but nothing is *missed*: removed + rewritten == true duplicates
        assert r.missed_dup_bytes == 0
