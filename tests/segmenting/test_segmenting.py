import numpy as np
import pytest

from repro.chunking.base import ChunkStream
from repro.segmenting.blocks import Block, BlockBuilder, representative_fingerprint
from repro.segmenting.segmenter import ContentDefinedSegmenter, FixedSegmenter

from tests.conftest import make_stream


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


class TestContentDefinedSegmenter:
    def test_boundaries_cover_stream(self):
        s = make_stream(200)
        cuts = small_segmenter().boundaries(s)
        assert cuts[0] == 0
        assert cuts[-1] == len(s)
        assert (np.diff(cuts) > 0).all()

    def test_size_limits(self):
        s = make_stream(500, seed=3)
        segs = small_segmenter().split(s)
        for seg in segs[:-1]:
            assert 4096 <= seg.nbytes <= 16384 + 1024  # max + one chunk slack
        assert segs[-1].nbytes <= 16384 + 1024

    def test_empty_stream(self):
        assert small_segmenter().split(ChunkStream.empty()) == []

    def test_segments_are_views(self):
        s = make_stream(100)
        segs = small_segmenter().split(s)
        assert segs[0].fps.base is s.fps or segs[0].fps is s.fps

    def test_indices_contiguous(self):
        s = make_stream(300, seed=5)
        segs = small_segmenter().split(s)
        assert segs[0].start == 0
        for a, b in zip(segs, segs[1:]):
            assert a.stop == b.start
        assert segs[-1].stop == len(s)

    def test_content_defined_alignment(self):
        """Identical chunk runs segment identically regardless of what
        precedes them (after boundary re-sync)."""
        seg = small_segmenter()
        shared = make_stream(300, seed=7)
        prefix_a = make_stream(37, seed=8)
        prefix_b = make_stream(113, seed=9)
        sa = ChunkStream.concat([prefix_a, shared])
        sb = ChunkStream.concat([prefix_b, shared])
        cuts_a = {c - len(prefix_a) for c in seg.boundaries(sa).tolist() if c > len(prefix_a)}
        cuts_b = {c - len(prefix_b) for c in seg.boundaries(sb).tolist() if c > len(prefix_b)}
        inter = cuts_a & cuts_b
        assert len(inter) / max(len(cuts_a), 1) > 0.6

    def test_rejects_bad_limits(self):
        with pytest.raises(ValueError):
            ContentDefinedSegmenter(min_bytes=100, avg_bytes=50, max_bytes=200)

    def test_paper_defaults(self):
        s = ContentDefinedSegmenter()
        assert s.min_bytes == 512 * 1024
        assert s.max_bytes == 2 * 1024 * 1024


class TestFixedSegmenter:
    def test_cuts_by_bytes(self):
        s = make_stream(100, size=1000)
        segs = FixedSegmenter(target_bytes=10_000).split(s)
        assert len(segs) == 10
        assert all(seg.n_chunks == 10 for seg in segs)

    def test_empty(self):
        assert FixedSegmenter().split(ChunkStream.empty()) == []

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            FixedSegmenter(target_bytes=0)


class TestRepresentativeFingerprint:
    def test_is_min(self):
        fps = np.array([9, 2, 7], dtype=np.uint64)
        assert representative_fingerprint(fps) == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            representative_fingerprint(np.zeros(0, dtype=np.uint64))

    def test_similarity_property(self):
        """Shared min chunk -> same representative."""
        common = np.array([5, 100, 200], dtype=np.uint64)
        a = np.concatenate([common, np.array([900], dtype=np.uint64)])
        b = np.concatenate([common, np.array([800], dtype=np.uint64)])
        assert representative_fingerprint(a) == representative_fingerprint(b)


class TestBlockBuilder:
    def make_segment(self, n=10, seed=1):
        s = make_stream(n, seed=seed)
        from repro.segmenting.segmenter import Segment

        return Segment(index=0, start=0, fps=s.fps, sizes=s.sizes)

    def test_accumulates_and_seals(self):
        bb = BlockBuilder(block_bytes=4096)
        seg = self.make_segment(5)
        bid = bb.add_segment(seg, seg.fps, seg.nbytes)
        assert bid == 0
        assert bb.should_seal()  # 5 KiB >= 4 KiB
        block = bb.seal()
        assert isinstance(block, Block)
        assert block.bid == 0
        assert block.n_chunks == 5
        assert bb.current_bid == 1

    def test_seal_empty_returns_none(self):
        assert BlockBuilder().seal() is None

    def test_reps_recorded(self):
        bb = BlockBuilder(block_bytes=100_000)
        seg1 = self.make_segment(5, seed=1)
        seg2 = self.make_segment(5, seed=2)
        bb.add_segment(seg1, seg1.fps, seg1.nbytes)
        bb.add_segment(seg2, seg2.fps, seg2.nbytes)
        block = bb.seal()
        assert block.segment_reps.tolist() == [
            representative_fingerprint(seg1.fps),
            representative_fingerprint(seg2.fps),
        ]

    def test_written_fps_subset(self):
        """A dedup'd segment contributes no physical fps but still
        registers its representative."""
        bb = BlockBuilder(block_bytes=100_000)
        seg = self.make_segment(5)
        bb.add_segment(seg, np.zeros(0, dtype=np.uint64), 0)
        block = bb.seal()
        assert block.n_chunks == 0
        assert block.segment_reps.size == 1

    def test_metadata_bytes(self):
        bb = BlockBuilder(block_bytes=100_000)
        seg = self.make_segment(4)
        bb.add_segment(seg, seg.fps, seg.nbytes)
        block = bb.seal()
        assert block.metadata_bytes == 4 * 32
