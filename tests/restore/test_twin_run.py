"""Twin-run contract for the restore path: observability must be free.

Running the identical restore with a recording session active and with
the null session must produce identical :class:`RestoreStats` totals and
identical simulated elapsed time — recording never touches the disk
model or the clock. And the event stream must *replay*: summing the
per-restore events reproduces the registry's counters exactly.
"""

import dataclasses

import pytest

from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.obs import ListEventSink, Observability, obs_session
from repro.restore.reader import RestoreReader
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream
from repro.storage.store import StoreConfig


def build_store(segmenter, n_gens=3):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    eng = ExactEngine(res)
    reports = [
        run_backup(eng, BackupJob(g, "t", make_stream(250, seed=31 + g)), segmenter)
        for g in range(n_gens)
    ]
    return res, reports


def run_restores(segmenter, *, obs=None, **reader_kwargs):
    """Fresh ingest + restore of every generation; returns (stats, t)."""
    res, reports = build_store(segmenter)
    reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4), **reader_kwargs)
    t0 = res.disk.clock.now
    if obs is not None:
        with obs_session(obs):
            for r in reports:
                reader.restore(r.recipe)
    else:
        for r in reports:
            reader.restore(r.recipe)
    return reader.stats, res.disk.clock.now - t0


KWARG_GRID = [
    {},
    {"policy": "lfu"},
    {"policy": "belady", "faa_window": 256},
    {"faa_window": 128, "readahead": True},
    {"readahead": True},
]


class TestTwinRun:
    @pytest.mark.parametrize("kwargs", KWARG_GRID)
    def test_obs_on_off_identical_stats_and_simtime(self, segmenter, kwargs):
        off_stats, off_t = run_restores(segmenter, obs=None, **kwargs)
        obs = Observability(events=ListEventSink())
        on_stats, on_t = run_restores(segmenter, obs=obs, **kwargs)
        assert dataclasses.asdict(on_stats) == dataclasses.asdict(off_stats)
        assert on_t == off_t
        assert on_stats.restores == 3

    def test_event_stream_replays_registry_counters(self, segmenter):
        sink = ListEventSink()
        obs = Observability(events=sink)
        stats, _ = run_restores(
            segmenter, obs=obs, policy="lru", faa_window=64, readahead=True
        )
        events = sink.of_type("restore")
        assert len(events) == stats.restores
        for field in (
            "container_reads",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "seeks",
            "readahead_batches",
        ):
            replayed = sum(e[field] for e in events)
            assert replayed == obs.registry.get(f"restore.{field}").value
            assert replayed == getattr(stats, field)
        assert sum(e["logical_bytes"] for e in events) == stats.logical_bytes
        # one time-series sample per restored generation, keyed by sim time
        ts = obs.registry.get("restore.ts.seeks_per_mib")
        assert len(ts) == stats.restores
        assert ts.times() == sorted(ts.times())

    def test_evict_events_match_eviction_counter(self, segmenter):
        sink = ListEventSink()
        obs = Observability(events=sink)
        stats, _ = run_restores(segmenter, obs=obs)
        evicts = sink.of_type("restore_cache_evict")
        assert len(evicts) == stats.cache_evictions
        assert len(evicts) == obs.registry.get("restore.cache_evictions").value
        assert all(e["policy"] == "lru" for e in evicts)

    def test_seek_transfer_span_attribution(self, segmenter):
        obs = Observability(events=ListEventSink())
        stats, elapsed = run_restores(segmenter, obs=obs)
        seek_s = obs.registry.get("restore.phase.seek").sim_seconds
        transfer_s = obs.registry.get("restore.phase.transfer").sim_seconds
        read_s = obs.registry.get("restore.phase.read").sim_seconds
        # restore time decomposes exactly into positioning + transfer
        assert seek_s + transfer_s == pytest.approx(read_s)
        assert read_s == pytest.approx(stats.elapsed_seconds)
        assert seek_s == pytest.approx(stats.seeks * TEST_PROFILE.seek_time_s)

    def test_cumulative_stats_fold_reports(self, segmenter):
        res, reports = build_store(segmenter)
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        rrs = [reader.restore(r.recipe) for r in reports]
        assert reader.stats.restores == len(rrs)
        assert reader.stats.logical_bytes == sum(r.logical_bytes for r in rrs)
        assert reader.stats.seeks == sum(r.seeks for r in rrs)
        assert reader.stats.elapsed_seconds == pytest.approx(
            sum(r.elapsed_seconds for r in rrs)
        )
