"""Forward assembly area + read-ahead: plan semantics and seek savings.

The headline acceptance claim rides here: with the FAA and read-ahead
on, restoring the final (most fragmented) generation of the small-preset
author workload from the DDFS-Like layout prices at least 1.5x fewer
positionings than the default run-at-a-time reader.
"""

import pytest

from repro.api import create_engine, create_resources
from repro.dedup.pipeline import run_workload
from repro.experiments.common import paper_segmenter
from repro.experiments.config import ExperimentConfig
from repro.restore.faa import access_trace, plan_assembly
from repro.restore.reader import RestoreReader
from repro.storage.recipe import RecipeBuilder
from repro.workloads.generators import author_fs_20_full
from repro.storage.store import StoreConfig


def recipe_of(cids, size=512):
    """A recipe whose chunk i carries fingerprint i and lives in cids[i]."""
    b = RecipeBuilder(0)
    for i, cid in enumerate(cids):
        b.add(i + 1, size, cid)
    return b.finalize()


class TestPlanAssembly:
    def test_faa_off_one_window_per_run(self):
        r = recipe_of([5, 5, 7, 7, 7, 5])
        plan = plan_assembly(r, 0)
        assert [w.accesses for w in plan.windows] == [(5,), (7,), (5,)]
        assert plan.n_runs == 3
        assert plan.trace == [5, 7, 5]

    def test_window_dedups_interleaved_containers(self):
        # chunks alternate containers; one window sees each cid once
        r = recipe_of([1, 2, 1, 2, 1, 2])
        plan = plan_assembly(r, 6)
        assert len(plan.windows) == 1
        assert plan.windows[0].accesses == (1, 2)
        assert plan.n_runs == 6  # run count is window-independent

    def test_windows_partition_chunk_range(self):
        r = recipe_of([1, 2, 1, 3, 2, 1, 3])
        plan = plan_assembly(r, 3)
        assert [(w.chunk_start, w.chunk_stop) for w in plan.windows] == [
            (0, 3),
            (3, 6),
            (6, 7),
        ]
        assert plan.covers(r)

    def test_accesses_in_first_need_order(self):
        r = recipe_of([9, 3, 9, 1])
        plan = plan_assembly(r, 4)
        assert plan.windows[0].accesses == (9, 3, 1)

    def test_empty_recipe(self):
        plan = plan_assembly(RecipeBuilder(0).finalize(), 8)
        assert plan.windows == ()
        assert plan.n_runs == 0
        assert plan.covers(RecipeBuilder(0).finalize())

    def test_covers_detects_wrong_access_set(self):
        r = recipe_of([1, 2])
        plan = plan_assembly(r, 4)
        broken = recipe_of([1, 3])
        assert not plan.covers(broken)


class TestAccessTrace:
    def test_matches_plan_flattening(self):
        r = recipe_of([1, 2, 1, 3, 2, 1, 3, 3, 4])
        for window in (0, 1, 2, 3, 100):
            trace, window_ends, n_runs = access_trace(r, window)
            plan = plan_assembly(r, window)
            assert trace == plan.trace
            assert n_runs == plan.n_runs
            assert len(window_ends) == len(trace)

    def test_window_ends_mark_window_boundaries(self):
        r = recipe_of([1, 2, 3, 4])
        trace, window_ends, _ = access_trace(r, 2)
        # two windows of two accesses each
        assert trace == [1, 2, 3, 4]
        assert window_ends == [2, 2, 4, 4]

    def test_faa_off_is_run_sequence(self):
        r = recipe_of([5, 5, 7, 5])
        trace, window_ends, n_runs = access_trace(r, 0)
        assert trace == [5, 7, 5]
        assert window_ends == [1, 2, 3]
        assert n_runs == 3


class TestReadAheadBatching:
    def ingest(self, segmenter, cids=None):
        """Store with containers 0..3 holding a known layout."""
        from tests.conftest import TEST_PROFILE, make_stream
        from repro.dedup.base import EngineResources
        from repro.dedup.exact import ExactEngine
        from repro.dedup.pipeline import run_backup
        from repro.workloads.generators import BackupJob

        res = EngineResources.create(
            profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
        )
        res.store.seal_seeks = 0
        eng = ExactEngine(res)
        report = run_backup(eng, BackupJob(0, "t", make_stream(300, seed=11)), segmenter)
        return res, report

    def test_linear_recipe_batches_into_few_seeks(self, segmenter):
        res, report = self.ingest(segmenter)
        n_containers = report.recipe.unique_containers().size
        assert n_containers > 2
        base = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        faa = RestoreReader(
            res.store,
            config=StoreConfig(cache_containers=4),
            faa_window=report.recipe.n_chunks,
            readahead=True,
        ).restore(report.recipe)
        # a fresh linear backup is one sequential run of containers:
        # read-ahead collapses it into a single priced positioning
        assert faa.seeks == 1
        assert faa.readahead_batches == 1
        assert faa.container_reads == n_containers
        assert base.seeks == n_containers

    def test_restored_bytes_unaffected(self, segmenter):
        res, report = self.ingest(segmenter)
        base = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        faa = RestoreReader(
            res.store, config=StoreConfig(cache_containers=4), faa_window=128, readahead=True
        ).restore(report.recipe)
        assert faa.logical_bytes == base.logical_bytes
        assert faa.n_chunks == base.n_chunks

    def test_readahead_without_faa_uses_bounded_horizon(self, segmenter):
        res, report = self.ingest(segmenter)
        ra = RestoreReader(
            res.store, config=StoreConfig(cache_containers=4), readahead=True
        ).restore(report.recipe)
        base = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        assert ra.seeks <= base.seeks
        assert ra.logical_bytes == base.logical_bytes

    def test_faa_reduces_time_not_just_seeks(self, segmenter):
        res, report = self.ingest(segmenter)
        base = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        faa = RestoreReader(
            res.store,
            config=StoreConfig(cache_containers=4),
            faa_window=report.recipe.n_chunks,
            readahead=True,
        ).restore(report.recipe)
        assert faa.elapsed_seconds < base.elapsed_seconds
        assert faa.read_rate > base.read_rate

    def test_rejects_negative_window(self, segmenter):
        res, _ = self.ingest(segmenter)
        with pytest.raises(ValueError):
            RestoreReader(res.store, faa_window=-1)

    def test_rejects_unknown_policy(self, segmenter):
        res, _ = self.ingest(segmenter)
        with pytest.raises(ValueError):
            RestoreReader(res.store, policy="mru")


class TestSmallPresetSeekReduction:
    """The PR's acceptance claim on the fig6 quick preset."""

    @pytest.fixture(scope="class")
    def ddfs_final(self):
        config = ExperimentConfig.small()
        res = create_resources(config)
        eng = create_engine("DDFS-Like", config, res)
        jobs = author_fs_20_full(
            fs_bytes=config.fs_bytes,
            seed=config.seed,
            n_generations=config.n_generations,
            churn=config.churn_full,
        )
        reports = run_workload(eng, jobs, paper_segmenter())
        return res.store, reports[-1].recipe

    def test_faa_readahead_at_least_1_5x_fewer_seeks(self, ddfs_final):
        store, recipe = ddfs_final
        base = RestoreReader(store, config=StoreConfig(cache_containers=4)).restore(recipe)
        faa = RestoreReader(
            store, config=StoreConfig(cache_containers=4), faa_window=2048, readahead=True
        ).restore(recipe)
        assert faa.logical_bytes == base.logical_bytes
        assert base.seeks >= 1.5 * faa.seeks, (
            f"expected >=1.5x fewer priced seeks, got {base.seeks} -> {faa.seeks}"
        )
