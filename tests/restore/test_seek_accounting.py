"""Pin the seek accounting to Eq. 1's N.

Eq. 1 prices one positioning per fragment the disk must reposition to.
Operationally that is exactly a distinct *uncached* container visit:
cache hits price nothing, every miss prices one positioning, and a
read-ahead batch prices a single positioning for its whole sequential
run. These tests pin that accounting for both ``restore`` and
``restore_file`` against the disk model's own positioning counter.
"""

import pytest

from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.restore.reader import RestoreReader
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream
from repro.storage.store import StoreConfig


@pytest.fixture
def ingested(segmenter):
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    eng = ExactEngine(res)
    r0 = run_backup(eng, BackupJob(0, "t", make_stream(300, seed=21)), segmenter)
    r1 = run_backup(eng, BackupJob(1, "t", make_stream(300, seed=21)), segmenter)
    return res, r0, r1


class TestSeeksAreUncachedVisits:
    def test_readahead_off_seeks_equal_misses_equal_reads(self, ingested):
        res, r0, _ = ingested
        for policy in ("lru", "lfu", "belady"):
            rr = RestoreReader(
                res.store, config=StoreConfig(cache_containers=4), policy=policy
            ).restore(r0.recipe)
            assert rr.seeks == rr.cache_misses == rr.container_reads

    def test_seeks_match_disk_positionings(self, ingested):
        res, r0, _ = ingested
        before = res.disk.stats.snapshot()
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(r0.recipe)
        delta = res.disk.stats.delta_since(before)
        assert delta.seeks == rr.seeks

    def test_readahead_batch_prices_one_positioning(self, ingested):
        res, r0, _ = ingested
        before = res.disk.stats.snapshot()
        rr = RestoreReader(
            res.store,
            config=StoreConfig(cache_containers=4),
            faa_window=r0.recipe.n_chunks,
            readahead=True,
        ).restore(r0.recipe)
        delta = res.disk.stats.delta_since(before)
        assert delta.seeks == rr.seeks
        assert rr.seeks < rr.container_reads  # batching actually happened
        # even with read-ahead, every positioning is a demand miss; the
        # prefetched containers ride the same positioning for free
        assert rr.seeks == rr.cache_misses

    def test_each_restore_builds_a_fresh_client_cache(self, ingested):
        res, r0, _ = ingested
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=64))
        n_containers = r0.recipe.unique_containers().size
        first = reader.restore(r0.recipe)
        assert first.seeks == n_containers
        # the client cache does not persist across restores: the second
        # pass re-prices every distinct container visit
        second = reader.restore(r0.recipe)
        assert second.seeks == n_containers

    def test_cache_hit_prices_nothing(self, ingested):
        """A recipe revisiting a cached container adds no positioning."""
        res, r0, _ = ingested
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=64)).restore(r0.recipe)
        assert rr.cache_hits == rr.n_runs - rr.container_reads
        assert rr.seeks == rr.container_reads

    def test_eq1_uses_priced_seeks(self, ingested):
        from repro.restore.model import read_time_eq1

        res, r0, _ = ingested
        rr = RestoreReader(
            res.store,
            config=StoreConfig(cache_containers=4),
            faa_window=r0.recipe.n_chunks,
            readahead=True,
        ).restore(r0.recipe)
        assert rr.eq1_seconds == pytest.approx(
            read_time_eq1(rr.seeks, rr.logical_bytes, res.disk.profile)
        )


class TestRestoreFileAccounting:
    def test_file_extent_seeks_are_distinct_uncached_visits(self, ingested):
        res, r0, _ = ingested
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        n = r0.recipe.n_chunks
        rr = reader.restore_file(r0.recipe, n // 4, n // 2)
        assert rr.seeks == rr.cache_misses == rr.container_reads

    def test_single_container_file_is_one_seek(self, ingested):
        res, r0, _ = ingested
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore_file(
            r0.recipe, 0, 1
        )
        assert rr.seeks == 1
        assert rr.container_reads == 1

    def test_out_of_bounds_extent_rejected(self, ingested):
        res, r0, _ = ingested
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        with pytest.raises(ValueError):
            reader.restore_file(r0.recipe, 0, r0.recipe.n_chunks + 1)
        with pytest.raises(ValueError):
            reader.restore_file(r0.recipe, -1, 1)


class TestStoreRunReads:
    def test_run_read_is_one_seek_total_transfer(self, ingested):
        res, r0, _ = ingested
        cids = sorted(int(c) for c in r0.recipe.unique_containers())[:3]
        assert cids == list(range(cids[0], cids[0] + 3))
        before = res.disk.stats.snapshot()
        sealed = res.store.read_container_run(cids)
        delta = res.disk.stats.delta_since(before)
        assert delta.seeks == 1
        assert len(sealed) == 3
        assert delta.bytes_read == sum(
            s.data_bytes + s.metadata_bytes for s in sealed
        )
        assert res.store.stats.batched_reads == 1

    def test_run_read_rejects_gaps(self, ingested):
        res, r0, _ = ingested
        cids = sorted(int(c) for c in r0.recipe.unique_containers())
        with pytest.raises(ValueError):
            res.store.read_container_run([cids[0], cids[0] + 2])
        with pytest.raises(ValueError):
            res.store.read_container_run([])
