"""File-level restore: the paper's Fig. 1 / Eq. 1 per-file scenario."""

from repro._util import MIB
from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.restore.reader import RestoreReader
from repro.workloads.fs_model import ChurnProfile, FileSystemModel
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
    )
    res.store.seal_seeks = 0
    return res


class TestFileExtents:
    def test_extents_cover_stream(self):
        fs = FileSystemModel(seed=1, initial_bytes=MIB)
        extents = fs.file_extents()
        stream = fs.full_backup()
        assert extents[0][1] == 0
        covered = sum(n for _, _, n in extents)
        assert covered == len(stream)
        # extents are contiguous in stream order
        pos = 0
        for _, start, n in extents:
            assert start == pos
            pos += n

    def test_extents_track_evolution(self):
        fs = FileSystemModel(
            seed=1, initial_bytes=MIB,
            churn=ChurnProfile(modify_frac=0.5, insert_prob=0.5, delete_prob=0.0),
        )
        before = fs.file_extents()
        fs.evolve()
        after = fs.file_extents()
        assert sum(n for _, _, n in after) == len(fs.full_backup())
        assert before != after


class TestRestoreFile:
    def test_file_restore_returns_file_bytes(self, segmenter):
        fs = FileSystemModel(seed=2, initial_bytes=2 * MIB)
        stream = fs.full_backup()
        extents = fs.file_extents()
        res = fresh_resources()
        eng = ExactEngine(res)
        report = run_backup(eng, BackupJob(0, "t", stream), segmenter)
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        fid, start, n = extents[len(extents) // 2]
        rr = reader.restore_file(report.recipe, start, n)
        expected = int(stream.sizes[start : start + n].sum())
        assert rr.logical_bytes == expected
        assert rr.n_chunks == n

    def test_fragmented_file_needs_more_reads(self, segmenter):
        """A file whose chunks dedup against two earlier generations needs
        more container reads than a freshly written one."""
        fs = FileSystemModel(
            seed=3, initial_bytes=2 * MIB,
            churn=ChurnProfile(modify_frac=0.6, edits_per_file_mean=5.0),
        )
        res = fresh_resources()
        eng = ExactEngine(res)
        report0 = run_backup(eng, BackupJob(0, "t", fs.full_backup()), segmenter)
        fs.evolve()
        report1 = run_backup(eng, BackupJob(1, "t", fs.full_backup()), segmenter)
        extents = fs.file_extents()
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=2))
        # pick the file with the most chunks (most likely edited)
        fid, start, n = max(extents, key=lambda e: e[2])
        rr0 = reader.restore_file(report0.recipe, 0, min(n, report0.recipe.n_chunks))
        rr1 = reader.restore_file(report1.recipe, start, n)
        assert rr1.container_reads >= 1
        assert rr1.logical_bytes > 0

    def test_eq1_consistency_per_file(self, segmenter):
        fs = FileSystemModel(seed=4, initial_bytes=MIB)
        res = fresh_resources()
        eng = ExactEngine(res)
        report = run_backup(eng, BackupJob(0, "t", fs.full_backup()), segmenter)
        reader = RestoreReader(res.store, config=StoreConfig(cache_containers=4))
        fid, start, n = fs.file_extents()[0]
        rr = reader.restore_file(report.recipe, start, n)
        assert rr.eq1_seconds > 0
        assert rr.elapsed_seconds > 0
