"""``restore_file`` extent validation (was: silent clamping by the slice)."""

import pytest

from repro.restore.reader import RestoreReader
from repro.storage.disk import DiskModel
from repro.storage.recipe import RecipeBuilder
from repro.storage.store import ContainerStore, StoreConfig

from tests.conftest import TEST_PROFILE


@pytest.fixture
def store_and_recipe():
    store = ContainerStore(
        DiskModel(profile=TEST_PROFILE),
        config=StoreConfig(container_bytes=64 * 1024, seal_seeks=0),
    )
    builder = RecipeBuilder(generation=0)
    for fp in range(10):
        cid = store.append(fp, 1024)
        builder.add(fp, 1024, cid)
    store.flush()
    return store, builder.finalize()


def test_valid_extent_restores(store_and_recipe):
    store, recipe = store_and_recipe
    report = RestoreReader(store).restore_file(recipe, 2, 5)
    assert report.logical_bytes == 5 * 1024


def test_full_extent_restores(store_and_recipe):
    store, recipe = store_and_recipe
    report = RestoreReader(store).restore_file(recipe, 0, recipe.n_chunks)
    assert report.logical_bytes == recipe.total_bytes


@pytest.mark.parametrize(
    "start,n_chunks",
    [(-1, 3), (0, -1), (8, 3), (0, 11), (10, 1), (100, 0)],
)
def test_out_of_bounds_extent_raises(store_and_recipe, start, n_chunks):
    store, recipe = store_and_recipe
    with pytest.raises(ValueError, match="out of bounds"):
        RestoreReader(store).restore_file(recipe, start, n_chunks)
