"""Unit tests for the pluggable restore-cache policies."""

import pytest

from repro.restore.cache import (
    RESTORE_POLICIES,
    BeladyCache,
    LFUCache,
    LRUCache,
    make_cache,
)


def drive(cache, trace):
    """Run a demand-only trace through a cache; returns miss positions."""
    misses = []
    for pos, cid in enumerate(trace):
        if not cache.access(cid, pos):
            misses.append(pos)
            cache.admit(cid, pos)
    return misses


class TestLRU:
    def test_evicts_least_recent(self):
        c = LRUCache(2)
        drive(c, [1, 2, 1, 3])  # 2 is LRU when 3 arrives
        assert 1 in c and 3 in c and 2 not in c

    def test_hit_refreshes_recency(self):
        c = LRUCache(2)
        drive(c, [1, 2, 1])
        c.access(3, 3)
        c.admit(3, 3)
        assert 2 not in c and 1 in c

    def test_stats(self):
        c = LRUCache(4)
        drive(c, [1, 2, 1, 1, 3])
        assert c.stats.misses == 3
        assert c.stats.hits == 2
        assert c.stats.accesses == 5
        assert c.stats.hit_rate == pytest.approx(0.4)


class TestLFU:
    def test_evicts_least_frequent(self):
        c = LFUCache(2)
        drive(c, [1, 1, 1, 2, 3])  # 2 has freq 1, 1 has freq 3
        assert 1 in c and 3 in c and 2 not in c

    def test_frequency_tie_breaks_lru(self):
        c = LFUCache(2)
        drive(c, [1, 2, 3])  # 1 and 2 both freq 1; 1 is older
        assert 2 in c and 3 in c and 1 not in c


class TestBelady:
    def test_evicts_farthest_future_use(self):
        trace = [1, 2, 3, 1, 2]  # at pos 2, 3 is never used again
        c = BeladyCache(2, trace)
        drive(c, trace[:2])
        c.access(3, 2)
        c.admit(3, 2)
        # victim must be the one referenced farthest ahead: 2 (pos 4)
        # vs 1 (pos 3) -> evict 2
        assert 1 in c and 3 in c and 2 not in c

    def test_never_again_evicted_first(self):
        trace = [1, 2, 3, 1]
        c = BeladyCache(2, trace)
        drive(c, trace)
        assert 1 in c  # re-referenced at pos 3, kept

    def test_optimal_on_classic_lru_pathology(self):
        # cyclic scan over capacity+1 items: LRU misses every access,
        # Belady does not
        trace = [1, 2, 3] * 4
        lru, opt = LRUCache(2), BeladyCache(2, trace)
        drive(lru, trace)
        drive(opt, trace)
        assert opt.stats.misses < lru.stats.misses
        assert lru.stats.misses == len(trace)


class TestContract:
    def test_admit_resident_refreshes_not_duplicates(self):
        c = LRUCache(2)
        drive(c, [1, 2])
        c.admit(1, 2)  # read-ahead re-admitting a resident cid
        assert len(c._order) == 2
        c.access(3, 3)
        c.admit(3, 3)
        assert 2 not in c  # the refresh made 1 the most recent

    def test_on_evict_callback_sees_every_victim(self):
        evicted = []
        c = LRUCache(1)
        c.on_evict = evicted.append
        drive(c, [1, 2, 3])
        assert evicted == [1, 2]
        assert c.stats.evictions == 2

    def test_rejects_nonpositive_capacity(self):
        for cls in (LRUCache, LFUCache):
            with pytest.raises(ValueError):
                cls(0)
        with pytest.raises(ValueError):
            BeladyCache(0, [])


class TestMakeCache:
    def test_builds_each_policy(self):
        assert isinstance(make_cache("lru", 4), LRUCache)
        assert isinstance(make_cache("lfu", 4), LFUCache)
        assert isinstance(make_cache("belady", 4, trace=[1, 2]), BeladyCache)

    def test_policy_names_registered(self):
        assert RESTORE_POLICIES == ("lru", "lfu", "belady")

    def test_belady_needs_trace(self):
        with pytest.raises(ValueError):
            make_cache("belady", 4)

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            make_cache("mru", 4)
