import pytest

from repro.dedup.base import EngineResources
from repro.dedup.exact import ExactEngine
from repro.dedup.pipeline import run_backup
from repro.restore.model import read_rate_eq1, read_time_eq1
from repro.restore.reader import RestoreReader
from repro.storage.disk import DiskProfile, HDD_2012
from repro.workloads.generators import BackupJob

from tests.conftest import TEST_PROFILE, make_stream
from repro.storage.store import StoreConfig


def ingest(stream, segmenter, gen=0, res=None):
    if res is None:
        res = EngineResources.create(
            profile=TEST_PROFILE, container_bytes=64 * 1024, expected_entries=100_000
        )
        res.store.seal_seeks = 0
    eng = ExactEngine(res)
    report = run_backup(eng, BackupJob(gen, "t", stream), segmenter)
    return res, report


class TestEq1Model:
    def test_formula(self):
        p = DiskProfile("p", 0.01, 100e6)
        assert read_time_eq1(10, 100e6, p) == pytest.approx(1.1)

    def test_single_fragment_floor(self):
        p = HDD_2012
        t1 = read_time_eq1(1, 10**9, p)
        tN = read_time_eq1(1000, 10**9, p)
        assert tN > t1

    def test_n_times_slowdown_seek_dominated(self):
        """The paper's claim: an N-fragment small file reads ~N x slower."""
        p = HDD_2012
        small = 64 * 1024  # transfer time negligible vs seeks
        ratio = read_time_eq1(20, small, p) / read_time_eq1(1, small, p)
        assert 15 < ratio <= 20.5

    def test_rate_inverse(self):
        p = HDD_2012
        assert read_rate_eq1(1, 10**8, p) == pytest.approx(
            10**8 / read_time_eq1(1, 10**8, p)
        )

    def test_zero_fragments_pure_streaming(self):
        p = DiskProfile("p", 0.01, 100e6)
        assert read_time_eq1(0, 100e6, p) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            read_time_eq1(-1, 100)


class TestRestoreReader:
    def test_restores_full_byte_count(self, segmenter):
        s = make_stream(200, seed=1)
        res, report = ingest(s, segmenter)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        assert rr.logical_bytes == s.total_bytes
        assert rr.n_chunks == 200

    def test_linear_recipe_one_read_per_container(self, segmenter):
        s = make_stream(200, seed=2)
        res, report = ingest(s, segmenter)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        assert rr.container_reads == report.recipe.unique_containers().size
        assert rr.cache_hits == rr.n_runs - rr.container_reads

    def test_dedup_recipe_needs_scattered_reads(self, segmenter):
        """Second-generation recipe references gen-0 containers."""
        s = make_stream(300, seed=3)
        res, r0 = ingest(s, segmenter)
        eng = ExactEngine(res)
        r1 = run_backup(eng, BackupJob(1, "t", s), segmenter)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(r1.recipe)
        assert rr.read_rate > 0
        assert set(r1.recipe.unique_containers()) == set(r0.recipe.unique_containers())

    def test_elapsed_matches_disk_charges(self, segmenter):
        s = make_stream(100, seed=4)
        res, report = ingest(s, segmenter)
        t0 = res.disk.clock.now
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        assert res.disk.clock.now - t0 == pytest.approx(rr.elapsed_seconds)
        assert rr.elapsed_seconds > 0

    def test_cache_prevents_rereads(self, segmenter):
        """A recipe alternating between two containers within cache reach
        reads each container once."""
        s = make_stream(100, seed=5)
        res, report = ingest(s, segmenter)
        big_cache = RestoreReader(res.store, config=StoreConfig(cache_containers=64)).restore(report.recipe)
        assert big_cache.container_reads == report.recipe.unique_containers().size

    def test_eq1_estimate_close_to_operational(self, segmenter):
        s = make_stream(300, seed=6)
        res, report = ingest(s, segmenter)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        # Eq.1 with N = container reads should be within 2x (payload
        # transfer includes metadata + full containers vs logical bytes)
        assert rr.eq1_seconds <= rr.elapsed_seconds * 1.5
        assert rr.elapsed_seconds <= rr.eq1_seconds * 3.0

    def test_empty_recipe(self, segmenter):
        from repro.storage.recipe import RecipeBuilder

        res, _ = ingest(make_stream(10), segmenter)
        rr = RestoreReader(res.store).restore(RecipeBuilder(0).finalize())
        assert rr.container_reads == 0
        assert rr.read_rate == 0.0

    def test_seeks_per_mib(self, segmenter):
        s = make_stream(200, seed=7)
        res, report = ingest(s, segmenter)
        rr = RestoreReader(res.store, config=StoreConfig(cache_containers=4)).restore(report.recipe)
        assert rr.seeks_per_mib > 0

    def test_rejects_bad_cache(self, segmenter):
        res, _ = ingest(make_stream(10), segmenter)
        with pytest.raises(ValueError):
            RestoreReader(res.store, config=StoreConfig(cache_containers=0))
