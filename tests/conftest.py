"""Shared fixtures: small, fast engine/workload setups."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util import MIB
from repro.chunking.base import ChunkStream
from repro.chunking.fingerprint import splitmix64_array
from repro.dedup.base import CostModel, EngineResources
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.disk import DiskModel, DiskProfile
from repro.workloads.fs_model import ChurnProfile
from repro.workloads.generators import author_fs_20_full


TEST_PROFILE = DiskProfile(name="test-disk", seek_time_s=5e-3, seq_bandwidth=200e6)


@pytest.fixture
def disk() -> DiskModel:
    return DiskModel(profile=TEST_PROFILE)


@pytest.fixture
def resources() -> EngineResources:
    """Small resources: 256 KiB containers so tests exercise sealing."""
    res = EngineResources.create(
        profile=TEST_PROFILE,
        container_bytes=256 * 1024,
        expected_entries=100_000,
        index_page_cache_pages=8,
    )
    res.store.seal_seeks = 0
    return res


@pytest.fixture
def segmenter() -> ContentDefinedSegmenter:
    """Segments scaled to the small test streams (16-64 KiB)."""
    return ContentDefinedSegmenter(
        min_bytes=16 * 1024,
        avg_bytes=32 * 1024,
        max_bytes=64 * 1024,
        avg_chunk_bytes=1024,
    )


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel()


def make_stream(n: int, seed: int = 7, size: int = 1024) -> ChunkStream:
    """A stream of n distinct chunks (deterministic per seed)."""
    base = np.arange(n, dtype=np.uint64) + np.uint64(seed * 1_000_003)
    return ChunkStream(splitmix64_array(base), np.full(n, size, dtype=np.uint32))


@pytest.fixture
def small_jobs():
    """A tiny 5-generation full-backup workload."""
    churn = ChurnProfile(modify_frac=0.2, edits_per_file_mean=3.0)
    return list(
        author_fs_20_full(fs_bytes=2 * MIB, seed=42, n_generations=5, churn=churn)
    )
