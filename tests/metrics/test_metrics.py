import pytest

from repro.dedup.base import BackupReport, SegmentOutcome
from repro.metrics.efficiency import (
    cumulative_efficiency,
    efficiency_series,
    kept_redundancy_fraction,
    partial_segment_efficiency,
)
from repro.metrics.fragmentation import fragmentation_series, locality_series
from repro.metrics.storage import compression_ratio, storage_summary
from repro.metrics.throughput import mean_throughput, throughput_series
from repro.storage.disk import DiskStats
from repro.storage.recipe import RecipeBuilder


def report(
    gen=0,
    logical=1000,
    written=1000,
    removed=0,
    rewritten=0,
    elapsed=1.0,
    true_dup=None,
    segments=None,
    seg_true=None,
    seg_fully=None,
    extras=None,
    cids=None,
):
    b = RecipeBuilder(gen)
    n = max(logical // 100, 1)
    cids = cids if cids is not None else [0] * n
    for i in range(n):
        b.add(i, logical // n, cids[i % len(cids)])
    r = BackupReport(
        generation=gen,
        label="t",
        n_chunks=n,
        logical_bytes=logical,
        written_new_bytes=written,
        removed_dup_bytes=removed,
        rewritten_dup_bytes=rewritten,
        elapsed_seconds=elapsed,
        recipe=b.finalize(),
        disk_delta=DiskStats(),
        segments=segments or [],
    )
    r.true_dup_bytes = true_dup
    r.seg_true_dup_bytes = seg_true
    r.seg_fully_dup = seg_fully
    if extras:
        r.extras.update(extras)
    return r


class TestThroughput:
    def test_series(self):
        rs = [report(logical=1000, elapsed=2.0), report(logical=3000, elapsed=1.0)]
        assert throughput_series(rs) == [500.0, 3000.0]

    def test_mean_weighted_by_bytes(self):
        rs = [report(logical=1000, elapsed=1.0), report(logical=9000, elapsed=1.0)]
        assert mean_throughput(rs) == pytest.approx(5000.0)

    def test_mean_empty(self):
        assert mean_throughput([]) == 0.0


class TestEfficiency:
    def test_series_requires_truth(self):
        with pytest.raises(ValueError):
            efficiency_series([report()])

    def test_per_gen(self):
        rs = [report(removed=80, true_dup=100), report(removed=100, true_dup=100)]
        assert efficiency_series(rs) == [0.8, 1.0]

    def test_no_redundancy_counts_as_perfect(self):
        assert efficiency_series([report(removed=0, true_dup=0)]) == [1.0]

    def test_cumulative(self):
        rs = [report(removed=50, true_dup=100), report(removed=100, true_dup=100)]
        assert cumulative_efficiency(rs) == [0.5, 0.75]

    def test_kept_fraction_complements(self):
        rs = [report(removed=50, true_dup=100)]
        assert kept_redundancy_fraction(rs) == [0.5]

    def test_partial_segment_accounting(self):
        seg_full = SegmentOutcome(index=0, n_chunks=10, nbytes=100, removed_dup=100)
        seg_part = SegmentOutcome(
            index=1, n_chunks=10, nbytes=100, written_new=60, removed_dup=40
        )
        seg_new = SegmentOutcome(index=2, n_chunks=10, nbytes=100, written_new=100)
        r = report(
            removed=140,
            true_dup=150,
            segments=[seg_full, seg_part, seg_new],
            seg_true=[100, 50, 0],
            seg_fully=[True, False, False],
        )
        # only the partial segment counts: removed 40 of true 50
        assert partial_segment_efficiency([r]) == [pytest.approx(0.8)]

    def test_partial_requires_segment_truth(self):
        with pytest.raises(ValueError):
            partial_segment_efficiency([report(true_dup=10)])


class TestStorage:
    def test_summary(self):
        rs = [
            report(logical=1000, written=1000),
            report(logical=1000, written=100, removed=800, rewritten=100),
        ]
        s = storage_summary(rs)
        assert s.logical_bytes == 2000
        assert s.stored_bytes == 1200
        assert s.removed_bytes == 800
        assert s.rewritten_bytes == 100
        assert s.compression_ratio == pytest.approx(2000 / 1200)
        assert s.rewrite_overhead == pytest.approx(100 / 1200)
        assert compression_ratio(rs) == s.compression_ratio


class TestFragmentationSeries:
    def test_fragmentation(self):
        r = report(cids=[0, 1, 2])
        series = fragmentation_series([r])
        assert series[0] > 0

    def test_locality_requires_extras(self):
        with pytest.raises(ValueError):
            locality_series([report()])

    def test_locality_reads_extras(self):
        r = report(extras={"hits_per_prefetch": 42.0})
        assert locality_series([r]) == [42.0]


class TestReportProperties:
    def test_dedup_ratio(self):
        r = report(logical=1000, written=250)
        assert r.dedup_ratio == 4.0

    def test_missed_dup_bytes(self):
        r = report(removed=70, rewritten=10, true_dup=100)
        assert r.missed_dup_bytes == 20

    def test_efficiency_none_without_truth(self):
        assert report().efficiency is None

    def test_summary_string(self):
        s = report(true_dup=10, removed=10).summary()
        assert "gen" in s and "MiB" in s
