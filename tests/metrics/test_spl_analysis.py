import pytest

from repro.metrics.spl_analysis import (
    max_share_histogram,
    mean_containers_per_segment,
    segment_share_profiles,
)
from repro.storage.recipe import RecipeBuilder


def recipe_from_cids(cids):
    b = RecipeBuilder(0)
    for i, c in enumerate(cids):
        b.add(i, 100, c)
    return b.finalize()


class TestShareProfiles:
    def test_single_container_segment(self):
        r = recipe_from_cids([5] * 10)
        profiles = segment_share_profiles(r, [0, 10])
        assert len(profiles) == 1
        assert profiles[0].max_share == 1.0
        assert profiles[0].n_containers == 1

    def test_split_segment(self):
        r = recipe_from_cids([1] * 6 + [2] * 4)
        (p,) = segment_share_profiles(r, [0, 10])
        assert p.max_share == pytest.approx(0.6)
        assert p.shares.tolist() == pytest.approx([0.6, 0.4])

    def test_shares_sum_to_one(self):
        r = recipe_from_cids([1, 2, 3, 1, 2, 1])
        (p,) = segment_share_profiles(r, [0, 6])
        assert p.shares.sum() == pytest.approx(1.0)

    def test_multiple_segments(self):
        r = recipe_from_cids([1] * 5 + [2] * 5)
        profiles = segment_share_profiles(r, [0, 5, 10])
        assert len(profiles) == 2
        assert all(p.max_share == 1.0 for p in profiles)

    def test_empty_recipe(self):
        r = RecipeBuilder(0).finalize()
        assert segment_share_profiles(r, [0]) == []


class TestAggregates:
    def test_histogram_counts_segments(self):
        r = recipe_from_cids([1] * 5 + [2] * 5)
        profiles = segment_share_profiles(r, [0, 5, 10])
        hist = max_share_histogram(profiles, bins=10)
        assert hist.sum() == 2
        assert hist[-1] == 2  # both segments perfectly linear

    def test_histogram_shift_with_fragmentation(self):
        linear = segment_share_profiles(recipe_from_cids([1] * 10), [0, 10])
        scattered = segment_share_profiles(recipe_from_cids(list(range(10))), [0, 10])
        h_lin = max_share_histogram(linear, bins=10)
        h_sca = max_share_histogram(scattered, bins=10)
        assert h_lin[-1] == 1
        # max share 0.1 lands at the bottom of the histogram (bin edge
        # semantics put the value 0.1 in the [0.1, 0.2) bin)
        assert h_sca[:2].sum() == 1
        assert h_sca[-1] == 0

    def test_histogram_empty(self):
        assert max_share_histogram([], bins=5).tolist() == [0] * 5

    def test_mean_containers(self):
        r = recipe_from_cids([1] * 5 + [2, 3, 4, 5, 6])
        profiles = segment_share_profiles(r, [0, 5, 10])
        assert mean_containers_per_segment(profiles) == pytest.approx(3.0)

    def test_mean_containers_empty(self):
        assert mean_containers_per_segment([]) == 0.0
