"""Integration: engines recording into an observability session.

Covers the tentpole invariants: per-segment phase attribution partitions
the simulated clock exactly, DeFrag emits one decision event per
referenced stored segment (rewrites iff SPL < alpha under the threshold
policy), cache evictions and restores are traced, and a disabled session
records nothing at all (the zero-overhead contract).
"""

import pytest

from repro.core.defrag import DeFragEngine
from repro.core.policy import SPLThresholdPolicy
from repro.dedup.base import EngineResources
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.pipeline import run_workload
from repro.obs import (
    ListEventSink,
    NULL_OBS,
    Observability,
    get_active,
    obs_session,
)
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.workloads.generators import single_user_incrementals

from tests.conftest import TEST_PROFILE
from repro.storage.store import StoreConfig

# high enough that the small 6-generation workload crosses the rewrite
# threshold (at 0.1 nothing fragments this quickly)
ALPHA = 0.3


def small_segmenter():
    return ContentDefinedSegmenter(
        min_bytes=4096, avg_bytes=8192, max_bytes=16384, avg_chunk_bytes=1024
    )


def fresh_resources():
    res = EngineResources.create(
        profile=TEST_PROFILE,
        container_bytes=64 * 1024,
        expected_entries=50_000,
        index_page_cache_pages=4,
    )
    res.store.seal_seeks = 0
    return res


def run_defrag(obs=None, n_generations=6):
    res = fresh_resources()
    engine = DeFragEngine(
        res,
        policy=SPLThresholdPolicy(ALPHA),
        bloom_capacity=50_000,
        cache_containers=4,
        obs=obs,
    )
    jobs = single_user_incrementals(n_generations, 256 * 1024, seed=7)
    reports = run_workload(engine, jobs, small_segmenter())
    return engine, reports


class TestSession:
    def test_default_is_disabled(self):
        assert get_active() is NULL_OBS
        assert NULL_OBS.enabled is False

    def test_session_scoping(self):
        obs = Observability()
        with obs_session(obs) as inner:
            assert inner is obs
            assert get_active() is obs
            with obs_session() as nested:
                assert get_active() is nested
            assert get_active() is obs
        assert get_active() is NULL_OBS

    def test_engines_adopt_ambient_session(self):
        with obs_session() as obs:
            engine = DDFSEngine(fresh_resources(), bloom_capacity=1000)
        assert engine.obs is obs

    def test_session_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with obs_session():
                raise RuntimeError("boom")
        assert get_active() is NULL_OBS


class TestZeroOverheadDisabled:
    def test_disabled_engine_records_nothing(self):
        engine, _ = run_defrag(obs=None)
        assert engine.obs is NULL_OBS
        assert engine._obs_scope is None
        assert len(NULL_OBS.registry) == 0
        assert engine.cache.on_evict is None


class TestPhaseSpans:
    def test_phase_partition_is_exact(self):
        obs = Observability()
        engine, reports = run_defrag(obs=obs)
        reg = obs.registry
        total = reg.get("DeFrag.phase.segment").sim_seconds
        parts = sum(
            reg.get(f"DeFrag.phase.{p}").sim_seconds
            for p in ("cpu", "index_fault", "meta_prefetch", "container_append")
        )
        assert total == pytest.approx(parts, rel=1e-9)
        # identify + place partition the same total minus CPU
        overlay = (
            reg.get("DeFrag.phase.identify").sim_seconds
            + reg.get("DeFrag.phase.place").sim_seconds
        )
        assert overlay == pytest.approx(
            total - reg.get("DeFrag.phase.cpu").sim_seconds, rel=1e-9
        )
        # spans cover per-segment time only; end_backup's final container
        # flush is the (small) remainder of the simulated backup time
        assert 0 < total <= sum(r.elapsed_seconds for r in reports)

    def test_counters_match_reports(self):
        obs = Observability()
        engine, reports = run_defrag(obs=obs)
        reg = obs.registry
        assert reg.get("DeFrag.bytes.logical").value == sum(
            r.logical_bytes for r in reports
        )
        assert reg.get("DeFrag.bytes.rewritten_dup").value == sum(
            r.rewritten_dup_bytes for r in reports
        )
        assert reg.get("DeFrag.segments").value == sum(
            len(r.segments) for r in reports
        )


class TestDecisionTrace:
    def test_decision_events_cover_rewrites(self):
        sink = ListEventSink()
        obs = Observability(events=sink)
        engine, reports = run_defrag(obs=obs)
        decisions = sink.of_type("defrag_decision")
        assert decisions, "workload produced no decisions"
        rewrites = [d for d in decisions if d["action"] == "rewrite"]
        assert rewrites, "workload produced no rewrites"
        for d in decisions:
            assert d["alpha"] == ALPHA
            assert 0.0 <= d["spl"] <= 1.0
            assert (d["action"] == "rewrite") == (d["spl"] < ALPHA)
            assert d["bytes"] >= 0 and d["chunks"] >= 1
        # at least one decision event per segment that rewrote bytes
        rewritten_segments = {
            (r.generation, o.index)
            for r in reports
            for o in r.segments
            if o.rewritten_dup
        }
        decision_segments = {(d["generation"], d["segment"]) for d in rewrites}
        assert rewritten_segments <= decision_segments
        # rewritten bytes accounted by the events match the reports
        assert sum(d["bytes"] for d in rewrites) == sum(
            r.rewritten_dup_bytes for r in reports
        )

    def test_spl_histogram_matches_decisions(self):
        sink = ListEventSink()
        obs = Observability(events=sink)
        run_defrag(obs=obs)
        hist = obs.registry.get("DeFrag.spl")
        assert hist.count == len(sink.of_type("defrag_decision"))

    def test_cache_evict_events(self):
        sink = ListEventSink()
        obs = Observability(events=sink)
        engine, _ = run_defrag(obs=obs)
        evicts = sink.of_type("cache_evict")
        assert len(evicts) == engine.cache.stats.units_evicted
        assert len(evicts) == obs.registry.get("DeFrag.cache.units_evicted").value
        for e in evicts:
            assert e["engine"] == "DeFrag"
            assert e["fingerprints"] >= 1

    def test_backup_and_yield_events(self):
        sink = ListEventSink()
        obs = Observability(events=sink)
        _, reports = run_defrag(obs=obs)
        assert len(sink.of_type("backup")) == len(reports)
        assert len(sink.of_type("prefetch_yield")) == len(reports)
        assert len(sink.of_type("segment_span")) == sum(
            len(r.segments) for r in reports
        )


class TestRestoreObservability:
    def test_restore_records_into_ambient_session(self):
        engine, reports = run_defrag(obs=None)
        reader = RestoreReader(engine.res.store, config=StoreConfig(cache_containers=4))
        sink = ListEventSink()
        with obs_session(Observability(events=sink)) as obs:
            report = reader.restore(reports[-1].recipe)
        assert obs.registry.get("restore.backups").value == 1
        assert (
            obs.registry.get("restore.container_reads").value
            == report.container_reads
        )
        events = sink.of_type("restore")
        assert len(events) == 1
        assert events[0]["container_reads"] == report.container_reads

    def test_restore_without_session_records_nothing(self):
        engine, reports = run_defrag(obs=None)
        reader = RestoreReader(engine.res.store, config=StoreConfig(cache_containers=4))
        reader.restore(reports[-1].recipe)
        assert len(NULL_OBS.registry) == 0
