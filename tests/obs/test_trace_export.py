"""Chrome trace-event export: schema and placement tests."""

import json

from repro.obs.manifest import RunManifest
from repro.obs.spans import INGEST_PHASES
from repro.obs.trace_export import export_chrome_trace, write_chrome_trace


def _segment_event(**over):
    ev = {
        "type": "segment_span",
        "engine": "DeFrag",
        "generation": 0,
        "segment": 3,
        "t": 2.0,
        "sim_seconds": 1.0,
        "n_chunks": 64,
        "cpu_s": 0.25,
        "index_fault_s": 0.5,
        "meta_prefetch_s": 0.25,
        "container_append_s": 0.0,
    }
    ev.update(over)
    return ev


class TestSchema:
    """The acceptance-criteria schema assertions: the export must be
    loadable by Perfetto/chrome://tracing as trace-event JSON."""

    def test_trace_event_schema(self):
        events = [
            _segment_event(),
            {"type": "backup", "engine": "DeFrag", "generation": 0,
             "t": 3.0, "sim_seconds": 3.0},
            {"type": "restore", "generation": 0, "t": 5.0, "sim_seconds": 1.5},
        ]
        doc = export_chrome_trace(events, RunManifest(seed=1))
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        for ev in doc["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert isinstance(ev["name"], str)
            assert isinstance(ev["pid"], int) and isinstance(ev["tid"], int)
            assert isinstance(ev["ts"], (int, float))
            if ev["ph"] == "X":
                assert isinstance(ev["dur"], (int, float))
                assert ev["dur"] >= 0
        # JSON round-trip must be lossless
        assert json.loads(json.dumps(doc)) == doc

    def test_manifest_rides_in_other_data(self):
        doc = export_chrome_trace([_segment_event()], RunManifest(seed=9))
        assert doc["otherData"]["seed"] == 9

    def test_no_manifest_no_other_data(self):
        assert "otherData" not in export_chrome_trace([_segment_event()])


class TestPlacement:
    def test_segment_slice_ends_at_t(self):
        doc = export_chrome_trace([_segment_event(t=2.0, sim_seconds=1.0)])
        seg = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]
        assert seg["ts"] == 1.0e6
        assert seg["dur"] == 1.0e6

    def test_phase_children_tile_parent(self):
        doc = export_chrome_trace([_segment_event()])
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        parent, children = slices[0], slices[1:]
        assert {c["name"] for c in children} <= set(INGEST_PHASES)
        assert sum(c["dur"] for c in children) == parent["dur"]
        assert children[0]["ts"] == parent["ts"]
        # children are laid end-to-end
        for a, b in zip(children, children[1:]):
            assert b["ts"] == a["ts"] + a["dur"]

    def test_zero_duration_phases_skipped(self):
        doc = export_chrome_trace([_segment_event()])
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert "container_append" not in names

    def test_one_process_per_engine(self):
        events = [
            _segment_event(engine="DeFrag"),
            _segment_event(engine="CBR", segment=4),
        ]
        doc = export_chrome_trace(events)
        process_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert process_names == {"DeFrag", "CBR"}

    def test_events_without_t_skipped(self):
        doc = export_chrome_trace(
            [{"type": "segment_span", "engine": "X", "sim_seconds": 1.0}]
        )
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_decision_events_ignored(self):
        doc = export_chrome_trace(
            [{"type": "defrag_decision", "t": 1.0, "spl": 0.05}]
        )
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


class TestWrite:
    def test_write_returns_slice_count_and_valid_json(self, tmp_path):
        out = tmp_path / "trace.json"
        n = write_chrome_trace(out, [_segment_event()], RunManifest(seed=2))
        doc = json.loads(out.read_text())
        assert n == sum(1 for e in doc["traceEvents"] if e["ph"] == "X")
        assert n == 4  # parent + 3 nonzero phases
