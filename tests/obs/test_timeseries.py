"""Unit tests for the ring-buffered TimeSeries metric kind."""

import json

import pytest

from repro.obs.timeseries import DEFAULT_MAX_SAMPLES, TimeSeries


class TestRecording:
    def test_samples_in_order(self):
        ts = TimeSeries("x")
        ts.sample(0.0, 1.0)
        ts.sample(1.5, 2.0)
        assert ts.samples == [(0.0, 1.0), (1.5, 2.0)]
        assert ts.values() == [1.0, 2.0]
        assert ts.times() == [0.0, 1.5]
        assert ts.last == (1.5, 2.0)
        assert ts.count == 2 and len(ts) == 2

    def test_empty(self):
        ts = TimeSeries("x")
        assert len(ts) == 0
        assert ts.last is None
        assert ts.values() == []

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_samples=3)
        with pytest.raises(ValueError):
            TimeSeries("x", resolution=-0.1)


class TestCompaction:
    def test_stays_within_capacity(self):
        ts = TimeSeries("x", max_samples=16)
        for i in range(1000):
            ts.sample(i * 0.1, float(i))
        assert len(ts) <= 16
        assert ts.count == 1000

    def test_keeps_first_and_last(self):
        ts = TimeSeries("x", max_samples=16)
        for i in range(200):
            ts.sample(float(i), float(i))
        assert ts.samples[0] == (0.0, 0.0)
        assert ts.samples[-1] == (199.0, 199.0)

    def test_resolution_grows(self):
        ts = TimeSeries("x", max_samples=16)
        for i in range(200):
            ts.sample(float(i), float(i))
        assert ts.resolution > 0.0

    def test_degenerate_same_instant(self):
        """All samples at one sim time: compaction keeps the endpoints
        instead of looping forever on a zero span."""
        ts = TimeSeries("x", max_samples=4)
        for i in range(10):
            ts.sample(0.0, float(i))
        assert len(ts) <= 4
        assert ts.values()[0] == 0.0
        assert ts.values()[-1] == 9.0

    def test_deterministic(self):
        """Same sample sequence -> byte-identical snapshot."""
        def build():
            ts = TimeSeries("x", max_samples=32)
            for i in range(500):
                ts.sample(i * 0.37, (i * 7919) % 101 / 101)
            return ts

        a, b = build().snapshot(), build().snapshot()
        assert json.dumps(a) == json.dumps(b)


class TestSnapshotMerge:
    def test_snapshot_roundtrip(self):
        src = TimeSeries("x", max_samples=8)
        for i in range(20):
            src.sample(float(i), float(i * i))
        dst = TimeSeries("x", max_samples=8)
        dst.merge_snapshot(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_snapshot_json_serializable(self):
        ts = TimeSeries("x")
        ts.sample(1.0, 2.0)
        snap = json.loads(json.dumps(ts.snapshot()))
        assert snap["samples"] == [[1.0, 2.0]]
        assert snap["count"] == 1
        assert snap["max_samples"] == DEFAULT_MAX_SAMPLES

    def test_merge_interleaves_by_time(self):
        a = TimeSeries("x")
        b = TimeSeries("x")
        a.sample(0.0, 1.0)
        a.sample(2.0, 2.0)
        b.sample(1.0, 10.0)
        b.sample(3.0, 20.0)
        a.merge_snapshot(b.snapshot())
        assert a.times() == [0.0, 1.0, 2.0, 3.0]
        assert a.count == 4

    def test_merge_receiver_wins_ties(self):
        a = TimeSeries("x")
        b = TimeSeries("x")
        a.sample(1.0, 100.0)
        b.sample(1.0, 200.0)
        a.merge_snapshot(b.snapshot())
        assert a.values() == [100.0, 200.0]

    def test_merge_takes_coarser_resolution(self):
        a = TimeSeries("x", resolution=0.5)
        b = TimeSeries("x", resolution=2.0)
        a.sample(0.0, 1.0)
        a.merge_snapshot(b.snapshot())
        assert a.resolution == 2.0

    def test_split_halves_match_serial(self):
        """Record one stream serially vs split across two series and
        merged: identical retained samples (the --jobs N contract)."""
        stream = [(i * 0.25, float((i * 31) % 17)) for i in range(600)]
        serial = TimeSeries("x", max_samples=32)
        for t, v in stream:
            serial.sample(t, v)
        first = TimeSeries("x", max_samples=32)
        second = TimeSeries("x", max_samples=32)
        for t, v in stream[:300]:
            first.sample(t, v)
        for t, v in stream[300:]:
            second.sample(t, v)
        merged = TimeSeries("x", max_samples=32)
        merged.merge_snapshot(first.snapshot())
        merged.merge_snapshot(second.snapshot())
        assert merged.count == serial.count
        # both are thinned overviews of the same stream over the same span
        assert merged.samples[0] == serial.samples[0]
        assert merged.samples[-1] == serial.samples[-1]
