"""Dashboard rendering: standalone HTML from runs, baselines, history."""

import json
from html.parser import HTMLParser

import pytest

from repro.obs.dash import build_dashboard, render_dashboard

_VOID = {"meta", "br", "hr", "img", "input", "link", "line", "circle", "polyline"}


class _TagBalance(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack, self.errors = [], []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID:
            return
        if not self.stack or self.stack[-1] != tag:
            self.errors.append(tag)
        else:
            self.stack.pop()


def assert_valid_standalone_html(text):
    assert text.startswith("<!DOCTYPE html>")
    assert "</html>" in text
    # self-contained: no scripts, no external fetches
    assert "<script" not in text
    assert "http-equiv" not in text
    assert 'src="http' not in text and "url(" not in text
    checker = _TagBalance()
    checker.feed(text)
    assert not checker.errors, f"mismatched tags: {checker.errors}"
    assert not checker.stack, f"unclosed tags: {checker.stack}"


def _history():
    return [
        {"commit": "aaa", "ingest_batch_seconds": 0.30,
         "restore_seconds": 0.030, "chunking_mb_per_s": 50.0},
        {"commit": "bbb", "ingest_batch_seconds": 0.20,
         "restore_seconds": 0.025, "chunking_mb_per_s": 60.0},
    ]


def _bench():
    return {
        "ingest": {"ingest": {"batch_seconds": 0.20}},
        "restore": {"restore": {"restore_seconds": 0.025}},
        "chunking": {"chunking": {"seqcdc_mb_per_s": 60.0}},
    }


def _run():
    return {
        "path": "stats.json",
        "manifest": {"target": "fig4", "seed": 2012, "commit": "abc"},
        "metrics": {
            "timeseries": {
                "DeFrag.ts.cache_hit_ratio": {
                    "count": 4, "max_samples": 512, "resolution": 0.0,
                    "samples": [[0.0, 0.9], [1.0, 0.8], [2.0, 0.7], [3.0, 0.75]],
                }
            }
        },
    }


class TestRender:
    def test_empty_inputs_still_valid(self):
        assert_valid_standalone_html(render_dashboard())

    def test_full_inputs_valid(self):
        text = render_dashboard(runs=[_run()], bench=_bench(), history=_history())
        assert_valid_standalone_html(text)

    def test_baseline_tiles(self):
        text = render_dashboard(bench=_bench(), history=_history())
        assert "Committed baselines" in text
        assert "ingest (batch)" in text
        assert "chunking" in text

    def test_history_charts_and_table(self):
        text = render_dashboard(history=_history())
        assert "Perf trajectory" in text
        assert "<svg" in text and "polyline" in text
        assert "aaa" in text and "bbb" in text

    def test_run_section_sparklines_and_chips(self):
        text = render_dashboard(runs=[_run()])
        assert "Run: fig4" in text
        assert "seed" in text and "2012" in text
        assert "DeFrag.ts.cache_hit_ratio" in text
        assert "<svg" in text

    def test_manifest_text_is_escaped(self):
        run = _run()
        run["manifest"]["target"] = "<script>alert(1)</script>"
        text = render_dashboard(runs=[run])
        assert "<script" not in text
        assert "&lt;script&gt;" in text

    def test_single_series_no_legend(self):
        # every chart is single-series: the title names it, no legend box
        text = render_dashboard(runs=[_run()], bench=_bench(), history=_history())
        assert "legend" not in text.lower()

    def test_light_and_dark_tokens_present(self):
        text = render_dashboard()
        assert "prefers-color-scheme: dark" in text
        assert 'data-theme="dark"' in text


class TestBuild:
    def test_builds_from_disk_artifacts(self, tmp_path):
        stats = tmp_path / "run.json"
        stats.write_text(json.dumps(
            {"manifest": _run()["manifest"], "metrics": _run()["metrics"]}
        ))
        (tmp_path / "BENCH_ingest.json").write_text(json.dumps(_bench()["ingest"]))
        (tmp_path / "BENCH_history.jsonl").write_text(
            "\n".join(json.dumps(r) for r in _history()) + "\n"
        )
        out = build_dashboard(
            tmp_path / "dash.html", stats_paths=[stats], root=tmp_path
        )
        text = out.read_text()
        assert_valid_standalone_html(text)
        assert "Run: fig4" in text
        assert "Perf trajectory" in text

    def test_missing_artifacts_tolerated(self, tmp_path):
        out = build_dashboard(
            tmp_path / "dash.html",
            stats_paths=[tmp_path / "nope.json"],
            root=tmp_path,
        )
        assert_valid_standalone_html(out.read_text())

    def test_malformed_snapshot_skipped(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        out = build_dashboard(tmp_path / "dash.html", stats_paths=[bad], root=tmp_path)
        assert_valid_standalone_html(out.read_text())

    def test_bare_snapshot_without_manifest(self, tmp_path):
        # pre-PR7 stats files are a bare registry snapshot
        stats = tmp_path / "old.json"
        stats.write_text(json.dumps(_run()["metrics"]))
        out = build_dashboard(tmp_path / "dash.html", stats_paths=[stats], root=tmp_path)
        text = out.read_text()
        assert_valid_standalone_html(text)
        assert "DeFrag.ts.cache_hit_ratio" in text


class TestAgainstCommittedBaselines:
    """The acceptance criterion: a dashboard built from the repo's own
    committed BENCH_*.json + BENCH_history.jsonl is valid."""

    def test_repo_root_artifacts(self, tmp_path):
        import repro

        root = __import__("pathlib").Path(repro.__file__).resolve().parents[2]
        if not (root / "BENCH_ingest.json").is_file():
            pytest.skip("committed baselines not present")
        out = build_dashboard(tmp_path / "dash.html", root=root)
        text = out.read_text()
        assert_valid_standalone_html(text)
        assert "Committed baselines" in text
