"""Unit tests for the metrics registry primitives."""

import json

import pytest

from repro.obs.registry import (
    Counter,
    FRACTION_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    SPL_EDGES,
    Span,
    render_snapshot,
)


class TestPrimitives:
    def test_counter(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_gauge(self):
        g = Gauge("x")
        g.set(3.5)
        assert g.value == 3.5
        g.set(1.0)
        assert g.value == 1.0

    def test_span_accumulates(self):
        s = Span("x")
        s.record(0.5)
        s.record(0.25, count=3)
        assert s.count == 4
        assert s.sim_seconds == 0.75

    def test_histogram_bucketing(self):
        h = Histogram("x", (1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            h.observe(v)
        # (-inf,1], (1,2], (2,4], (4,inf)
        assert h.counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == pytest.approx(112.0)
        assert h.mean == pytest.approx(112.0 / 7)

    def test_histogram_buckets_labels(self):
        h = Histogram("x", (1.0, 2.0))
        h.observe(0.0)
        h.observe(5.0)
        labels = [label for label, _ in h.buckets()]
        assert labels == ["<= 1", "(1, 2]", "> 2"]

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram("x", ())
        with pytest.raises(ValueError):
            Histogram("x", (2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("x", (1.0, 1.0))

    def test_edge_constants_are_increasing(self):
        for edges in (SPL_EDGES, FRACTION_EDGES):
            assert list(edges) == sorted(set(edges))


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a.b")
        c1.inc()
        assert reg.counter("a.b") is c1
        assert reg.counter("a.b").value == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_edge_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        assert reg.histogram("h", (1.0, 2.0)) is reg.get("h")
        with pytest.raises(ValueError):
            reg.histogram("h", (1.0, 3.0))

    def test_introspection(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.span("a")
        assert len(reg) == 2
        assert "a" in reg and "c" not in reg
        assert reg.names() == ["a", "b"]
        assert [m.name for m in reg.by_kind(Span)] == ["a"]
        assert reg.get("c") is None

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1.0,)).observe(0.5)
        reg.span("s").record(2.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["counters"]["c"] == 3
        assert snap["gauges"]["g"] == 1.5
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["spans"]["s"] == {"count": 1, "sim_seconds": 2.0}

    def test_render_snapshot_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("eng.chunks").inc(42)
        reg.span("eng.phase.cpu").record(0.5)
        reg.histogram("eng.spl", (0.1, 0.5)).observe(0.3)
        text = render_snapshot(reg.snapshot())
        assert "eng.chunks" in text
        assert "eng.phase.cpu" in text
        assert "n=       1" in text or "n=" in text
        assert "(0.1, 0.5]" in text
        assert reg.render() == text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0


class TestMerge:
    def make_source(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", (1.0, 2.0)).observe(0.5)
        reg.histogram("h", (1.0, 2.0)).observe(5.0)
        reg.span("s").record(2.0, count=4)
        return reg

    def test_merge_into_empty_equals_source(self):
        src = self.make_source()
        dst = MetricsRegistry()
        dst.merge(src.snapshot())
        assert dst.snapshot() == src.snapshot()

    def test_merge_accumulates(self):
        src = self.make_source()
        dst = self.make_source()
        dst.merge(src.snapshot())
        assert dst.counter("c").value == 6
        assert dst.gauge("g").value == 1.5  # last write wins
        h = dst.get("h")
        assert h.count == 4
        assert h.counts == [2, 0, 2]
        assert h.sum == pytest.approx(11.0)
        s = dst.get("s")
        assert s.count == 8
        assert s.sim_seconds == pytest.approx(4.0)

    def test_merge_of_split_halves_matches_single_registry(self):
        """Merging per-cell snapshots reproduces what one registry
        recording everything would hold — the parallel-runner invariant."""
        whole = MetricsRegistry()
        half1, half2 = MetricsRegistry(), MetricsRegistry()
        for i, reg in ((1, half1), (2, half2)):
            for target in (whole, reg):
                target.counter("n").inc(i)
                target.histogram("h", (1.0,)).observe(float(i))
                target.span("s").record(0.25 * i)
        merged = MetricsRegistry()
        merged.merge(half1.snapshot())
        merged.merge(half2.snapshot())
        assert merged.snapshot() == whole.snapshot()


class TestMergeEdgeCases:
    def test_disjoint_names_union(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("only.a").inc(1)
        b.span("only.b").record(0.5)
        a.merge(b.snapshot())
        assert a.counter("only.a").value == 1
        assert a.span("only.b").sim_seconds == 0.5
        assert set(a.names()) == {"only.a", "only.b"}

    def test_kind_mismatch_raises_not_corrupts(self):
        dst = MetricsRegistry()
        dst.counter("x").inc(7)
        src = MetricsRegistry()
        src.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            dst.merge(src.snapshot())
        # the conflicting metric is untouched
        assert dst.counter("x").value == 7

    def test_kind_mismatch_timeseries_vs_counter(self):
        dst = MetricsRegistry()
        dst.timeseries("x").sample(0.0, 1.0)
        src = MetricsRegistry()
        src.counter("x").inc()
        with pytest.raises(TypeError):
            dst.merge(src.snapshot())
        assert len(dst.timeseries("x")) == 1

    def test_gauge_last_writer_wins(self):
        dst = MetricsRegistry()
        dst.gauge("g").set(1.0)
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("g").set(2.0)
        second.gauge("g").set(3.0)
        dst.merge(first.snapshot())
        assert dst.gauge("g").value == 2.0
        dst.merge(second.snapshot())
        assert dst.gauge("g").value == 3.0

    def test_merge_empty_snapshot_is_noop(self):
        dst = MetricsRegistry()
        dst.counter("c").inc(2)
        dst.timeseries("ts").sample(1.0, 1.0)
        before = dst.snapshot()
        dst.merge(MetricsRegistry().snapshot())
        dst.merge({})
        assert dst.snapshot() == before

    def test_merge_timeseries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.timeseries("ts").sample(0.0, 1.0)
        b.timeseries("ts").sample(1.0, 2.0)
        a.merge(b.snapshot())
        ts = a.timeseries("ts")
        assert ts.times() == [0.0, 1.0]
        assert ts.count == 2

    def test_snapshot_includes_timeseries_section(self):
        reg = MetricsRegistry()
        reg.timeseries("ts").sample(0.5, 2.0)
        snap = reg.snapshot()
        assert snap["timeseries"]["ts"]["samples"] == [[0.5, 2.0]]
        # render handles it too
        assert "time series" in render_snapshot(snap)
