"""Unit tests for the event sinks and the JSONL trace format."""

import json

import pytest

from repro.obs.events import (
    JsonlEventSink,
    ListEventSink,
    NULL_EVENTS,
    NullEventSink,
    read_jsonl,
)


class TestNullSink:
    def test_disabled_and_noop(self):
        assert NULL_EVENTS.enabled is False
        NULL_EVENTS.emit("anything", x=1)  # must not raise
        NULL_EVENTS.close()
        assert isinstance(NULL_EVENTS, NullEventSink)


class TestListSink:
    def test_collects_and_filters(self):
        sink = ListEventSink()
        assert sink.enabled is True
        sink.emit("a", x=1)
        sink.emit("b", y=2)
        sink.emit("a", x=3)
        assert sink.n_events == 3
        assert [e["x"] for e in sink.of_type("a")] == [1, 3]
        assert sink.events[1] == {"type": "b", "y": 2}


class TestJsonlSink:
    def test_writes_one_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit("alpha", value=1)
        sink.emit("beta", value=2.5, name="x")
        sink.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"type": "alpha", "value": 1}
        assert sink.n_events == 2

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlEventSink(path)
        sink.close()  # no emit -> no file
        assert not path.exists()

    def test_close_idempotent(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.emit("x")
        sink.close()
        sink.close()

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "cm.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("a", n=1)
        assert sink._fh is None
        assert len(read_jsonl(path)) == 1
        sink.close()  # still idempotent after __exit__

    def test_flush_every_n_events(self, tmp_path):
        path = tmp_path / "f.jsonl"
        sink = JsonlEventSink(path, flush_every=2)
        sink.emit("a")
        sink.emit("b")
        # two events flushed; bytes are on disk without close()
        assert len(path.read_text().splitlines()) == 2
        sink.emit("c")  # buffered, below the next flush threshold
        sink.close()
        assert len(read_jsonl(path)) == 3

    def test_flush_every_zero_disables_periodic_flush(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "z.jsonl", flush_every=0)
        for _ in range(10):
            sink.emit("x")
        sink.flush()  # explicit flush still works
        sink.close()
        assert sink.n_events == 10

    def test_rejects_negative_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlEventSink(tmp_path / "n.jsonl", flush_every=-1)

    def test_read_jsonl_filter(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit("a", n=1)
        sink.emit("b", n=2)
        sink.emit("a", n=3)
        sink.close()
        assert len(read_jsonl(path)) == 3
        assert [e["n"] for e in read_jsonl(path, type="a")] == [1, 3]
