"""Unit tests for the run-provenance manifest."""

import json

from repro.experiments.config import ExperimentConfig
from repro.obs.manifest import (
    MANIFEST_EVENT,
    RunManifest,
    build_manifest,
    fingerprint_of,
    git_commit,
)


class TestFingerprint:
    def test_stable_for_equal_configs(self):
        a = ExperimentConfig.small()
        b = ExperimentConfig.small()
        assert fingerprint_of(a) == fingerprint_of(b)

    def test_differs_across_configs(self):
        a = ExperimentConfig.small()
        assert fingerprint_of(a) != fingerprint_of(a.with_(seed=a.seed + 1))

    def test_matches_experiments_layer(self):
        from repro.experiments.common import config_fingerprint

        config = ExperimentConfig.small()
        assert fingerprint_of(config) == config_fingerprint(config)


class TestRunManifest:
    def test_deterministic_dict_excludes_wall_clock(self):
        m = RunManifest(seed=7, created_utc="2026-01-01T00:00:00+00:00")
        det = m.deterministic_dict()
        assert "created_utc" not in det
        assert det["seed"] == 7
        assert m.as_dict()["created_utc"] == "2026-01-01T00:00:00+00:00"

    def test_none_fields_omitted(self):
        assert RunManifest().deterministic_dict() == {}

    def test_extra_sorted(self):
        m = RunManifest(extra={"zeta": 1, "alpha": 2})
        keys = list(m.deterministic_dict())
        assert keys == ["alpha", "zeta"]

    def test_event_payload(self):
        ev = RunManifest(seed=3).event()
        assert ev["type"] == MANIFEST_EVENT
        assert ev["seed"] == 3

    def test_json_serializable(self):
        m = build_manifest(config=ExperimentConfig.small(), scale="small")
        json.dumps(m.as_dict())


class TestBuildManifest:
    def test_captures_config_identity(self):
        config = ExperimentConfig.small()
        m = build_manifest(config=config, scale="small", jobs=2)
        assert m.config_fingerprint == fingerprint_of(config)
        assert m.seed == config.seed
        assert m.extra == {"jobs": 2, "scale": "small"}

    def test_version_and_commit(self):
        import repro

        m = build_manifest()
        assert m.version == repro.__version__
        # in this checkout git metadata exists
        assert m.commit == git_commit()

    def test_wall_clock_toggle(self):
        assert build_manifest(wall_clock=False).created_utc is None
        stamped = build_manifest(wall_clock=True).created_utc
        assert stamped is not None and "T" in stamped

    def test_deterministic_without_wall_clock(self):
        config = ExperimentConfig.small()
        a = build_manifest(config=config, wall_clock=False)
        b = build_manifest(config=config, wall_clock=False)
        assert a.deterministic_dict() == b.deterministic_dict()
