"""Bench: regenerate Fig. 3 (SiLo-like efficiency degradation)."""

from repro.experiments import fig3


def test_bench_fig3(benchmark, bench_config):
    result = benchmark.pedantic(fig3.run, args=(bench_config,), rounds=1, iterations=1)
    cum = result.series["cumulative"]
    assert cum[-1] < 1.0  # redundancy is being missed
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in result.series["efficiency"])
