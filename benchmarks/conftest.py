"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures at the ``small``
scale (seconds, not minutes) and asserts its qualitative claim, so the
benchmark suite doubles as an end-to-end reproduction check. Simulated
performance (the figures' content) is independent of the wall-clock
numbers pytest-benchmark reports; the benchmark timings measure the
*simulator's* own cost, which is what a developer iterating on this
code base wants tracked.
"""

import pytest

from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return ExperimentConfig.small()
