"""Bench: the α-sweep ablation (locality gain vs compression cost)."""

from repro.experiments import ablations


def test_bench_alpha_sweep(benchmark, bench_config):
    result = benchmark.pedantic(
        ablations.alpha_sweep,
        args=(bench_config,),
        kwargs={"alphas": (0.0, 0.1, 0.3)},
        rounds=1,
        iterations=1,
    )
    kept = result.series["kept redund %"]
    comp = result.series["compression x"]
    assert kept[0] == 0.0
    assert kept == sorted(kept)  # more alpha, more kept redundancy
    assert comp == sorted(comp, reverse=True)  # ... and less compression
