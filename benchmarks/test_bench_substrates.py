"""Micro-benchmarks of the hot substrates (the simulator's own speed).

These are the components the figure regenerations spend their wall-clock
in; tracking them catches performance regressions in the simulator
itself.
"""

import numpy as np
import pytest

from repro.chunking.base import ChunkStream
from repro.chunking.fingerprint import splitmix64_array
from repro.chunking.gear import GearChunker
from repro.index.bloom import BloomFilter
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.layout import container_run_lengths


def make_stream(n: int, seed: int = 7, size: int = 1024) -> ChunkStream:
    base = np.arange(n, dtype=np.uint64) + np.uint64(seed * 1_000_003)
    return ChunkStream(splitmix64_array(base), np.full(n, size, dtype=np.uint32))


@pytest.fixture(scope="module")
def payload():
    return bytes(np.random.default_rng(0).integers(0, 256, 4 << 20, dtype=np.uint8))


def test_bench_gear_chunking(benchmark, payload):
    chunker = GearChunker(avg_size=8192)
    boundaries = benchmark(chunker.cut_boundaries, payload)
    assert boundaries[-1] == len(payload)


def test_bench_bloom_add_many(benchmark):
    bloom = BloomFilter(2_000_000, 0.01)
    fps = make_stream(100_000).fps

    benchmark(bloom.add_many, fps)
    assert bloom.contains_many(fps).all()


def test_bench_bloom_contains_many(benchmark):
    bloom = BloomFilter(2_000_000, 0.01)
    fps = make_stream(100_000).fps
    bloom.add_many(fps)
    result = benchmark(bloom.contains_many, fps)
    assert result.all()


def test_bench_segmenter(benchmark):
    stream = make_stream(100_000, size=8192)
    segmenter = ContentDefinedSegmenter()
    segments = benchmark(segmenter.split, stream)
    assert sum(s.n_chunks for s in segments) == len(stream)


def test_bench_run_lengths(benchmark):
    cids = np.repeat(np.arange(10_000), 16)
    runs = benchmark(container_run_lengths, cids)
    assert runs.size == 10_000
