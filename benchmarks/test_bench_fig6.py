"""Bench: regenerate Fig. 6 (restore read performance: DeFrag vs
DDFS-like)."""

from repro.experiments import fig6


def test_bench_fig6(benchmark, bench_config):
    result = benchmark.pedantic(fig6.run, args=(bench_config,), rounds=1, iterations=1)
    d, b = result.series["DeFrag MB/s"], result.series["DDFS MB/s"]
    n = len(d)
    assert sum(d[-n // 2 :]) > sum(b[-n // 2 :])
