"""Bench: the vectorized batch ingest path vs the scalar reference.

Times the fig4 three-engine group ingest through both paths and asserts
the structural claim of the batch ingest work: segment-at-a-time
resolution is several times faster than the chunk-at-a-time ladder while
producing identical reports (equivalence itself is proven exhaustively
in ``tests/dedup/test_batch_equivalence.py``).
"""

from repro.bench import measure_ingest
from repro.experiments.common import clear_memo, run_group_workload


def test_bench_ingest_batch(benchmark, bench_config):
    def run():
        clear_memo()
        return run_group_workload(bench_config)

    benchmark.pedantic(run, rounds=1, iterations=1)
    clear_memo()


def test_batch_beats_scalar(bench_config):
    batch_s = measure_ingest(bench_config, batch=True, repeats=2)
    scalar_s = measure_ingest(bench_config, batch=False, repeats=1)
    # in-process the gap is ~8x; 2x leaves headroom for machine noise
    assert scalar_s > 2.0 * batch_s, (
        f"batch ingest ({batch_s:.3f}s) should be well under the scalar "
        f"reference ({scalar_s:.3f}s)"
    )
