"""Bench: regenerate Fig. 5 (efficiency: DeFrag vs SiLo-like)."""

from repro.experiments import fig5
from repro.experiments.common import clear_memo


def test_bench_fig5(benchmark, bench_config):
    def run():
        clear_memo()
        return fig5.run(bench_config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    kept_defrag = 1 - result.series["DeFrag"][-1]
    kept_silo = 1 - result.series["SiLo-Like"][-1]
    assert kept_defrag < kept_silo  # the paper's headline claim
