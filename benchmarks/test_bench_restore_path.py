"""Bench: the restore path — default reader vs FAA + read-ahead.

Times the fig6-small all-generation restore from the DDFS-Like layout
(the most fragmented store) and asserts the structural claims of the
restore subsystem: the forward assembly area plus read-ahead prices
several times fewer simulated positionings, and the measured wall-clock
stays within the committed 2x gate (``BENCH_restore.json``).
"""

from repro.bench import (
    check_restore_regression,
    load_restore_baseline,
    measure_restore,
    restore_fixture,
)


def test_bench_restore_default(benchmark, bench_config):
    store, recipes = restore_fixture(bench_config)
    benchmark.pedantic(
        measure_restore,
        args=(store, recipes),
        kwargs={"repeats": 1},
        rounds=1,
        iterations=1,
    )


def test_faa_prices_fewer_sim_seeks(bench_config):
    store, recipes = restore_fixture(bench_config)
    default = measure_restore(store, recipes, repeats=1)
    assembled = measure_restore(
        store, recipes, repeats=1, faa_window=2048, readahead=True
    )
    assert assembled["sim_seeks"] * 1.5 <= default["sim_seeks"], (
        f"FAA + read-ahead should price >=1.5x fewer positionings, got "
        f"{default['sim_seeks']} -> {assembled['sim_seeks']}"
    )


def test_committed_gate_passes(bench_config):
    baseline = load_restore_baseline()
    assert baseline is not None, "BENCH_restore.json missing from repo root"
    store, recipes = restore_fixture(bench_config)
    measured = measure_restore(store, recipes, repeats=2)
    result = {"restore_seconds": measured["seconds"]}
    failure = check_restore_regression(result, baseline)
    assert failure is None, failure
