"""Bench: regenerate Fig. 2 (DDFS-like throughput decay)."""

from repro.experiments import fig2


def test_bench_fig2(benchmark, bench_config):
    result = benchmark.pedantic(fig2.run, args=(bench_config,), rounds=1, iterations=1)
    thr = result.series["MB/s"]
    assert len(thr) == bench_config.n_generations
    # the paper's claim: decay with generations
    assert sum(thr[-3:]) / 3 < max(thr[:4])
