"""Bench: regenerate Fig. 4 (throughput: DeFrag vs DDFS-like vs
SiLo-like)."""

from repro.experiments import fig4
from repro.experiments.common import clear_memo


def test_bench_fig4(benchmark, bench_config):
    def run():
        clear_memo()  # measure the full three-engine simulation
        return fig4.run(bench_config)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    d, b = result.series["DeFrag"], result.series["DDFS-Like"]
    n = len(d)
    assert sum(d[-n // 3 :]) > sum(b[-n // 3 :])  # DeFrag above DDFS late
    assert sum(result.series["SiLo-Like"]) > sum(b)  # SiLo above DDFS
