"""Benches for the extension experiments (related-work comparison, GC)."""

from repro.experiments import extensions


def test_bench_related_work(benchmark, bench_config):
    result = benchmark.pedantic(
        extensions.related_work_comparison,
        args=(bench_config,),
        kwargs={"engines": ("DDFS-Like", "SiLo-Like", "iDedup", "DeFrag")},
        rounds=1,
        iterations=1,
    )
    # selective schemes (iDedup, DeFrag) must restore at least as fast as
    # plain DDFS at this scale
    assert result.series["DeFrag"][3] >= result.series["DDFS-Like"][3] * 0.9


def test_bench_gc_study(benchmark, bench_config):
    result = benchmark.pedantic(
        extensions.gc_study,
        args=(bench_config,),
        kwargs={"retain_last": 2, "min_utilization": 0.8},
        rounds=1,
        iterations=1,
    )
    values = result.series["value"]
    assert values[1] <= values[0]  # physical bytes shrink or hold
