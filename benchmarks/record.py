"""Record the ingest and restore benchmarks into BENCH_*.json.

Run from the repo root::

    PYTHONPATH=src python benchmarks/record.py [--repeats N] [--out PATH]

Measures, in one sitting:

* the in-process three-engine group ingest (fig4's body) through the
  vectorized batch path and the scalar reference path,
* the end-to-end ``python -m repro fig4 --scale small`` command both
  ways (which adds the fixed interpreter + numpy start-up floor that no
  ingest optimization can touch), and
* the fig6-small all-generation restore from the DDFS-Like layout
  through the default reader and the FAA + read-ahead reader (written
  to ``BENCH_restore.json``), and
* byte-level Gear CDC over a fixed random buffer — the skip-then-scan
  fast path vs the exact 64-pass reference sweep (written to
  ``BENCH_chunking.json`` via ``--chunking-out``), and
* the sharded fingerprint index — 1-shard byte-identity plus routed
  N-shard batched-lookup throughput (written to ``BENCH_shard.json``
  via ``--shard-out``, including the absolute lookup floor the gate
  enforces).

The JSON it writes is the committed baseline that ``python -m repro
bench`` gates wall-clock regressions against. With ``--append-history``
it additionally appends one compact line of headline numbers (plus the
run's provenance manifest) to ``BENCH_history.jsonl`` — the perf
trajectory ``repro dash`` plots and ``repro bench`` annotates with a
drift direction.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import (  # noqa: E402
    BASELINE_FILENAME,
    CHUNKING_BASELINE_FILENAME,
    HISTORY_FILENAME,
    MEMORY_BASELINE_FILENAME,
    RESTORE_BASELINE_FILENAME,
    SHARD_BASELINE_FILENAME,
    SHARD_LOOKUP_FLOOR_PER_S,
    append_history,
    history_record,
    run_bench,
    run_chunking_bench,
    run_memory_bench,
    run_restore_bench,
    run_shard_bench,
)


def time_command(args, repeats: int, src: "Path | None" = None) -> float:
    """Best-of wall-clock seconds for a subprocess command."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        subprocess.run(
            args,
            check=True,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            cwd=REPO_ROOT,
            env={
                "PYTHONPATH": str(src or (REPO_ROOT / "src")),
                "PATH": "/usr/bin:/bin",
            },
        )
        best = min(best, time.perf_counter() - t0)
    return best


# in-process group-workload timing, run inside an arbitrary checkout via
# ``python -c`` (so a pre-change reference tree can be measured in the
# same sitting; it only needs run_group_workload + ExperimentConfig.small)
_WORKLOAD_SNIPPET = (
    "import time\n"
    "from repro.experiments.common import run_group_workload, clear_memo\n"
    "from repro.experiments.config import ExperimentConfig\n"
    "cfg = ExperimentConfig.small()\n"
    "best = float('inf')\n"
    "for _ in range({repeats}):\n"
    "    clear_memo()\n"
    "    t0 = time.perf_counter()\n"
    "    run_group_workload(cfg)\n"
    "    best = min(best, time.perf_counter() - t0)\n"
    "print(best)\n"
)


def reference_commit(src: Path) -> "str | None":
    """Short commit hash of the checkout whose package root is ``src``,
    or None when it isn't a git checkout (the hash — unlike the often
    temporary checkout path — stays meaningful in the committed record)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            check=True,
            capture_output=True,
            text=True,
            cwd=src,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.stdout.strip() or None


def time_workload_in(src: Path, repeats: int) -> float:
    """Best-of in-process group-workload seconds for the checkout whose
    package root is ``src``."""
    out = subprocess.run(
        [sys.executable, "-c", _WORKLOAD_SNIPPET.format(repeats=max(1, repeats))],
        check=True,
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"},
    )
    return float(out.stdout.strip().splitlines()[-1])


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", default=str(REPO_ROOT / BASELINE_FILENAME))
    parser.add_argument(
        "--restore-out", default=str(REPO_ROOT / RESTORE_BASELINE_FILENAME)
    )
    parser.add_argument(
        "--skip-restore",
        action="store_true",
        help="do not (re)record the restore-path baseline",
    )
    parser.add_argument(
        "--chunking-out", default=str(REPO_ROOT / CHUNKING_BASELINE_FILENAME)
    )
    parser.add_argument(
        "--skip-chunking",
        action="store_true",
        help="do not (re)record the byte-level chunking baseline",
    )
    parser.add_argument(
        "--shard-out", default=str(REPO_ROOT / SHARD_BASELINE_FILENAME)
    )
    parser.add_argument(
        "--skip-shard",
        action="store_true",
        help="do not (re)record the sharded-index baseline",
    )
    parser.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="only record the in-process ingest measurement",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also (re)record the bounded-RSS memory baseline: a full "
        "xlarge out-of-core run in a fresh subprocess; the committed "
        "budget becomes the measured peak plus headroom (slow: minutes)",
    )
    parser.add_argument(
        "--memory-out", default=str(REPO_ROOT / MEMORY_BASELINE_FILENAME)
    )
    parser.add_argument(
        "--memory-scale",
        default="xlarge",
        help="scale preset for --memory (default xlarge)",
    )
    parser.add_argument(
        "--memory-headroom",
        type=float,
        default=2.0,
        help="budget_rss_mb = measured peak RSS x this factor (default "
        "2.0: generous enough for allocator/platform variance, tight "
        "enough that an unbounded store blows through it)",
    )
    parser.add_argument(
        "--reference-src",
        default=None,
        help="package root (…/src) of another checkout to time in the "
        "same sitting — e.g. a pre-change tree — recorded under "
        "'reference' with speedups relative to it",
    )
    parser.add_argument(
        "--reference-label",
        default="pre-change reference",
        help="free-form description of the --reference-src checkout",
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="also append one compact line of headline numbers to the "
        "perf-trajectory history (see --history-out)",
    )
    parser.add_argument(
        "--history-out",
        default=str(REPO_ROOT / HISTORY_FILENAME),
        help="history file --append-history grows (default: the "
        "committed BENCH_history.jsonl)",
    )
    args = parser.parse_args()

    record = {
        "recorded_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "ingest": run_bench(repeats=args.repeats),
    }

    if not args.skip_end_to_end:
        cmd = [sys.executable, "-m", "repro", "fig4", "--scale", "small"]
        batch_s = time_command(cmd, args.repeats)
        scalar_s = time_command(cmd + ["--scalar"], args.repeats)
        record["fig4_small_end_to_end"] = {
            "command": "python -m repro fig4 --scale small [--scalar]",
            "batch_seconds": round(batch_s, 4),
            "scalar_seconds": round(scalar_s, 4),
            "speedup": round(scalar_s / batch_s, 2),
            "note": (
                "end-to-end includes the fixed interpreter + numpy import "
                "floor (~0.2s) that ingest vectorization cannot remove; "
                "the ingest record above isolates the simulation itself"
            ),
        }

    if args.reference_src:
        ref_src = Path(args.reference_src).resolve()
        ref = {
            "label": args.reference_label,
            "workload_seconds": round(
                time_workload_in(ref_src, args.repeats), 4
            ),
        }
        commit = reference_commit(ref_src)
        if commit is not None:
            ref["commit"] = commit
        ref["workload_speedup"] = round(
            ref["workload_seconds"] / record["ingest"]["batch_seconds"], 2
        )
        if not args.skip_end_to_end:
            cmd = [sys.executable, "-m", "repro", "fig4", "--scale", "small"]
            ref["end_to_end_seconds"] = round(
                time_command(cmd, args.repeats, src=ref_src), 4
            )
            ref["end_to_end_speedup"] = round(
                ref["end_to_end_seconds"]
                / record["fig4_small_end_to_end"]["batch_seconds"],
                2,
            )
        record["reference"] = ref

    out = Path(args.out)
    out.write_text(json.dumps(record, indent=2) + "\n")
    print(json.dumps(record, indent=2))
    print(f"\nwrote {out}")

    restore_record = None
    if not args.skip_restore:
        restore_record = {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "restore": run_restore_bench(repeats=args.repeats),
        }
        restore_out = Path(args.restore_out)
        restore_out.write_text(json.dumps(restore_record, indent=2) + "\n")
        print(json.dumps(restore_record, indent=2))
        print(f"\nwrote {restore_out}")

    chunking_record = None
    if not args.skip_chunking:
        chunking_record = {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "chunking": run_chunking_bench(repeats=args.repeats),
        }
        chunking_out = Path(args.chunking_out)
        chunking_out.write_text(json.dumps(chunking_record, indent=2) + "\n")
        print(json.dumps(chunking_record, indent=2))
        print(f"\nwrote {chunking_out}")

    if not args.skip_shard:
        shard = run_shard_bench(repeats=args.repeats)
        shard["lookup_floor_per_s"] = SHARD_LOOKUP_FLOOR_PER_S
        shard_record = {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "shard": shard,
        }
        shard_out = Path(args.shard_out)
        shard_out.write_text(json.dumps(shard_record, indent=2) + "\n")
        print(json.dumps(shard_record, indent=2))
        print(f"\nwrote {shard_out}")

    memory_record = None
    if args.memory:
        probe = run_memory_bench(scale=args.memory_scale)
        memory_record = {
            "recorded_utc": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "budget_rss_mb": round(
                probe["peak_rss_mb"] * args.memory_headroom, 1
            ),
            "memory": probe,
        }
        memory_out = Path(args.memory_out)
        memory_out.write_text(json.dumps(memory_record, indent=2) + "\n")
        print(json.dumps(memory_record, indent=2))
        print(f"\nwrote {memory_out}")

    if args.append_history:
        ingest = record["ingest"]
        line = history_record(
            ingest=ingest,
            restore=restore_record["restore"] if restore_record else None,
            chunking=chunking_record["chunking"] if chunking_record else None,
            memory=memory_record["memory"] if memory_record else None,
            manifest=ingest.get("manifest"),
        )
        line["recorded_utc"] = record["recorded_utc"]
        history_path = append_history(line, Path(args.history_out))
        print(f"appended history line to {history_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
