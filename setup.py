"""Legacy setup shim.

The offline build environment lacks the `wheel` package, which PEP 517
editable installs require with this setuptools version; keeping a
setup.py lets `pip install -e . --no-build-isolation` use the legacy
develop path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
