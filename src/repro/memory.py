"""Bounded-RSS out-of-core driver (``python -m repro.memory``).

Runs a whole ingest-then-restore workload as a constant-memory
pipeline: backup jobs stream one at a time from the generator, sealed
containers spill to disk under a ``resident_containers`` budget,
finished recipes append to a :class:`~repro.storage.recipe_log
.RecipeLog` instead of accumulating in RAM, the ground-truth oracle
keeps its base array in a memory-mapped file, and restore loads one
recipe back at a time. The process's peak RSS is the headline number;
``BENCH_memory.json`` commits the budget it must stay under and
``repro bench --memory`` (and the nightly workflow) enforce it.

The driver is meant to run in a *fresh* subprocess so ``ru_maxrss``
reflects this workload and nothing else — that is why the bench
harness shells out to ``python -m repro.memory`` rather than calling
:func:`run_memory_probe` in-process.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

__all__ = ["run_memory_probe", "load_memory_budget", "main"]

#: default resident-container budget for the memory probe: enough for
#: ingest locality (DeFrag/DDFS touch recent containers), tiny against
#: the thousands an xlarge run seals
DEFAULT_RESIDENT = 64

#: how many of the newest backups the streaming-restore phase replays
RESTORE_LAST = 3


def run_memory_probe(
    scale: str = "xlarge",
    engine: str = "DeFrag",
    *,
    generations: Optional[int] = None,
    resident_containers: int = DEFAULT_RESIDENT,
    spill_dir: Optional[str] = None,
    restore_last: int = RESTORE_LAST,
    progress: bool = False,
) -> Dict:
    """Run the constant-memory pipeline; returns the JSON-able record.

    Args:
        scale: experiment preset name (see ``SCALE_NAMES``).
        engine: dedup engine display name.
        generations: truncate the workload to this many backups (the
            nightly smoke's knob); None runs the preset's full count.
        resident_containers: the store's resident budget.
        spill_dir: where container/recipe/oracle spill files live; a
            temporary directory (cleaned up afterwards) when None. The
            store carves its own ``store-<pid>-<seq>`` subdirectory out
            of this root, so concurrent probes (or parallel grid cells
            running out-of-core stores, ROADMAP item 5) can safely
            share one root.
        restore_last: newest backups replayed through the restore
            reader, one recipe at a time.
        progress: emit one stderr line per backup.
    """
    from repro.api import create_engine, create_reader, create_resources
    from repro.dedup.pipeline import GroundTruth, run_backup
    from repro.experiments.config import ExperimentConfig
    from repro.obs import get_active, peak_rss_mb
    from repro.segmenting.segmenter import ContentDefinedSegmenter
    from repro.storage.recipe_log import RecipeLog
    from repro.storage.store import StoreConfig
    from repro.workloads.generators import group_fs_66

    config = ExperimentConfig.by_name(scale)
    n_backups = config.n_backups if generations is None else int(generations)

    tmp = None
    if spill_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-spill-")
        spill_dir = tmp.name
    base = Path(spill_dir)
    base.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    try:
        store_config = StoreConfig(
            container_bytes=config.container_bytes,
            seal_seeks=0,
            cache_containers=config.restore_cache_containers,
            resident_containers=int(resident_containers),
            spill_dir=str(base / "containers"),
        )
        config = config.with_(n_backups=n_backups, store=store_config)
        resources = create_resources(config)
        eng = create_engine(engine, config, resources)
        segmenter = ContentDefinedSegmenter()
        gt = GroundTruth(spill_dir=str(base))
        recipe_log = RecipeLog(str(base / "recipes.log"))

        jobs = group_fs_66(
            per_user_bytes=config.per_user_bytes,
            seed=config.seed,
            n_users=config.n_users,
            n_backups=config.n_backups,
            churn=config.churn_full,
        )
        logical_bytes = 0
        dup_bytes = 0
        done = 0
        for job in jobs:
            report = run_backup(eng, job, segmenter, gt)
            recipe_log.append(report.recipe)
            logical_bytes += report.logical_bytes
            dup_bytes += report.true_dup_bytes or 0
            done += 1
            if progress:
                print(
                    f"[memory] backup {done}/{config.n_backups} "
                    f"({logical_bytes / 1e9:.2f} GB logical)",
                    file=sys.stderr,
                    flush=True,
                )
        ingest_sim_s = resources.disk.stats.total_time_s

        # streaming restore: recipes come back one at a time from the
        # log; the reader's assembly plan never materializes the stream
        reader = create_reader(resources.store, config)
        restore_seeks = 0
        restore_sim_s = 0.0
        for i in range(max(0, len(recipe_log) - restore_last), len(recipe_log)):
            recipe = recipe_log.load(i)
            rep = reader.restore(recipe)
            restore_seeks += rep.seeks
            restore_sim_s += rep.elapsed_seconds
            del recipe
        recipe_log.close()

        store = resources.store
        rss_mb = peak_rss_mb()
        obs = get_active()
        if obs.enabled:
            obs.registry.gauge("proc.peak_rss_mb").set(rss_mb)
        return {
            "kind": "memory",
            "scale": scale,
            "engine": engine,
            "n_backups": done,
            "n_users": config.n_users,
            "logical_bytes": int(logical_bytes),
            "true_dup_bytes": int(dup_bytes),
            "unique_fingerprints": gt.unique_fingerprints,
            "containers_sealed": store.stats.containers_sealed,
            "resident_containers": int(resident_containers),
            "spill": {
                "spilled": store.spill_stats.spilled,
                "evictions": store.spill_stats.evictions,
                "faults": store.spill_stats.faults,
                "bytes_spilled": store.spill_stats.bytes_spilled,
                "bytes_faulted": store.spill_stats.bytes_faulted,
            },
            "ingest_sim_seconds": round(ingest_sim_s, 6),
            "restore_backups": min(restore_last, done),
            "restore_seeks": int(restore_seeks),
            "restore_sim_seconds": round(restore_sim_s, 6),
            "wall_seconds": round(time.perf_counter() - t0, 3),
            "peak_rss_mb": round(rss_mb, 1),
        }
    finally:
        if tmp is not None:
            tmp.cleanup()


def load_memory_budget(path: str = "BENCH_memory.json") -> Optional[Dict]:
    """The committed memory-bench baseline, or None if absent."""
    p = Path(path)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def check_memory_gate(record: Dict, baseline: Dict) -> Optional[str]:
    """The bounded-RSS gate: peak RSS must stay under the committed
    budget (an absolute ceiling, not a regression factor — "bounded"
    is the property under test). Returns a failure message or None."""
    budget = float(baseline["budget_rss_mb"])
    peak = float(record["peak_rss_mb"])
    if peak <= 0:
        return "peak RSS unmeasurable on this platform; cannot gate"
    if peak > budget:
        return (
            f"peak RSS {peak:.1f} MB exceeds the committed budget "
            f"{budget:.1f} MB (BENCH_memory.json)"
        )
    return None


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.memory",
        description="bounded-RSS out-of-core ingest+restore probe",
    )
    parser.add_argument("--scale", default="xlarge")
    parser.add_argument("--engine", default="DeFrag")
    parser.add_argument(
        "--generations",
        type=int,
        default=None,
        help="truncate the workload to this many backups (smoke runs)",
    )
    parser.add_argument(
        "--resident-containers", type=int, default=DEFAULT_RESIDENT
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        help="spill directory (default: a temporary one, removed after)",
    )
    parser.add_argument(
        "--restore-last", type=int, default=RESTORE_LAST
    )
    parser.add_argument("--json-out", default=None, help="write the record here")
    parser.add_argument(
        "--gate",
        nargs="?",
        const="BENCH_memory.json",
        default=None,
        help="enforce the committed RSS budget (optional baseline path)",
    )
    parser.add_argument(
        "--progress", action="store_true", help="per-backup stderr progress"
    )
    args = parser.parse_args(argv)

    record = run_memory_probe(
        scale=args.scale,
        engine=args.engine,
        generations=args.generations,
        resident_containers=args.resident_containers,
        spill_dir=args.spill_dir,
        restore_last=args.restore_last,
        progress=args.progress,
    )
    text = json.dumps(record, indent=2, sort_keys=True)
    if args.json_out:
        Path(args.json_out).write_text(text + "\n")
    print(text)

    if args.gate is not None:
        baseline = load_memory_budget(args.gate)
        if baseline is None:
            print(f"memory gate: no baseline at {args.gate}", file=sys.stderr)
            return 2
        failure = check_memory_gate(record, baseline)
        if failure is not None:
            print(f"memory gate FAILED: {failure}", file=sys.stderr)
            return 1
        print(
            f"memory gate ok: {record['peak_rss_mb']:.1f} MB "
            f"<= {baseline['budget_rss_mb']:.1f} MB budget",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
