"""A simulated clock.

All performance numbers in this reproduction are *simulated* time driven
by the disk model and an analytic CPU cost term — never wall-clock — so a
pure-Python implementation cannot skew the evaluation (see DESIGN.md §2,
"Substitutions").
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated clock measured in seconds.

    Components call :meth:`advance` with the cost of each modeled
    operation; experiments read :attr:`now` deltas to compute throughput.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start negative: {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be >= 0); returns new now."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Seconds elapsed since an earlier reading ``t0``."""
        return self._now - t0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock(now={self._now:.6f})"
