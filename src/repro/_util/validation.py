"""Small argument-validation helpers used across the package."""

from __future__ import annotations


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it unchanged."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it unchanged."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Require ``0 <= value <= 1``; return it unchanged."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
