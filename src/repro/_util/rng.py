"""Deterministic RNG derivation.

Every stochastic component takes a seed; nested components derive
independent child seeds from the parent seed plus a string tag so that
changing one component's draw count never perturbs another's stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(seed: int, *tags: "str | int") -> int:
    """Derive a stable 63-bit child seed from ``seed`` and ``tags``.

    The derivation hashes the textual rendering of the parent seed and all
    tags, so it is stable across processes and Python versions (unlike
    ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(seed)).encode())
    for tag in tags:
        h.update(b"\x1f")
        h.update(str(tag).encode())
    return int.from_bytes(h.digest(), "little") & 0x7FFF_FFFF_FFFF_FFFF


def rng_from(seed: int, *tags: "str | int") -> np.random.Generator:
    """Return a ``numpy`` Generator seeded by :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(seed, *tags))
