"""Byte-size units, parsing and human-readable formatting."""

from __future__ import annotations

import re

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

_SUFFIXES = {
    "": 1,
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_size(text: "str | int | float") -> int:
    """Parse a human size spec (``"4MiB"``, ``"8k"``, ``4096``) into bytes.

    Integers and floats pass through (floats are rounded). Suffixes are
    case-insensitive and binary (``k`` == KiB == 1024).

    Raises:
        ValueError: if the string cannot be parsed or the size is negative.
    """
    if isinstance(text, bool):  # bool is an int subclass; reject it
        raise ValueError(f"not a size: {text!r}")
    if isinstance(text, (int, float)):
        if text < 0:
            raise ValueError(f"size must be >= 0, got {text}")
        return int(round(text))
    m = _SIZE_RE.match(text)
    if not m:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(m.group(1))
    suffix = m.group(2).lower()
    if suffix not in _SUFFIXES:
        raise ValueError(f"unknown size suffix {m.group(2)!r} in {text!r}")
    return int(round(value * _SUFFIXES[suffix]))


def format_bytes(n: "int | float") -> str:
    """Format a byte count with a binary suffix, e.g. ``format_bytes(2*MIB)
    == "2.00 MiB"``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, div in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= div:
            return f"{sign}{n / div:.2f} {unit}"
    return f"{sign}{n:.0f} B"


def format_rate(bytes_per_second: float) -> str:
    """Format a throughput as ``MB/s`` style text (binary units)."""
    return f"{format_bytes(bytes_per_second)}/s"


def format_seconds(seconds: float) -> str:
    """Format a duration compactly (``532 ms``, ``2.41 s``, ``3 m 11 s``)."""
    if seconds < 0:
        return "-" + format_seconds(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)} m {rem:.0f} s"
