"""Shared utilities: unit handling, seeded RNG helpers, simulated clock.

These helpers are internal plumbing used by every subsystem; they carry no
deduplication semantics of their own.
"""

from repro._util.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    format_bytes,
    format_rate,
    format_seconds,
    parse_size,
)
from repro._util.rng import derive_seed, rng_from
from repro._util.clock import SimClock
from repro._util.validation import (
    check_fraction,
    check_positive,
    check_nonnegative,
)

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_bytes",
    "format_rate",
    "format_seconds",
    "parse_size",
    "derive_seed",
    "rng_from",
    "SimClock",
    "check_fraction",
    "check_positive",
    "check_nonnegative",
]
