"""The on-disk full chunk index.

The authoritative fingerprint → location map. It is hash-bucketed on
disk; a lookup that misses the small RAM page cache costs one random
read (seek + bucket page transfer) — the paper's "fetch the chunk index
from disk to RAM page by page" bottleneck.

Inserts are buffered and merged in batch (as DDFS does), so they carry no
per-chunk disk charge here; their amortized cost is folded into the
engine's per-chunk CPU constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional

import numpy as np

from repro._util import KIB, check_positive
from repro.index.cache import LRUCache
from repro.storage.disk import DiskModel


class ChunkLocation(NamedTuple):
    """Where a stored chunk lives.

    Attributes:
        cid: container id holding the physical copy.
        sid: stored-segment id the copy was written under (the identity of
            ``Seg_k`` in the paper's SPL definition).
    """

    cid: int
    sid: int


@dataclass
class IndexStats:
    """Cumulative index-access accounting.

    ``negative_lookups`` counts lookups that found no entry — each one
    still paid for its bucket page like any other lookup (absence is only
    proven by reading the bucket), so the counter makes the
    negative-lookup asymmetry directly observable and lets the batched
    and scalar ingest paths be compared on it.
    """

    lookups: int = 0
    page_faults: int = 0
    page_hits: int = 0
    inserts: int = 0
    updates: int = 0
    negative_lookups: int = 0
    flushes: int = 0
    entries_flushed: int = 0
    sweeps: int = 0
    sweep_pages: int = 0

    @property
    def fault_rate(self) -> float:
        """Fraction of lookups that went to disk."""
        return self.page_faults / self.lookups if self.lookups else 0.0


class DiskChunkIndex:
    """Hash-bucketed on-disk chunk index with a RAM page cache.

    Args:
        disk: disk model charged for bucket page faults.
        expected_entries: sizing hint; fixes the bucket count so page ids
            are stable for the life of the index.
        page_bytes: bucket page size transferred per fault (default 4 KiB).
        entry_bytes: on-disk bytes per index entry (fingerprint + location).
        page_cache_pages: RAM page-cache capacity, in pages (0 disables).
        journaled: track which entries are merely *buffered* (not yet
            flushed to disk) so a simulated crash can lose them; off by
            default — the tracking is the fault layer's cost, and the
            default path must stay zero-overhead.
        retry: transient-IO retry policy for bucket reads and flushes
            (only meaningful with a :class:`~repro.faults.FaultyDisk`).
    """

    def __init__(
        self,
        disk: DiskModel,
        expected_entries: int = 1_000_000,
        page_bytes: int = 4 * KIB,
        entry_bytes: int = 40,
        page_cache_pages: int = 256,
        journaled: bool = False,
        retry=None,
    ) -> None:
        check_positive("expected_entries", expected_entries)
        check_positive("page_bytes", page_bytes)
        check_positive("entry_bytes", entry_bytes)
        self.disk = disk
        self.page_bytes = int(page_bytes)
        self.entry_bytes = int(entry_bytes)
        entries_per_page = max(1, self.page_bytes // self.entry_bytes)
        self.n_pages = max(1, -(-int(expected_entries) // entries_per_page))
        self._map: Dict[int, ChunkLocation] = {}
        self._page_cache: Optional[LRUCache] = (
            LRUCache(page_cache_pages) if page_cache_pages > 0 else None
        )
        self.stats = IndexStats()
        # journaled mode: fp -> value before the first unflushed write
        # (None if absent), so a crash can roll the RAM image back to the
        # last durable flush. None disables all tracking.
        self._unflushed: Optional[Dict[int, Optional[ChunkLocation]]] = (
            {} if journaled else None
        )
        if retry is not None:
            from repro.faults import with_retry

            self._disk_read = with_retry(disk, retry, disk.read, "index.read")
            self._disk_write = with_retry(disk, retry, disk.write, "index.flush")
        else:
            self._disk_read = disk.read
            self._disk_write = disk.write
        from repro.faults import injector_of

        self._inj = injector_of(disk)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, fp: int) -> bool:
        """RAM-model membership check (no disk charge) — for tests,
        oracles, and batch-path *routing* (deciding which deferred
        :meth:`lookup_many` batch a chunk joins; every routed chunk still
        pays its authoritative lookup). Engines must not use it to skip
        a lookup's charge."""
        return int(fp) in self._map

    def page_of(self, fp: int) -> int:
        """Stable bucket page id for a fingerprint."""
        return int(fp) % self.n_pages

    def lookup(self, fp: int) -> Optional[ChunkLocation]:
        """Authoritative lookup, charging a disk page fault unless the
        bucket page is cached in RAM.

        Note the asymmetry with a dict: a *negative* lookup (fingerprint
        absent — e.g. a bloom false positive) costs the same page fault,
        because absence is only proven by reading the bucket. Negative
        results are tallied in ``stats.negative_lookups``.
        """
        fp = int(fp)
        self.stats.lookups += 1
        page = self.page_of(fp)
        if self._page_cache is not None and self._page_cache.get(page) is not None:
            self.stats.page_hits += 1
        else:
            self.stats.page_faults += 1
            self._disk_read(self.page_bytes, seeks=1)
            if self._page_cache is not None:
                self._page_cache.put(page, True)
        loc = self._map.get(fp)
        if loc is None:
            self.stats.negative_lookups += 1
        return loc

    def lookup_many(self, fps) -> List[Optional[ChunkLocation]]:
        """Authoritative lookup of a fingerprint run, in order.

        Misses naturally group by bucket-page id: the first lookup that
        faults a page brings it into the RAM page cache, so subsequent
        lookups hashing to the same page within the run hit in RAM — one
        simulated fault per distinct faulted page (while the pages fit in
        the cache). The page cache and disk are driven in exactly the
        sequence ``[lookup(fp) for fp in fps]`` would drive them, so
        simulated-cost accounting (faults, stats, clock) is preserved to
        the bit; only the per-call Python overhead is batched away.

        Returns one location (or None) per fingerprint.
        """
        if isinstance(fps, np.ndarray):
            fps = fps.tolist()
        stats = self.stats
        page_cache = self._page_cache
        map_get = self._map.get
        n_pages = self.n_pages
        page_bytes = self.page_bytes
        disk_read = self._disk_read
        out: List[Optional[ChunkLocation]] = []
        append = out.append
        lookups = hits = faults = negatives = 0
        for fp in fps:
            fp = int(fp)
            lookups += 1
            page = fp % n_pages
            if page_cache is not None and page_cache.get(page) is not None:
                hits += 1
            else:
                faults += 1
                disk_read(page_bytes, seeks=1)
                if page_cache is not None:
                    page_cache.put(page, True)
            loc = map_get(fp)
            if loc is None:
                negatives += 1
            append(loc)
        stats.lookups += lookups
        stats.page_hits += hits
        stats.page_faults += faults
        stats.negative_lookups += negatives
        return out

    def lookup_batch_sorted(self, fps) -> List[Optional[ChunkLocation]]:
        """Out-of-line batch lookup: resolve the whole batch with one
        sequential sweep of the on-disk bucket file (one positioning
        plus the full index transfer), merging the page-sorted batch
        against it — the sorted-merge access pattern out-of-line dedup
        exists to exploit. The cost is one index scan regardless of
        batch size or order, so it beats :meth:`lookup_many` whenever a
        batch would fault more pages than the file holds — which is why
        maintenance passes can afford exact dedup that would be ruinous
        chunk-at-a-time inline. The RAM page cache is neither consulted
        nor polluted (the sweep is scan-resistant). Results are in
        input order, one location (or None) per fingerprint.
        """
        if isinstance(fps, np.ndarray):
            fps = fps.tolist()
        stats = self.stats
        map_get = self._map.get
        out: List[Optional[ChunkLocation]] = []
        negatives = 0
        for fp in fps:
            loc = map_get(int(fp))
            if loc is None:
                negatives += 1
            out.append(loc)
        stats.lookups += len(out)
        stats.negative_lookups += negatives
        if out:
            stats.sweeps += 1
            stats.sweep_pages += self.n_pages
            self._disk_read(self.n_pages * self.page_bytes, seeks=1)
        return out

    def _track(self, fp: int) -> None:
        """Journaled mode: remember the pre-write value so a crash can
        roll the RAM image back to the last durable flush."""
        unflushed = self._unflushed
        if fp not in unflushed:  # type: ignore[operator]
            unflushed[fp] = self._map.get(fp)  # type: ignore[index]

    def insert(self, fp: int, location: ChunkLocation) -> None:
        """Record a newly written chunk (batched write; no disk charge)."""
        fp = int(fp)
        if self._unflushed is not None:
            self._track(fp)
        self._map[fp] = location
        self.stats.inserts += 1

    def insert_many(self, fps, locations) -> None:
        """Record a run of newly written chunks — ``insert`` pairwise,
        batched (no disk charge either way). ``fps`` must be plain ints."""
        if self._unflushed is not None:
            for fp in fps:
                self._track(fp)
        self._map.update(zip(fps, locations))
        self.stats.inserts += len(locations)

    def update_many(self, fps, locations) -> None:
        """Re-point a run of existing fingerprints — ``update`` pairwise,
        batched. Later pairs win on a repeated fingerprint, exactly as
        sequential calls would. ``fps`` must be plain ints."""
        if self._unflushed is not None:
            for fp in fps:
                self._track(fp)
        self._map.update(zip(fps, locations))
        self.stats.updates += len(locations)

    def update(self, fp: int, location: ChunkLocation) -> None:
        """Re-point an existing fingerprint at a fresher physical copy
        (DeFrag's rewrite path). Batched like :meth:`insert`."""
        fp = int(fp)
        if self._unflushed is not None:
            self._track(fp)
        self._map[fp] = location
        self.stats.updates += 1

    # ------------------------------------------------------------------
    # durability (journaled mode) + crash/recovery support
    # ------------------------------------------------------------------

    def flush(self) -> int:
        """Persist the buffered inserts/updates (the per-backup index
        merge DDFS batches). Returns the number of entries made durable.

        In the default (non-journaled) mode this is a free no-op: the
        amortized merge cost is already folded into the engine's
        per-chunk CPU constant, and there is no fault model to observe a
        lost flush. In journaled mode the merge is charged as one
        sequential write, and the fault plan may *drop* it — the caller
        believes it succeeded, but the entries stay volatile and a later
        crash loses them (which is why recovery rebuilds the index from
        container metadata instead of trusting the flush watermark).
        """
        if self._unflushed is None:
            return 0
        n = len(self._unflushed)
        if n == 0:
            return 0
        if self._inj is not None:
            with self._inj.tagged("index_flush"):
                self._disk_write(n * self.entry_bytes, seeks=1)
            if self._inj.take_flush_drop():
                return 0
        else:
            self._disk_write(n * self.entry_bytes, seeks=1)
        self._unflushed.clear()
        self.stats.flushes += 1
        self.stats.entries_flushed += n
        return n

    def crash(self) -> None:
        """Simulate power loss: every entry written since the last
        *successful* flush reverts to its pre-write value (dropped
        flushes never cleared the buffer, so their entries are lost here
        too — exactly the failure the recovery rebuild heals)."""
        if self._unflushed is None:
            return
        for fp, old in self._unflushed.items():
            if old is None:
                self._map.pop(fp, None)
            else:
                self._map[fp] = old
        self._unflushed.clear()

    def load_recovered(self, entries: Dict[int, ChunkLocation]) -> int:
        """Replace the whole map with a recovery-scanner rebuild.

        Bookkeeping only — the scanner charges the container-log scan
        and the rebuilt-index write itself. The rebuilt entries count as
        flushed (they were just written durably)."""
        self._map = dict(entries)
        if self._unflushed is not None:
            self._unflushed.clear()
        return len(self._map)

    def peek(self, fp: int) -> Optional[ChunkLocation]:
        """Location without any disk charge (oracle/bookkeeping use)."""
        return self._map.get(int(fp))

    @property
    def disk_bytes(self) -> int:
        """On-disk footprint of the index."""
        return len(self._map) * self.entry_bytes
