"""Bloom filter ("summary vector" in DDFS).

A RAM bit array that answers "definitely new" / "possibly seen" for chunk
fingerprints, letting the engine skip the on-disk index for the common
new-chunk case. Implemented over a numpy uint64 word array with
double-hashing (Kirsch–Mitzenmacher): k probe positions derived from two
independent 64-bit mixes of the fingerprint. All operations come in
scalar and vectorized (array) forms.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import check_fraction, check_positive
from repro.chunking.fingerprint import splitmix64_array

_U64 = np.uint64


class BloomFilter:
    """Bloom filter sized for ``capacity`` entries at ``fp_rate``.

    Attributes:
        n_bits: bit-array width.
        n_hashes: probes per key.
        n_added: keys inserted so far.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        check_positive("capacity", capacity)
        check_fraction("fp_rate", fp_rate)
        if fp_rate in (0.0, 1.0):
            raise ValueError("fp_rate must be strictly inside (0, 1)")
        self.capacity = int(capacity)
        self.fp_rate = float(fp_rate)
        ln2 = math.log(2.0)
        n_bits = max(64, int(math.ceil(-capacity * math.log(fp_rate) / (ln2 * ln2))))
        self.n_bits = n_bits
        self.n_hashes = max(1, int(round((n_bits / capacity) * ln2)))
        self._words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)
        self.n_added = 0

    # -- hashing --------------------------------------------------------

    def _positions(self, fps: np.ndarray) -> np.ndarray:
        """(n, k) array of bit positions for each fingerprint."""
        fps = np.asarray(fps, dtype=np.uint64)
        with np.errstate(over="ignore"):
            h1 = splitmix64_array(fps ^ _U64(0xA5A5A5A5A5A5A5A5))
            h2 = splitmix64_array(fps ^ _U64(0x5EED5EED5EED5EED)) | _U64(1)
            ks = np.arange(self.n_hashes, dtype=np.uint64)
            probes = h1[:, None] + ks[None, :] * h2[:, None]
        return (probes % _U64(self.n_bits)).astype(np.uint64)

    # -- scalar API -----------------------------------------------------

    def add(self, fp: int) -> None:
        """Insert one fingerprint."""
        self.add_many(np.asarray([fp], dtype=np.uint64))

    def __contains__(self, fp: int) -> bool:
        return bool(self.contains_many(np.asarray([fp], dtype=np.uint64))[0])

    # -- vectorized API ---------------------------------------------------

    def add_many(self, fps: np.ndarray) -> None:
        """Insert an array of fingerprints."""
        fps = np.asarray(fps, dtype=np.uint64)
        if fps.size == 0:
            return
        pos = self._positions(fps).ravel()
        words = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        np.bitwise_or.at(self._words, words, bits)
        self.n_added += int(fps.size)

    def contains_many(self, fps: np.ndarray) -> np.ndarray:
        """Boolean membership array for ``fps``."""
        fps = np.asarray(fps, dtype=np.uint64)
        if fps.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(fps)
        words = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        hit = (self._words[words] & bits) != 0
        return hit.all(axis=1)

    # -- segment batching -------------------------------------------------

    def begin_batch(self, fps: np.ndarray) -> "BloomBatch":
        """Precompute the probe positions of one segment's fingerprints.

        The returned :class:`BloomBatch` answers per-chunk membership and
        performs per-chunk inserts against *this* filter without re-hashing,
        so an engine's batch ingest path pays the double-hashing cost once
        per segment instead of once per chunk. Results are bit-identical to
        the scalar ``fp in bloom`` / ``add(fp)`` sequence, including the
        case where an ``add`` earlier in the segment flips a later chunk's
        membership (a same-segment-induced false positive).
        """
        return BloomBatch(self, fps)

    # -- introspection ----------------------------------------------------

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return set_bits / self.n_bits

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current load."""
        return (1.0 - math.exp(-self.n_hashes * self.n_added / self.n_bits)) ** self.n_hashes

    @property
    def ram_bytes(self) -> int:
        """RAM footprint of the bit array."""
        return int(self._words.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(capacity={self.capacity}, bits={self.n_bits}, "
            f"k={self.n_hashes}, added={self.n_added})"
        )


class BloomBatch:
    """One segment's fingerprints, hashed once, probed per chunk.

    ``contains(i)`` / ``add(i)`` refer to the i-th fingerprint of the
    array handed to :meth:`BloomFilter.begin_batch`. Membership uses the
    snapshot taken at construction (bits never clear, so a set bit stays
    authoritative) plus the batch's own pending inserts — the only way a
    snapshot-absent chunk's answer can change mid-segment. Inserts are
    staged in a per-word pending dict and folded into the filter's word
    array by :meth:`flush` in one vector OR; the caller must flush at the
    end of the segment walk.
    """

    __slots__ = (
        "_bloom",
        "_rows",
        "_bits",
        "_m0",
        "_hit",
        "_pos",
        "_hit_arr",
        "_pending",
        "_staged",
        "_added_pos",
    )

    def __init__(self, bloom: BloomFilter, fps: np.ndarray) -> None:
        fps = np.asarray(fps, dtype=np.uint64)
        self._bloom = bloom
        self._pending: dict = {}
        # inserts staged in bulk by try_stage, folded lazily (contains)
        # or at flush; _added_pos tracks every insert's probe positions
        # for try_stage's coverage check
        self._staged: list = []
        self._added_pos: list = []
        if fps.size == 0:
            self._rows: list = []
            self._bits: list = []
            self._m0: list = []
            self._hit: list = []
            self._pos = np.zeros((0, 0), dtype=np.uint64)
            self._hit_arr = np.zeros((0, 0), dtype=bool)
            return
        pos = bloom._positions(fps)
        rows = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        hit = (bloom._words[rows] & bits) != 0
        self._m0 = hit.all(axis=1).tolist()
        self._rows = rows.tolist()
        self._bits = bits.tolist()
        # per-probe snapshot answers: bits never clear, so a snapshot-set
        # probe stays set and only snapshot-unset probes can be flipped
        # (by a pending insert)
        self._hit = hit.tolist()
        self._pos = pos
        self._hit_arr = hit

    def negatives(self) -> np.ndarray:
        """Boolean mask of the chunks whose *snapshot* membership is
        negative (the only chunks a pending insert could still flip)."""
        return ~np.asarray(self._m0, dtype=bool)

    def contains(self, i: int) -> bool:
        """Membership of fingerprint ``i``, as of now (not batch start)."""
        if self._m0[i]:
            return True
        if self._staged:
            self._materialize()
        pending = self._pending
        if not pending:
            return False
        get = pending.get
        for row, bit, h in zip(self._rows[i], self._bits[i], self._hit[i]):
            if not h and not get(row, 0) & bit:
                return False
        return True

    def add(self, i: int) -> None:
        """Insert fingerprint ``i`` (visible to later ``contains`` calls)."""
        pending = self._pending
        get = pending.get
        for row, bit in zip(self._rows[i], self._bits[i]):
            pending[row] = get(row, 0) | bit
        self._added_pos.append(self._pos[i])
        self._bloom.n_added += 1

    def try_stage(self, lo: int, hi: int) -> bool:
        """Stage the inserts of chunks ``[lo, hi)`` in one batch — but only
        if every one of them is *provably* still absent, i.e. each has a
        snapshot-unset probe that no other insert of this batch (staged,
        scalar, or a peer inside the run itself) could have set. Returns
        False without staging anything when the proof fails (probe
        collision — the caller falls back to the scalar ladder, whose
        per-chunk ``contains``/``add`` sequence handles the collision
        exactly); the check is conservative, so a True answer is always
        bit-identical to the scalar sequence.
        """
        sub = self._pos[lo:hi]
        miss = ~self._hit_arr[lo:hi]
        flat = sub.ravel()
        uniq, inv, counts = np.unique(flat, return_inverse=True, return_counts=True)
        # a probe is a valid witness if no run peer shares it ...
        solo = (counts == 1)[inv].reshape(sub.shape)
        if self._added_pos:
            # ... and no earlier insert of this batch already set it
            added = np.concatenate([a.ravel() for a in self._added_pos])
            solo &= ~np.isin(flat, added).reshape(sub.shape)
        if not bool((solo & miss).any(axis=1).all()):
            return False
        self._staged.append(sub)
        self._added_pos.append(sub)
        self._bloom.n_added += hi - lo
        return True

    def _materialize(self) -> None:
        """Fold staged bulk inserts into the pending per-word dict so the
        scalar ``contains`` fast path sees them."""
        pos = np.concatenate([b.ravel() for b in self._staged])
        self._staged.clear()
        rows = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        order = np.argsort(rows, kind="stable")
        rows_s = rows[order]
        bits_s = bits[order]
        uniq, start = np.unique(rows_s, return_index=True)
        ors = np.bitwise_or.reduceat(bits_s, start)
        pending = self._pending
        get = pending.get
        for r, v in zip(uniq.tolist(), ors.tolist()):
            pending[r] = get(r, 0) | v

    def flush(self) -> None:
        """Fold pending and staged inserts into the filter's word array."""
        for block in self._staged:
            pos = block.ravel()
            rows = (pos >> _U64(6)).astype(np.int64)
            bits = _U64(1) << (pos & _U64(63))
            np.bitwise_or.at(self._bloom._words, rows, bits)
        self._staged.clear()
        pending = self._pending
        if not pending:
            return
        rows = np.fromiter(pending.keys(), dtype=np.int64, count=len(pending))
        vals = np.fromiter(pending.values(), dtype=np.uint64, count=len(pending))
        # keys are unique, so plain fancy-index OR is safe
        self._bloom._words[rows] |= vals
        pending.clear()
