"""Bloom filter ("summary vector" in DDFS).

A RAM bit array that answers "definitely new" / "possibly seen" for chunk
fingerprints, letting the engine skip the on-disk index for the common
new-chunk case. Implemented over a numpy uint64 word array with
double-hashing (Kirsch–Mitzenmacher): k probe positions derived from two
independent 64-bit mixes of the fingerprint. All operations come in
scalar and vectorized (array) forms.
"""

from __future__ import annotations

import math

import numpy as np

from repro._util import check_fraction, check_positive
from repro.chunking.fingerprint import splitmix64_array

_U64 = np.uint64


class BloomFilter:
    """Bloom filter sized for ``capacity`` entries at ``fp_rate``.

    Attributes:
        n_bits: bit-array width.
        n_hashes: probes per key.
        n_added: keys inserted so far.
    """

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        check_positive("capacity", capacity)
        check_fraction("fp_rate", fp_rate)
        if fp_rate in (0.0, 1.0):
            raise ValueError("fp_rate must be strictly inside (0, 1)")
        self.capacity = int(capacity)
        self.fp_rate = float(fp_rate)
        ln2 = math.log(2.0)
        n_bits = max(64, int(math.ceil(-capacity * math.log(fp_rate) / (ln2 * ln2))))
        self.n_bits = n_bits
        self.n_hashes = max(1, int(round((n_bits / capacity) * ln2)))
        self._words = np.zeros((n_bits + 63) // 64, dtype=np.uint64)
        self.n_added = 0

    # -- hashing --------------------------------------------------------

    def _positions(self, fps: np.ndarray) -> np.ndarray:
        """(n, k) array of bit positions for each fingerprint."""
        fps = np.asarray(fps, dtype=np.uint64)
        with np.errstate(over="ignore"):
            h1 = splitmix64_array(fps ^ _U64(0xA5A5A5A5A5A5A5A5))
            h2 = splitmix64_array(fps ^ _U64(0x5EED5EED5EED5EED)) | _U64(1)
            ks = np.arange(self.n_hashes, dtype=np.uint64)
            probes = h1[:, None] + ks[None, :] * h2[:, None]
        return (probes % _U64(self.n_bits)).astype(np.uint64)

    # -- scalar API -----------------------------------------------------

    def add(self, fp: int) -> None:
        """Insert one fingerprint."""
        self.add_many(np.asarray([fp], dtype=np.uint64))

    def __contains__(self, fp: int) -> bool:
        return bool(self.contains_many(np.asarray([fp], dtype=np.uint64))[0])

    # -- vectorized API ---------------------------------------------------

    def add_many(self, fps: np.ndarray) -> None:
        """Insert an array of fingerprints."""
        fps = np.asarray(fps, dtype=np.uint64)
        if fps.size == 0:
            return
        pos = self._positions(fps).ravel()
        words = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        np.bitwise_or.at(self._words, words, bits)
        self.n_added += int(fps.size)

    def contains_many(self, fps: np.ndarray) -> np.ndarray:
        """Boolean membership array for ``fps``."""
        fps = np.asarray(fps, dtype=np.uint64)
        if fps.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(fps)
        words = (pos >> _U64(6)).astype(np.int64)
        bits = _U64(1) << (pos & _U64(63))
        hit = (self._words[words] & bits) != 0
        return hit.all(axis=1)

    # -- introspection ----------------------------------------------------

    @property
    def fill_ratio(self) -> float:
        """Fraction of bits set."""
        set_bits = int(np.unpackbits(self._words.view(np.uint8)).sum())
        return set_bits / self.n_bits

    def expected_fp_rate(self) -> float:
        """Theoretical false-positive rate at the current load."""
        return (1.0 - math.exp(-self.n_hashes * self.n_added / self.n_bits)) ** self.n_hashes

    @property
    def ram_bytes(self) -> int:
        """RAM footprint of the bit array."""
        return int(self._words.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BloomFilter(capacity={self.capacity}, bits={self.n_bits}, "
            f"k={self.n_hashes}, added={self.n_added})"
        )
