"""RAM caches: a generic LRU and the locality-preserving prefetch cache.

``FingerprintPrefetchCache`` is the mechanism the paper's throughput
argument revolves around: on an on-disk index hit, DDFS prefetches the
*whole metadata section* of the container holding the duplicate, betting
that the following stream chunks are duplicates stored nearby. When
placement de-linearizes, that bet pays off less and less — each prefetch
serves fewer subsequent chunks, page faults multiply, throughput falls
(Fig. 2). The cache makes that effect measurable: it reports hits per
inserted unit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import repeat
from typing import Any, Dict, Hashable, Iterable, Optional

import numpy as np

from repro._util import check_positive


class LRUCache:
    """Minimal LRU map with a fixed entry capacity."""

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or None."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite, evicting the least recently used entry."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class PrefetchCacheStats:
    """Hit/miss accounting for the prefetch cache."""

    lookups: int = 0
    hits: int = 0
    units_inserted: int = 0
    units_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def hits_per_unit(self) -> float:
        """Average RAM hits bought by one prefetched unit — the direct
        measure of duplicate locality the paper discusses."""
        return self.hits / self.units_inserted if self.units_inserted else 0.0



class FingerprintPrefetchCache:
    """LRU cache of prefetched metadata *units* (containers or blocks).

    A unit is an id plus the array of fingerprints it holds. Lookups map a
    fingerprint to the unit that supplied it (refreshing that unit's
    recency); inserting past capacity evicts whole units and their
    fingerprints.

    The fingerprint → unit mapping is a plain dict maintained
    incrementally on unit insert/evict: upserting a unit's fingerprints
    and unmapping an evicted unit's both cost O(unit), never O(cache) —
    inserting into a flat sorted array would copy the whole mapping per
    prefetch. Ties between units holding the same fingerprint resolve to
    the most recently inserted one (dict-update semantics). Scalar
    :meth:`lookup` and batch :meth:`lookup_many` read the same dict, so
    the two ingest paths can never disagree.

    Args:
        capacity_units: number of units held (DDFS caches on the order of
            hundreds of container metadata sections).
    """

    def __init__(self, capacity_units: int) -> None:
        check_positive("capacity_units", capacity_units)
        self.capacity_units = int(capacity_units)
        self._units: "OrderedDict[int, np.ndarray]" = OrderedDict()
        # fingerprint -> covering unit id
        self._map: Dict[int, int] = {}
        # uid -> (source array, key list): unit contents are immutable
        # (sealed containers / sealed blocks), so the int conversion is
        # paid once per unit, not per re-prefetch; the source array is
        # kept to detect a uid reused for different contents (tests may
        # do that; real units never do)
        self._derived: Dict[int, tuple] = {}
        self.stats = PrefetchCacheStats()
        # optional (uid, n_fingerprints) eviction callback, wired by the
        # observability layer when event tracing is on
        self.on_evict = None
        # bound LRU recency refresh for batch walks: semantically one
        # consumed cache hit minus its stats, which the walk accounts in
        # bulk via count_hits/count_probes (zero wrapper overhead on the
        # per-hit path; the OrderedDict object survives clear())
        self.touch_unit = self._units.move_to_end

    def __contains__(self, fp: int) -> bool:
        return int(fp) in self._map

    def __len__(self) -> int:
        return len(self._units)

    def lookup(self, fp: int) -> Optional[int]:
        """Return the unit id whose prefetch covers ``fp``, or None."""
        self.stats.lookups += 1
        uid = self._map.get(int(fp))
        if uid is None:
            return None
        self._units.move_to_end(uid)
        self.stats.hits += 1
        return uid

    # -- batch interface ------------------------------------------------

    def lookup_many(self, fps) -> np.ndarray:
        """Batched membership: the unit id covering each fingerprint,
        or -1. Accepts an array or a list of native ints (callers holding
        a ``.tolist()`` of the segment pass it to skip reconversion).
        Pure — no stats, no recency refresh; batch callers account
        consumed probes via :meth:`touch` / :meth:`count_probes` so the
        scalar and batch paths meter identically."""
        keys = fps.tolist() if isinstance(fps, np.ndarray) else fps
        n = len(keys)
        if n == 0 or not self._map:
            return np.full(n, -1, dtype=np.int64)
        return np.fromiter(
            map(self._map.get, keys, repeat(-1)), dtype=np.int64, count=n
        )

    def touch(self, uid: int) -> None:
        """Account one consumed cache hit: recency refresh + hit count
        (the batch-path equivalent of a successful :meth:`lookup`)."""
        self._units.move_to_end(uid)
        self.stats.hits += 1

    def count_hits(self, n: int) -> None:
        """Account ``n`` consumed cache hits whose recency refreshes were
        already applied one by one via :attr:`touch_unit`."""
        self.stats.hits += int(n)

    def count_probes(self, n: int) -> None:
        """Account ``n`` consumed membership probes (hits and misses)."""
        self.stats.lookups += int(n)

    # -- mapping maintenance --------------------------------------------

    def _map_upsert(self, keys: list, uid: int) -> None:
        """Point a unit's fingerprints at ``uid``, stealing attribution
        from earlier units (dict-update semantics)."""
        self._map.update(zip(keys, repeat(uid)))

    def _map_evict(self, keys: list, uid: int) -> None:
        """Unmap an evicted unit's fingerprints — but only those still
        attributed to it (a fingerprint can appear in several units'
        metadata; newer inserts steal the attribution)."""
        m = self._map
        get = m.get
        for f in keys:
            if get(f) == uid:
                del m[f]

    def _derive(self, uid: int, fps: np.ndarray) -> list:
        """A unit's fingerprints as native-int dict keys, memoized on its
        immutable contents."""
        cached = self._derived.get(uid)
        if cached is not None and cached[0] is fps:
            return cached[1]
        keys = [int(f) for f in fps] if not isinstance(fps, np.ndarray) else fps.tolist()
        self._derived[uid] = (fps, keys)
        return keys

    # -- unit maintenance -----------------------------------------------

    def has_unit(self, uid: int) -> bool:
        """True if unit ``uid`` is currently cached (no recency change)."""
        return uid in self._units

    def insert_unit(self, uid: int, fps: "np.ndarray | Iterable[int]") -> None:
        """Cache a prefetched unit, evicting LRU units past capacity."""
        fps = np.asarray(fps, dtype=np.uint64)
        uid = int(uid)
        if uid in self._units:
            # Re-prefetch of a cached unit: refresh recency AND re-register
            # its fingerprints. A fingerprint can appear in several units'
            # metadata (e.g. a rewritten duplicate); if a newer unit stole
            # the mapping and was then evicted, the fingerprint would
            # otherwise stay unreachable while this unit is still cached.
            self._units.move_to_end(uid)
            self._map_upsert(self._derive(uid, self._units[uid]), uid)
            return
        self._units[uid] = fps
        self._map_upsert(self._derive(uid, fps), uid)
        self.stats.units_inserted += 1
        while len(self._units) > self.capacity_units:
            old_uid, old_fps = self._units.popitem(last=False)
            self.stats.units_evicted += 1
            self._map_evict(self._derive(old_uid, old_fps), old_uid)
            if self.on_evict is not None:
                self.on_evict(old_uid, len(old_fps))

    def insert_units(self, units: "list[tuple[int, np.ndarray]]") -> None:
        """Cache a *run* of prefetched units in order.

        Equivalent to ``insert_unit(uid, fps)`` per pair: upserts in run
        order attribute each fingerprint to the last unit of the run
        holding it, and deferring the evictions to the end pops the same
        least-recent units — nothing observes the cache between the
        inserts."""
        for uid, fps in units:
            fps = np.asarray(fps, dtype=np.uint64)
            uid = int(uid)
            if uid in self._units:
                # re-prefetch: refresh recency and re-register (see
                # insert_unit)
                self._units.move_to_end(uid)
                self._map_upsert(self._derive(uid, self._units[uid]), uid)
                continue
            self._units[uid] = fps
            self._map_upsert(self._derive(uid, fps), uid)
            self.stats.units_inserted += 1
        while len(self._units) > self.capacity_units:
            old_uid, old_fps = self._units.popitem(last=False)
            self.stats.units_evicted += 1
            self._map_evict(self._derive(old_uid, old_fps), old_uid)
            if self.on_evict is not None:
                self.on_evict(old_uid, len(old_fps))

    def clear(self) -> None:
        """Drop all cached units (e.g. between independent streams)."""
        self._units.clear()
        self._map.clear()
        self._derived.clear()
