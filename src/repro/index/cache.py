"""RAM caches: a generic LRU and the locality-preserving prefetch cache.

``FingerprintPrefetchCache`` is the mechanism the paper's throughput
argument revolves around: on an on-disk index hit, DDFS prefetches the
*whole metadata section* of the container holding the duplicate, betting
that the following stream chunks are duplicates stored nearby. When
placement de-linearizes, that bet pays off less and less — each prefetch
serves fewer subsequent chunks, page faults multiply, throughput falls
(Fig. 2). The cache makes that effect measurable: it reports hits per
inserted unit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Iterable, Optional

import numpy as np

from repro._util import check_positive


class LRUCache:
    """Minimal LRU map with a fixed entry capacity."""

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or None."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite, evicting the least recently used entry."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)


@dataclass
class PrefetchCacheStats:
    """Hit/miss accounting for the prefetch cache."""

    lookups: int = 0
    hits: int = 0
    units_inserted: int = 0
    units_evicted: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def hits_per_unit(self) -> float:
        """Average RAM hits bought by one prefetched unit — the direct
        measure of duplicate locality the paper discusses."""
        return self.hits / self.units_inserted if self.units_inserted else 0.0


class FingerprintPrefetchCache:
    """LRU cache of prefetched metadata *units* (containers or blocks).

    A unit is an id plus the array of fingerprints it holds. Lookups map a
    fingerprint to the unit that supplied it (refreshing that unit's
    recency); inserting past capacity evicts whole units and their
    fingerprints.

    Args:
        capacity_units: number of units held (DDFS caches on the order of
            hundreds of container metadata sections).
    """

    def __init__(self, capacity_units: int) -> None:
        check_positive("capacity_units", capacity_units)
        self.capacity_units = int(capacity_units)
        self._units: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._fp_to_unit: Dict[int, int] = {}
        self.stats = PrefetchCacheStats()

    def __contains__(self, fp: int) -> bool:
        return int(fp) in self._fp_to_unit

    def __len__(self) -> int:
        return len(self._units)

    def lookup(self, fp: int) -> Optional[int]:
        """Return the unit id whose prefetch covers ``fp``, or None."""
        self.stats.lookups += 1
        uid = self._fp_to_unit.get(int(fp))
        if uid is None:
            return None
        self._units.move_to_end(uid)
        self.stats.hits += 1
        return uid

    def has_unit(self, uid: int) -> bool:
        """True if unit ``uid`` is currently cached (no recency change)."""
        return uid in self._units

    def insert_unit(self, uid: int, fps: "np.ndarray | Iterable[int]") -> None:
        """Cache a prefetched unit, evicting LRU units past capacity."""
        fps = np.asarray(fps, dtype=np.uint64)
        uid = int(uid)
        if uid in self._units:
            # Re-prefetch of a cached unit: refresh recency AND re-register
            # its fingerprints. A fingerprint can appear in several units'
            # metadata (e.g. a rewritten duplicate); if a newer unit stole
            # the mapping and was then evicted, the fingerprint would
            # otherwise stay unreachable while this unit is still cached.
            self._units.move_to_end(uid)
            for fp in self._units[uid]:
                self._fp_to_unit[int(fp)] = uid
            return
        self._units[uid] = fps
        for fp in fps:
            self._fp_to_unit[int(fp)] = uid
        self.stats.units_inserted += 1
        while len(self._units) > self.capacity_units:
            old_uid, old_fps = self._units.popitem(last=False)
            self.stats.units_evicted += 1
            for fp in old_fps:
                # only unmap fingerprints still attributed to the evictee
                if self._fp_to_unit.get(int(fp)) == old_uid:
                    del self._fp_to_unit[int(fp)]

    def clear(self) -> None:
        """Drop all cached units (e.g. between independent streams)."""
        self._units.clear()
        self._fp_to_unit.clear()
