"""Min-wise sampling utilities.

Shared by the similarity machinery (SiLo representatives) and by
sparse-indexing-style analyses: deterministic fingerprint sampling and
k-min-hash signatures with the standard Jaccard-estimation property.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_positive
from repro.chunking.fingerprint import splitmix64_array

_U64 = np.uint64


def sample_fingerprints(fps: np.ndarray, rate: int) -> np.ndarray:
    """Deterministically sample ~1/``rate`` of the fingerprints.

    Selection is by value (``fp % rate == 0``), so the same chunk is
    sampled identically wherever it appears — the property sparse
    indexing relies on.
    """
    check_positive("rate", rate)
    fps = np.asarray(fps, dtype=np.uint64)
    return fps[fps % _U64(int(rate)) == 0]


def minhash_signature(fps: np.ndarray, k: int = 4) -> np.ndarray:
    """k-min-hash signature of a fingerprint set.

    Each of the ``k`` rows applies an independent 64-bit mix and takes the
    minimum; ``P[sig_i(A) == sig_i(B)] == Jaccard(A, B)`` per row.

    Returns:
        uint64 array of length ``k`` (empty input yields all-max values).
    """
    check_positive("k", k)
    fps = np.asarray(fps, dtype=np.uint64)
    sig = np.full(k, np.iinfo(np.uint64).max, dtype=np.uint64)
    if fps.size == 0:
        return sig
    for i in range(k):
        mixed = splitmix64_array(fps ^ _U64(splitmix_salt(i)))
        sig[i] = mixed.min()
    return sig


def splitmix_salt(i: int) -> int:
    """A fixed per-row salt for :func:`minhash_signature`."""
    return (0x9E3779B97F4A7C15 * (i + 1)) & ((1 << 64) - 1)


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Exact Jaccard similarity of two fingerprint sets."""
    a = np.unique(np.asarray(a, dtype=np.uint64))
    b = np.unique(np.asarray(b, dtype=np.uint64))
    if a.size == 0 and b.size == 0:
        return 1.0
    inter = np.intersect1d(a, b, assume_unique=True).size
    union = a.size + b.size - inter
    return inter / union
