"""Indexing substrate: everything RAM-vs-disk about finding duplicates.

Deduplication's *disk bottleneck* (paper §I) is the chunk index: it is far
too large for RAM, so engines layer RAM structures in front of it:

* :class:`~repro.index.bloom.BloomFilter` — DDFS's "summary vector":
  screens out brand-new chunks without any disk access.
* :class:`~repro.index.full_index.DiskChunkIndex` — the authoritative
  on-disk fingerprint → location map, with bucket-paging cost accounting.
* :class:`~repro.index.cache.FingerprintPrefetchCache` — DDFS's
  "locality-preserved caching": container (or block) metadata fetched on
  an index hit, serving nearby duplicates from RAM afterwards.
* :class:`~repro.index.similarity.SimilarityIndex` — SiLo's RAM-resident
  map from segment representative fingerprints to blocks.
* :mod:`~repro.index.sampling` — min-wise sampling utilities shared by
  the similarity machinery.
"""

from repro.index.bloom import BloomFilter
from repro.index.full_index import ChunkLocation, DiskChunkIndex, IndexStats
from repro.index.cache import FingerprintPrefetchCache, LRUCache
from repro.index.similarity import SimilarityIndex
from repro.index.sampling import minhash_signature, sample_fingerprints

__all__ = [
    "BloomFilter",
    "ChunkLocation",
    "DiskChunkIndex",
    "IndexStats",
    "FingerprintPrefetchCache",
    "LRUCache",
    "SimilarityIndex",
    "minhash_signature",
    "sample_fingerprints",
]
