"""SiLo's RAM-resident similarity index.

Maps a segment's representative fingerprint to the block that most
recently stored a similar segment. SiLo's premise is a *fixed RAM
budget*: only one representative per segment is kept, and the table has
bounded capacity. When the stored-segment population outgrows the table,
entries are replaced (hash-table style, i.e. effectively random victims)
and similarity detection starts missing — the paper's "spatial locality
gets weaker with the increasing amount of deduplicated data" applied to
the detection path itself.

An unbounded index (``capacity=None``) is supported for oracle-style
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro._util import rng_from


@dataclass
class SimilarityStats:
    """Hit/miss accounting for the similarity index."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SimilarityIndex:
    """rep-fingerprint → block id map with bounded capacity.

    Newer inserts overwrite older entries with the same representative
    (pointing at the freshest similar block); past ``capacity`` distinct
    representatives, a random victim is replaced, modeling a fixed-size
    hash table.

    Args:
        capacity: maximum distinct representatives held (None = unbounded).
        seed: victim-selection determinism.
    """

    def __init__(self, capacity: Optional[int] = None, seed: int = 2012) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be > 0 or None, got {capacity}")
        self.capacity = capacity
        self._map: Dict[int, int] = {}
        self._keys: List[int] = []  # insertion-ordered keys for O(1) random eviction
        self._key_pos: Dict[int, int] = {}
        self._rng = rng_from(seed, "similarity-evict")
        self.stats = SimilarityStats()

    def lookup(self, rep_fp: int) -> Optional[int]:
        """Block id of the most recent similar segment, or None."""
        self.stats.lookups += 1
        bid = self._map.get(int(rep_fp))
        if bid is not None:
            self.stats.hits += 1
        return bid

    def insert(self, rep_fp: int, bid: int) -> None:
        """Register a stored segment's representative, evicting a random
        victim when at capacity."""
        rep_fp = int(rep_fp)
        if rep_fp not in self._map and self.capacity is not None:
            while len(self._map) >= self.capacity:
                self._evict_random()
        if rep_fp not in self._map:
            self._key_pos[rep_fp] = len(self._keys)
            self._keys.append(rep_fp)
        self._map[rep_fp] = int(bid)
        self.stats.inserts += 1

    def _evict_random(self) -> None:
        victim_idx = int(self._rng.integers(0, len(self._keys)))
        victim = self._keys[victim_idx]
        # O(1) removal: swap with last
        last = self._keys[-1]
        self._keys[victim_idx] = last
        self._key_pos[last] = victim_idx
        self._keys.pop()
        del self._key_pos[victim]
        del self._map[victim]
        self.stats.evictions += 1

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, rep_fp: int) -> bool:
        return int(rep_fp) in self._map

    @property
    def ram_bytes(self) -> int:
        """Approximate RAM footprint (16 B per entry: key + value)."""
        return 16 * len(self._map)
