"""``repro.chaos`` — the seeded crash-recovery sweep.

The harness proves the durability story end to end: for hundreds of
deterministically chosen crash points it runs a realistic scenario
(multi-generation DeFrag ingest with periodic garbage collection on a
journaled, retry-wrapped, fault-injected store), kills the machine at
the chosen disk operation, recovers with the
:class:`~repro.storage.recovery.RecoveryScanner`, and then proves **zero
data loss**:

* every retained backup restores byte-identically (recipe signature
  over fingerprints + sizes matches the workload's ground truth),
* every retained recipe is *intact* — each referenced container exists
  and physically holds the chunk (so GC never collected live data),
* the scenario then resumes from the interrupted step with a fresh
  engine over the recovered state and finishes with the same retained
  guarantees.

Crash points are chosen from a fault-free *reference* run's operation
census (the injector's ``record`` mode), spread round-robin across crash
site classes — mid-seal, mid-commit-marker, mid-index-flush, mid-GC, and
plain ingest IO — so the sweep always exercises every window of the
commit protocol. A deterministic subset of points additionally injects
transient IO-error bursts (exercising the retry/backoff path) and
dropped index flushes (exercising the rebuild-from-metadata path).

Run it via ``python -m repro chaos --crash-points 200 --seed 7``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro._util import KIB, MIB
from repro._util.rng import rng_from
from repro.api import create_engine, create_resources
from repro.dedup.base import EngineResources
from repro.dedup.pipeline import PreparedBackup, prepare_workload, run_prepared_backup
from repro.experiments.config import ExperimentConfig
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultyDisk,
    RetryPolicy,
    SimulatedCrash,
)
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.storage.gc import GarbageCollector
from repro.storage.recipe import BackupRecipe
from repro.storage.recovery import RecoveryScanner
from repro.storage.store import ContainerStore, StoreConfig
from repro.workloads.generators import single_user_stream

#: crash-site classes the sweep stratifies over (and reports coverage
#: of); ``shard`` only appears when the scenario runs a sharded index
#: (``n_shards > 1``) — a 1-shard index delegates verbatim, no tag
CRASH_CLASSES = (
    "maint", "gc", "shard", "seal_marker", "seal", "index_flush", "ingest"
)


def classify_tags(tags: Sequence[str]) -> str:
    """Map an injector context-tag stack to its crash-site class.

    ``maint`` must be checked before ``gc``: an out-of-line maintenance
    pass runs the journaled GC protocol *inside* its own tag scope, so
    its disk ops carry both tags — and the crash site we want reported
    is the maintenance pass, not the mechanism it borrows. ``shard``
    likewise wraps each per-shard ``index_flush``, so it is checked
    before the flush tag: a crash there lands *between* shard flushes —
    after some shards are durable and before others.
    """
    if "maint" in tags:
        return "maint"
    if "gc" in tags:
        return "gc"
    if "shard" in tags:
        return "shard"
    if "seal_marker" in tags:
        return "seal_marker"
    if "seal" in tags:
        return "seal"
    if "index_flush" in tags:
        return "index_flush"
    return "ingest"


def recipe_signature(recipe: BackupRecipe) -> str:
    """Content signature of a backup: its chunk fingerprints and sizes.

    Container ids are deliberately excluded — GC and crash recovery may
    legally remap *where* chunks live, never *what* the backup contains.
    """
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(recipe.fingerprints, dtype=np.uint64).tobytes())
    h.update(np.ascontiguousarray(recipe.sizes, dtype=np.int64).tobytes())
    return h.hexdigest()[:16]


# ----------------------------------------------------------------------
# scenario
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosScenario:
    """The workload the sweep replays around every crash point.

    Small enough that one run takes tens of milliseconds, rich enough to
    exercise every durability window: multiple container seals per
    backup, an index flush per backup, and periodic two-phase GC over a
    sliding retention window.
    """

    engine: str = "DeFrag"
    n_generations: int = 8
    fs_bytes: int = 3 * MIB
    container_bytes: int = 256 * KIB
    gc_every: int = 3
    retain: int = 4
    min_utilization: float = 0.6
    #: drive the engine's out-of-line maintenance phase after every N-th
    #: backup (0 = never); only meaningful for engines that implement
    #: one (RevDedup, Hybrid) — a no-op maintenance step never touches
    #: the disk, so no crash point can land inside it
    maintenance_every: int = 0
    seed: int = 2012
    #: out-of-core budget for the scenario's store (None = everything
    #: resident, the classic sweep); a tight budget makes most crash
    #: points land while the bulk of the store is spilled, exercising
    #: recovery over the spill/evict/fault-back paths
    resident_containers: Optional[int] = None
    #: shard the scenario's fingerprint index (>1 wraps it in a
    #: :class:`~repro.sharding.ShardedChunkIndex`), adding the ``shard``
    #: crash class — points that fire between per-shard flushes
    n_shards: int = 1

    def experiment_config(self) -> ExperimentConfig:
        """The experiment config for this scenario, journal + retry on."""
        shard = None
        if self.n_shards > 1:
            from repro.sharding import ShardConfig

            shard = ShardConfig(n_shards=self.n_shards)
        return ExperimentConfig.small().with_(
            seed=self.seed,
            fs_bytes=self.fs_bytes,
            n_generations=self.n_generations,
            container_bytes=self.container_bytes,
            bloom_capacity=100_000,
            shard=shard,
            store=StoreConfig(
                container_bytes=self.container_bytes,
                seal_seeks=0,
                cache_containers=4,
                journal=True,
                retry=RetryPolicy(),
                resident_containers=self.resident_containers,
            ),
        )

    def steps(self) -> List[Tuple[str, int]]:
        """The step list: one ``("backup", gen)`` per generation, a
        ``("maint", gen)`` after every ``maintenance_every``-th backup
        (when enabled), and a ``("gc", gen)`` after every
        ``gc_every``-th backup."""
        out: List[Tuple[str, int]] = []
        for gen in range(self.n_generations):
            out.append(("backup", gen))
            if self.maintenance_every and (gen + 1) % self.maintenance_every == 0:
                out.append(("maint", gen))
            if (gen + 1) % self.gc_every == 0:
                out.append(("gc", gen))
        return out

    def prepare(self) -> List[PreparedBackup]:
        """Generate + segment the workload once (shared by every run)."""
        jobs = single_user_stream(
            n_generations=self.n_generations,
            fs_bytes=self.fs_bytes,
            seed=self.seed,
            label="chaos",
        )
        return prepare_workload(jobs, ContentDefinedSegmenter())


@dataclass
class _RunState:
    """Mutable state of one scenario execution."""

    resources: EngineResources
    engine: object
    retained: List[BackupRecipe] = field(default_factory=list)

    @property
    def store(self) -> ContainerStore:
        return self.resources.store


class _ScenarioRunner:
    """Executes a :class:`ChaosScenario` step list over one machine."""

    def __init__(self, scenario: ChaosScenario, prepared: List[PreparedBackup]):
        self.scenario = scenario
        self.prepared = prepared
        self.config = scenario.experiment_config()
        # ground truth: what each generation's backup must contain,
        # derived from the workload stream (engine-independent)
        self.truth_sigs: Dict[int, str] = {}
        for prep in prepared:
            h = hashlib.sha256()
            h.update(np.ascontiguousarray(prep.job.stream.fps, np.uint64).tobytes())
            h.update(
                np.ascontiguousarray(
                    prep.job.stream.sizes.astype(np.int64)
                ).tobytes()
            )
            self.truth_sigs[prep.job.generation] = h.hexdigest()[:16]

    def new_state(self, injector: FaultInjector) -> _RunState:
        disk = FaultyDisk(profile=self.config.disk, injector=injector)
        resources = create_resources(self.config, disk=disk)
        engine = create_engine(self.scenario.engine, self.config, resources)
        return _RunState(resources=resources, engine=engine)

    def fresh_engine(self, state: _RunState) -> None:
        """Post-recovery: a rebooted machine has a fresh engine (RAM
        caches, bloom filter, stream state all lost) over the recovered
        store/index."""
        state.engine = create_engine(
            self.scenario.engine, self.config, state.resources
        )

    def run_steps(self, state: _RunState, start: int = 0) -> None:
        """Execute the step list from ``start``; SimulatedCrash (or a
        FatalIOError) propagates to the caller with the interrupted step
        index attached."""
        steps = self.scenario.steps()
        for si in range(start, len(steps)):
            kind, gen = steps[si]
            try:
                if kind == "backup":
                    report = run_prepared_backup(state.engine, self.prepared[gen])
                    state.retained.append(report.recipe)
                    del state.retained[: -self.scenario.retain]
                elif kind == "maint":
                    # the engine's own out-of-line phase (journaled GC
                    # underneath, tagged "maint"); after a crash a fresh
                    # engine re-running this step no-ops — its pending
                    # redirect state was volatile, which loses *work*,
                    # never data
                    _, state.retained = state.engine.end_generation(
                        list(state.retained)
                    )
                else:
                    gc = GarbageCollector(state.store, state.resources.index)
                    _, state.retained = gc.collect(
                        state.retained,
                        min_utilization=self.scenario.min_utilization,
                    )
            except SimulatedCrash as crash:
                crash.step = si  # type: ignore[attr-defined]
                raise

    # -- verification ---------------------------------------------------

    def verify(self, state: _RunState, context: str) -> List[str]:
        """Zero-data-loss check over the retained window.

        Returns a list of human-readable violations (empty = all good).
        """
        errors: List[str] = []
        store = state.store
        member: Dict[int, frozenset] = {}
        reader = RestoreReader(store)
        for recipe in state.retained:
            gen = recipe.generation
            sig = recipe_signature(recipe)
            want = self.truth_sigs.get(gen)
            if sig != want:
                errors.append(
                    f"{context}: gen {gen} recipe signature {sig} != truth {want}"
                )
                continue
            for fp, cid in zip(recipe.fingerprints, recipe.containers):
                cid = int(cid)
                if not store.has(cid):
                    errors.append(
                        f"{context}: gen {gen} references missing container {cid}"
                    )
                    break
                fps = member.get(cid)
                if fps is None:
                    fps = member[cid] = frozenset(
                        int(x) for x in store.get(cid).fingerprints
                    )
                if int(fp) not in fps:
                    errors.append(
                        f"{context}: gen {gen} chunk {int(fp)} not in container {cid}"
                    )
                    break
            else:
                # physically intact -> the restore must also succeed
                restored = reader.restore(recipe)
                if restored.logical_bytes != recipe.total_bytes:
                    errors.append(
                        f"{context}: gen {gen} restored "
                        f"{restored.logical_bytes} != {recipe.total_bytes} bytes"
                    )
        return errors


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------


@dataclass
class CrashPointResult:
    """Outcome of one crash-point run."""

    crash_at: int
    planned_class: str
    fired: bool
    crash_class: str = ""
    crash_tags: str = ""
    interrupted_step: int = -1
    torn_truncated: int = 0
    index_entries_rebuilt: int = 0
    gc_rolled_back: bool = False
    gc_rolled_forward: bool = False
    retries: int = 0
    io_errors_injected: int = 0
    flushes_dropped: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


@dataclass
class ChaosReport:
    """The sweep's aggregate verdict."""

    seed: int
    n_points: int
    scenario: ChaosScenario
    results: List[CrashPointResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def fired(self) -> int:
        return sum(1 for r in self.results if r.fired)

    def class_counts(self) -> Dict[str, int]:
        """Actual crash-site coverage (fired points only)."""
        counts = {c: 0 for c in CRASH_CLASSES}
        for r in self.results:
            if r.fired:
                counts[r.crash_class] = counts.get(r.crash_class, 0) + 1
        return counts

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.results)

    def to_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "n_points": self.n_points,
            "ok": self.ok,
            "fired": self.fired,
            "class_counts": self.class_counts(),
            "total_retries": self.total_retries,
            "scenario": asdict(self.scenario),
            "results": [asdict(r) for r in self.results],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human summary for the CLI."""
        counts = self.class_counts()
        lines = [
            f"== chaos sweep: {self.n_points} crash points, seed {self.seed} ==",
            f"scenario: {self.scenario.engine}, "
            f"{self.scenario.n_generations} generations, "
            f"GC every {self.scenario.gc_every}, retain {self.scenario.retain}"
            + (
                f", maintenance every {self.scenario.maintenance_every}"
                if self.scenario.maintenance_every
                else ""
            ),
            f"crash sites: "
            + ", ".join(f"{c}={counts.get(c, 0)}" for c in CRASH_CLASSES),
            f"fired: {self.fired}/{self.n_points} "
            f"(unfired points completed fault-free)",
            f"transient IO errors retried: {self.total_retries}; "
            f"index flushes dropped: "
            f"{sum(r.flushes_dropped for r in self.results)}",
            f"torn tails truncated: "
            f"{sum(r.torn_truncated for r in self.results)}; "
            f"GC rollbacks: {sum(r.gc_rolled_back for r in self.results)}; "
            f"GC roll-forwards: {sum(r.gc_rolled_forward for r in self.results)}",
        ]
        failures = [r for r in self.results if not r.ok]
        if failures:
            lines.append(f"FAILED at {len(failures)} points:")
            for r in failures[:20]:
                lines.append(f"  crash_at={r.crash_at} [{r.crash_class}]:")
                for e in r.errors[:3]:
                    lines.append(f"    {e}")
        else:
            lines.append(
                "OK: every crash point recovered with zero data loss"
            )
        return "\n".join(lines)


def select_crash_points(
    census: Sequence[Tuple[str, Sequence[str]]], n_points: int, seed: int
) -> List[Tuple[int, str]]:
    """Pick ``n_points`` operation indices from a reference op census,
    stratified round-robin across crash-site classes so every durability
    window is exercised even at small sweep sizes.

    Returns ``(op_index, planned_class)`` pairs, deterministically. When
    ``n_points`` exceeds the census, the sweep laps it: the same crash
    op under a different per-point fault plan is still a distinct trial.
    """
    by_class: Dict[str, List[int]] = {}
    for op, (_kind, tags) in enumerate(census, 1):
        by_class.setdefault(classify_tags(tags), []).append(op)
    if not by_class:
        return []
    rng = rng_from(seed, "chaos-points")
    shuffled: Dict[str, List[int]] = {
        cls: [int(ops[i]) for i in rng.permutation(len(ops))]
        for cls, ops in sorted(by_class.items())
    }
    picks: List[Tuple[int, str]] = []
    while len(picks) < n_points:
        order = [c for c in CRASH_CLASSES if c in shuffled]
        cursor = {c: 0 for c in order}
        while len(picks) < n_points and order:
            for cls in list(order):
                ops = shuffled[cls]
                i = cursor[cls]
                if i >= len(ops):
                    order.remove(cls)
                    continue
                cursor[cls] = i + 1
                picks.append((ops[i], cls))
                if len(picks) == n_points:
                    break
    return picks


def run_chaos(
    n_points: int = 200,
    seed: int = 2012,
    scenario: Optional[ChaosScenario] = None,
) -> ChaosReport:
    """Run the full sweep: reference run, stratified crash points, one
    crash/recover/resume/verify cycle per point."""
    if scenario is None:
        scenario = ChaosScenario(seed=seed)
    prepared = scenario.prepare()
    runner = _ScenarioRunner(scenario, prepared)

    # reference run: the op census crash points are chosen from, plus a
    # sanity check that the fault-free scenario itself verifies clean
    ref_inj = FaultInjector(record=True)
    ref_state = runner.new_state(ref_inj)
    runner.run_steps(ref_state)
    # snapshot the census BEFORE verifying: verification restores charge
    # ops too, and those never occur inside a crash run's step phase
    census = list(ref_inj.op_log or [])
    n_flushes = ref_inj.flush_count
    ref_errors = runner.verify(ref_state, "reference")
    if ref_errors:
        raise AssertionError(
            "fault-free reference run failed verification: " + "; ".join(ref_errors)
        )

    points = select_crash_points(census, n_points, seed)
    results: List[CrashPointResult] = []
    for i, (crash_at, planned) in enumerate(points):
        results.append(
            _run_crash_point(
                runner,
                crash_at,
                planned,
                point_seed=seed * 100_003 + i,
                spice=i % 4 == 0,
                n_ops=len(census),
                n_flushes=n_flushes,
            )
        )
    return ChaosReport(
        seed=seed, n_points=len(points), scenario=scenario, results=results
    )


def _run_crash_point(
    runner: _ScenarioRunner,
    crash_at: int,
    planned_class: str,
    point_seed: int,
    spice: bool,
    n_ops: int,
    n_flushes: int,
) -> CrashPointResult:
    """One cycle: run until the crash fires, recover, resume, verify."""
    plan = FaultPlan.seeded(
        seed=point_seed,
        n_ops=n_ops,
        crash_at=crash_at,
        # every 4th point also exercises the retry ladder and the
        # dropped-flush window on the way to its crash
        n_io_errors=1 if spice else 0,
        n_drop_flushes=1 if spice else 0,
        n_flushes=n_flushes,
    )
    inj = FaultInjector(plan)
    state = runner.new_state(inj)
    result = CrashPointResult(
        crash_at=crash_at, planned_class=planned_class, fired=False
    )
    try:
        runner.run_steps(state)
    except SimulatedCrash as crash:
        result.fired = True
        result.crash_tags = ".".join(crash.tags)
        result.crash_class = classify_tags(crash.tags)
        result.interrupted_step = getattr(crash, "step", -1)

        # power loss: volatile state is gone
        state.store.crash()
        state.resources.index.crash()

        # recovery replays the container log back to consistency
        scanner = RecoveryScanner(state.store, state.resources.index)
        report, state.retained = scanner.recover(state.retained)
        result.torn_truncated = report.torn_truncated
        result.index_entries_rebuilt = report.index_entries_rebuilt
        result.gc_rolled_back = report.gc_rolled_back
        result.gc_rolled_forward = report.gc_rolled_forward

        # the retained window must already be whole before any resume
        result.errors += runner.verify(state, f"post-recovery@{crash_at}")

        # reboot: fresh engine over the recovered store/index, then
        # finish the scenario from the interrupted step
        runner.fresh_engine(state)
        try:
            runner.run_steps(state, start=max(0, result.interrupted_step))
        except SimulatedCrash:  # pragma: no cover - plans crash once
            result.errors.append("second crash from a single-crash plan")
    # verification is an offline audit of the surviving state, not part
    # of the faulted timeline (a dropped flush can shorten the run so an
    # unfired crash_at would otherwise land inside a verification read)
    inj.plan = FaultPlan()
    result.errors += runner.verify(state, f"final@{crash_at}")
    result.retries = inj.retries
    result.io_errors_injected = inj.injected_io_errors
    result.flushes_dropped = inj.dropped_flushes
    return result
