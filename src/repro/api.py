"""``repro.api`` — the stable public facade.

One import point for embedding the reproduction as a library:

* :func:`create_engine` — build any registered engine by display name
  from an :class:`~repro.experiments.config.ExperimentConfig` (engines
  self-register via :func:`register_engine`; the ladder of constructor
  keywords lives next to each engine, not in a central if/elif chain).
* :func:`create_resources` — a fresh disk/store/index substrate wired
  per the config, honoring its :class:`~repro.storage.store.StoreConfig`
  (durability journal, retry policy) when one is set.
* :class:`BackupSession` — a context manager bundling engine, container
  store, and restore reader for the common ingest-then-restore loop,
  including the out-of-line maintenance phase
  (:meth:`BackupSession.end_generation`).

The registry is capability-aware: each registration carries an
:class:`EngineInfo` (does the engine run an out-of-line maintenance
pass? does it rewrite *old* containers?) that the CLI, ``repro dash``,
and the frontier experiment read via :func:`engine_info` /
:func:`engine_infos`.

Everything here is re-exported from :mod:`repro`.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dedup.base import (
        BackupReport,
        DedupEngine,
        EngineResources,
        MaintenanceReport,
    )
    from repro.dedup.pipeline import GroundTruth
    from repro.experiments.config import ExperimentConfig
    from repro.restore.reader import RestoreReader, RestoreReport
    from repro.segmenting.segmenter import Segmenter
    from repro.storage.disk import DiskModel
    from repro.storage.recipe import BackupRecipe
    from repro.workloads.generators import BackupJob

__all__ = [
    "EngineInfo",
    "register_engine",
    "engine_names",
    "engine_info",
    "engine_infos",
    "create_resources",
    "create_engine",
    "create_reader",
    "BackupSession",
]

#: factory signature: (resources, config) -> engine
EngineFactory = Callable[["EngineResources", "ExperimentConfig"], "DedupEngine"]


@dataclass(frozen=True)
class EngineInfo:
    """Registry-level capability record for one engine.

    Attributes:
        name: display name (the registry key).
        supports_maintenance: the engine does real work in its
            out-of-line :meth:`~repro.dedup.base.DedupEngine
            .maintenance` pass (drivers should call ``end_generation``
            between backups to see its true behavior).
        rewrites_old_containers: maintenance rewrites/retires *old*
            containers (RevDedup's reverse-reference policy) rather
            than only compacting fresh garbage.
        doc: one-line placement-policy summary for the CLI and
            dashboard.
    """

    name: str
    supports_maintenance: bool = False
    rewrites_old_containers: bool = False
    doc: str = ""


_REGISTRY: Dict[str, EngineFactory] = {}
_INFO: Dict[str, EngineInfo] = {}

#: built-in engines self-register when their module is imported; this
#: map lets :func:`create_engine` trigger that import lazily, so using
#: one engine never pays for importing the other seven
_BUILTIN_MODULES: Dict[str, str] = {
    "DeFrag": "repro.core.defrag",
    "DDFS-Like": "repro.dedup.ddfs",
    "SiLo-Like": "repro.dedup.silo",
    "Exact": "repro.dedup.exact",
    "iDedup": "repro.dedup.idedup",
    "SparseIndex": "repro.dedup.sparse",
    "RevDedup": "repro.dedup.revdedup",
    "Hybrid": "repro.dedup.hybrid",
}


def register_engine(
    name: str,
    factory: Optional[EngineFactory] = None,
    *,
    supports_maintenance: bool = False,
    rewrites_old_containers: bool = False,
    doc: str = "",
):
    """Register an engine factory under a display name.

    Usable directly (``register_engine("Mine", build_mine)``) or as a
    decorator::

        @register_engine("Mine", doc="my placement policy")
        def build_mine(resources, config):
            return MyEngine(resources, batch=config.batch)

    Re-registering a name replaces the factory (latest wins), so tests
    and downstream packages can shadow a built-in. The keyword flags
    populate the :class:`EngineInfo` capability record readable via
    :func:`engine_info`; ``doc`` falls back to the factory docstring's
    first line.
    """

    def _store(f: EngineFactory) -> EngineFactory:
        _REGISTRY[name] = f
        line = doc or ((f.__doc__ or "").strip().splitlines() or [""])[0]
        _INFO[name] = EngineInfo(
            name=name,
            supports_maintenance=supports_maintenance,
            rewrites_old_containers=rewrites_old_containers,
            doc=line,
        )
        return f

    if factory is None:
        return _store
    return _store(factory)


def engine_names() -> Tuple[str, ...]:
    """Every registerable engine name (built-ins plus registrations)."""
    return tuple(sorted(set(_BUILTIN_MODULES) | set(_REGISTRY)))


def engine_info(name: str) -> EngineInfo:
    """The capability record for one engine (imports a built-in's module
    if needed; raises ``ValueError`` for unknown names)."""
    _factory_for(name)
    # a factory stuffed straight into _REGISTRY (tests) has no record
    return _INFO.get(name, EngineInfo(name=name))


def engine_infos() -> Tuple[EngineInfo, ...]:
    """Capability records for every known engine, sorted by name."""
    return tuple(engine_info(name) for name in engine_names())


def _factory_for(name: str) -> EngineFactory:
    factory = _REGISTRY.get(name)
    if factory is None and name in _BUILTIN_MODULES:
        module = _BUILTIN_MODULES[name]
        importlib.import_module(module)
        factory = _REGISTRY.get(name)
        if factory is None:
            # the builtin map and the registry disagree: the module
            # imported fine but never registered under this name — a
            # packaging bug, not a caller typo, so say so explicitly
            raise ValueError(
                f"builtin engine {name!r}: module {module!r} imported but "
                f"registered no factory under that name"
            )
    if factory is None:
        registered = ", ".join(sorted(_REGISTRY)) or "(none)"
        builtin = ", ".join(sorted(_BUILTIN_MODULES))
        raise ValueError(
            f"unknown engine {name!r}; registered: {registered}; "
            f"builtin: {builtin}"
        )
    return factory


def create_resources(
    config: "Optional[ExperimentConfig]" = None,
    *,
    disk: "Optional[DiskModel]" = None,
) -> "EngineResources":
    """A fresh disk/store/index substrate wired per the config.

    The store inherits ``config.store`` (a
    :class:`~repro.storage.store.StoreConfig`) when set — that is how
    the durability journal and retry policy reach the stack. When unset,
    the experiment convention applies: the container log is append-only,
    so seals are pure sequential transfer (``seal_seeks=0``) and the
    restore reader's cache is ``config.restore_cache_containers``.

    A ``config.shard`` (:class:`~repro.sharding.config.ShardConfig`)
    swaps the single on-disk index for a
    :class:`~repro.sharding.ShardedChunkIndex` over the same disk —
    behind the identical interface, so every engine runs unchanged
    (with ``n_shards=1`` the wrapper delegates verbatim and results
    stay byte-identical to the unsharded substrate).

    Args:
        config: experiment knobs (defaults to
            ``ExperimentConfig.default()``).
        disk: substitute a pre-built disk, e.g. a
            :class:`~repro.faults.FaultyDisk` (overrides
            ``config.disk``).
    """
    from repro.dedup.base import EngineResources
    from repro.experiments.config import ExperimentConfig
    from repro.storage.store import StoreConfig

    if config is None:
        config = ExperimentConfig.default()
    store_config = config.store
    if store_config is None:
        store_config = StoreConfig(
            container_bytes=config.container_bytes,
            seal_seeks=0,
            cache_containers=config.restore_cache_containers,
        )
    resources = EngineResources.create(
        profile=config.disk,
        expected_entries=config.bloom_capacity,
        index_page_cache_pages=config.index_page_cache_pages,
        store_config=store_config,
        disk=disk,
    )
    shard = getattr(config, "shard", None)
    if shard is not None:
        from repro.sharding import ShardedChunkIndex

        sharded = ShardedChunkIndex.create(
            resources.disk,
            n_shards=shard.n_shards,
            expected_entries=config.bloom_capacity,
            page_cache_pages=config.index_page_cache_pages,
            journaled=store_config.journal,
            retry=store_config.retry,
            vnodes=shard.vnodes,
        )
        resources = EngineResources(
            disk=resources.disk,
            store=resources.store,
            index=sharded,  # type: ignore[arg-type]
        )
    return resources


def create_engine(
    name: str,
    config: "Optional[ExperimentConfig]" = None,
    resources: "Optional[EngineResources]" = None,
) -> "DedupEngine":
    """Construct an engine by display name with the config's calibrated
    parameters (a fresh resource set is created unless one is passed)."""
    from repro.experiments.config import ExperimentConfig

    if config is None:
        config = ExperimentConfig.default()
    res = resources if resources is not None else create_resources(config)
    return _factory_for(name)(res, config)


def create_reader(
    store,
    config: "Optional[ExperimentConfig]" = None,
) -> "RestoreReader":
    """Build a :class:`~repro.restore.reader.RestoreReader` wired per the
    config's restore knobs (cache policy, forward-assembly window,
    read-ahead). With a default config this is exactly the classic LRU
    run-at-a-time reader the recorded figures used."""
    from repro.experiments.config import ExperimentConfig
    from repro.restore.reader import RestoreReader

    if config is None:
        config = ExperimentConfig.default()
    return RestoreReader(
        store,
        policy=config.restore_policy,
        faa_window=config.restore_faa_window,
        readahead=config.restore_readahead,
    )


class BackupSession:
    """One backup system's lifetime: engine + store + restore reader.

    The session owns a resource set and drives the ingest/restore loop::

        with BackupSession("DeFrag") as session:
            for job in author_fs_20_full():
                session.backup(job)
            report = session.restore()   # the latest backup

    Args:
        engine: display name (resolved via :func:`create_engine`) or an
            already-built :class:`~repro.dedup.base.DedupEngine`.
        config: experiment knobs (defaults to
            ``ExperimentConfig.default()``); carries the
            :class:`~repro.storage.store.StoreConfig` when durability
            matters.
        resources: substitute a pre-built substrate (e.g. one whose
            disk is a :class:`~repro.faults.FaultyDisk`).
        segmenter: defaults to the paper's 0.5–2 MB content-defined
            segmenter.
        ground_truth: annotate reports with the exact redundancy oracle
            (adds RAM/CPU proportional to unique fingerprints).
    """

    def __init__(
        self,
        engine: "Union[str, DedupEngine]" = "DeFrag",
        config: "Optional[ExperimentConfig]" = None,
        resources: "Optional[EngineResources]" = None,
        *,
        segmenter: "Optional[Segmenter]" = None,
        ground_truth: bool = True,
    ) -> None:
        from repro.dedup.pipeline import GroundTruth
        from repro.experiments.config import ExperimentConfig
        from repro.segmenting.segmenter import ContentDefinedSegmenter

        if config is None:
            config = ExperimentConfig.default()
        self.config = config
        if isinstance(engine, str):
            if resources is None:
                resources = create_resources(config)
            engine = create_engine(engine, config, resources)
        elif resources is None:
            resources = engine.res
        self.engine = engine
        self.resources = resources
        self.segmenter = (
            segmenter if segmenter is not None else ContentDefinedSegmenter()
        )
        self._ground_truth: "Optional[GroundTruth]" = (
            GroundTruth() if ground_truth else None
        )
        self.reports: "List[BackupReport]" = []
        self.maintenance_reports: "List[MaintenanceReport]" = []
        self._reader: "Optional[RestoreReader]" = None

    # -- the bundled components ----------------------------------------

    @property
    def store(self):
        """The shared container store."""
        return self.resources.store

    @property
    def index(self):
        """The shared on-disk chunk index."""
        return self.resources.index

    @property
    def disk(self):
        """The simulated disk all costs are charged to."""
        return self.resources.disk

    @property
    def reader(self) -> "RestoreReader":
        """The restore reader (cache sized from the store's config,
        policy/FAA/read-ahead wired from the session's experiment
        config)."""
        if self._reader is None:
            self._reader = create_reader(self.store, self.config)
        return self._reader

    @property
    def recipes(self) -> "List[BackupRecipe]":
        """One recipe per completed backup, in ingest order."""
        return [r.recipe for r in self.reports]

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "BackupSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # engine.end_backup already sealed/flushed per stream; nothing
        # is held open between backups, so exit is bookkeeping only
        return None

    def backup(self, job: "BackupJob") -> "BackupReport":
        """Ingest one backup job; the report is also kept in
        :attr:`reports`."""
        from repro.dedup.pipeline import run_backup

        report = run_backup(self.engine, job, self.segmenter, self._ground_truth)
        self.reports.append(report)
        return report

    def run(self, jobs: "Sequence[BackupJob]") -> "List[BackupReport]":
        """Ingest a sequence of jobs; returns their reports in order.

        Engines whose registry record has ``supports_maintenance`` get
        their out-of-line pass driven after every job, so a session
        ``run`` shows each policy's true lifecycle by default."""
        try:
            drive = engine_info(self.engine.name).supports_maintenance
        except ValueError:  # unregistered custom engine instance
            drive = False
        reports = []
        for job in jobs:
            reports.append(self.backup(job))
            if drive:
                self.end_generation()
        return reports

    def maintenance(self) -> "Optional[MaintenanceReport]":
        """Run the engine's out-of-line maintenance pass over every
        completed backup; alias of :meth:`end_generation`."""
        return self.end_generation()

    def end_generation(self) -> "Optional[MaintenanceReport]":
        """Close the current generation: drive the engine's
        :meth:`~repro.dedup.base.DedupEngine.end_generation` over all
        completed recipes and fold the remapped recipes back into
        :attr:`reports` (so later :meth:`restore` calls read the
        post-maintenance layout). No-op engines return ``None`` and
        leave every recipe untouched."""
        report, remapped = self.engine.end_generation(self.recipes)
        for backup_report, recipe in zip(self.reports, remapped):
            backup_report.recipe = recipe
        if report is not None:
            self.maintenance_reports.append(report)
        return report

    def restore(
        self, backup: "Union[int, BackupRecipe]" = -1
    ) -> "RestoreReport":
        """Restore a completed backup.

        Args:
            backup: an index into :attr:`reports` (default: the latest)
                or an explicit recipe.
        """
        if isinstance(backup, int):
            if not self.reports:
                raise RuntimeError("no completed backups to restore")
            recipe = self.reports[backup].recipe
        else:
            recipe = backup
        return self.reader.restore(recipe)
