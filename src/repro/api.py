"""``repro.api`` — the stable public facade.

One import point for embedding the reproduction as a library:

* :func:`create_engine` — build any registered engine by display name
  from an :class:`~repro.experiments.config.ExperimentConfig` (engines
  self-register via :func:`register_engine`; the ladder of constructor
  keywords lives next to each engine, not in a central if/elif chain).
* :func:`create_resources` — a fresh disk/store/index substrate wired
  per the config, honoring its :class:`~repro.storage.store.StoreConfig`
  (durability journal, retry policy) when one is set.
* :class:`BackupSession` — a context manager bundling engine, container
  store, and restore reader for the common ingest-then-restore loop.

Everything here is re-exported from :mod:`repro`; the older
``repro.experiments.common.build_engine`` ladder delegates to this
module and is deprecated.
"""

from __future__ import annotations

import importlib
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dedup.base import BackupReport, DedupEngine, EngineResources
    from repro.dedup.pipeline import GroundTruth
    from repro.experiments.config import ExperimentConfig
    from repro.restore.reader import RestoreReader, RestoreReport
    from repro.segmenting.segmenter import Segmenter
    from repro.storage.disk import DiskModel
    from repro.storage.recipe import BackupRecipe
    from repro.workloads.generators import BackupJob

__all__ = [
    "register_engine",
    "engine_names",
    "create_resources",
    "create_engine",
    "create_reader",
    "BackupSession",
]

#: factory signature: (resources, config) -> engine
EngineFactory = Callable[["EngineResources", "ExperimentConfig"], "DedupEngine"]

_REGISTRY: Dict[str, EngineFactory] = {}

#: built-in engines self-register when their module is imported; this
#: map lets :func:`create_engine` trigger that import lazily, so using
#: one engine never pays for importing the other five
_BUILTIN_MODULES: Dict[str, str] = {
    "DeFrag": "repro.core.defrag",
    "DDFS-Like": "repro.dedup.ddfs",
    "SiLo-Like": "repro.dedup.silo",
    "Exact": "repro.dedup.exact",
    "iDedup": "repro.dedup.idedup",
    "SparseIndex": "repro.dedup.sparse",
}


def register_engine(name: str, factory: Optional[EngineFactory] = None):
    """Register an engine factory under a display name.

    Usable directly (``register_engine("Mine", build_mine)``) or as a
    decorator::

        @register_engine("Mine")
        def build_mine(resources, config):
            return MyEngine(resources, batch=config.batch)

    Re-registering a name replaces the factory (latest wins), so tests
    and downstream packages can shadow a built-in.
    """
    if factory is None:

        def _decorator(f: EngineFactory) -> EngineFactory:
            _REGISTRY[name] = f
            return f

        return _decorator
    _REGISTRY[name] = factory
    return factory


def engine_names() -> Tuple[str, ...]:
    """Every registerable engine name (built-ins plus registrations)."""
    return tuple(sorted(set(_BUILTIN_MODULES) | set(_REGISTRY)))


def _factory_for(name: str) -> EngineFactory:
    factory = _REGISTRY.get(name)
    if factory is None and name in _BUILTIN_MODULES:
        importlib.import_module(_BUILTIN_MODULES[name])
        factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown engine {name!r}; pick one of {', '.join(engine_names())}"
        )
    return factory


def create_resources(
    config: "Optional[ExperimentConfig]" = None,
    *,
    disk: "Optional[DiskModel]" = None,
) -> "EngineResources":
    """A fresh disk/store/index substrate wired per the config.

    The store inherits ``config.store`` (a
    :class:`~repro.storage.store.StoreConfig`) when set — that is how
    the durability journal and retry policy reach the stack. When unset,
    the experiment convention applies: the container log is append-only,
    so seals are pure sequential transfer (``seal_seeks=0``) and the
    restore reader's cache is ``config.restore_cache_containers``.

    Args:
        config: experiment knobs (defaults to
            ``ExperimentConfig.default()``).
        disk: substitute a pre-built disk, e.g. a
            :class:`~repro.faults.FaultyDisk` (overrides
            ``config.disk``).
    """
    from repro.dedup.base import EngineResources
    from repro.experiments.config import ExperimentConfig
    from repro.storage.store import StoreConfig

    if config is None:
        config = ExperimentConfig.default()
    store_config = config.store
    if store_config is None:
        store_config = StoreConfig(
            container_bytes=config.container_bytes,
            seal_seeks=0,
            cache_containers=config.restore_cache_containers,
        )
    return EngineResources.create(
        profile=config.disk,
        expected_entries=config.bloom_capacity,
        index_page_cache_pages=config.index_page_cache_pages,
        store_config=store_config,
        disk=disk,
    )


def create_engine(
    name: str,
    config: "Optional[ExperimentConfig]" = None,
    resources: "Optional[EngineResources]" = None,
) -> "DedupEngine":
    """Construct an engine by display name with the config's calibrated
    parameters (a fresh resource set is created unless one is passed)."""
    from repro.experiments.config import ExperimentConfig

    if config is None:
        config = ExperimentConfig.default()
    res = resources if resources is not None else create_resources(config)
    return _factory_for(name)(res, config)


def create_reader(
    store,
    config: "Optional[ExperimentConfig]" = None,
) -> "RestoreReader":
    """Build a :class:`~repro.restore.reader.RestoreReader` wired per the
    config's restore knobs (cache policy, forward-assembly window,
    read-ahead). With a default config this is exactly the classic LRU
    run-at-a-time reader the recorded figures used."""
    from repro.experiments.config import ExperimentConfig
    from repro.restore.reader import RestoreReader

    if config is None:
        config = ExperimentConfig.default()
    return RestoreReader(
        store,
        policy=config.restore_policy,
        faa_window=config.restore_faa_window,
        readahead=config.restore_readahead,
    )


class BackupSession:
    """One backup system's lifetime: engine + store + restore reader.

    The session owns a resource set and drives the ingest/restore loop::

        with BackupSession("DeFrag") as session:
            for job in author_fs_20_full():
                session.backup(job)
            report = session.restore()   # the latest backup

    Args:
        engine: display name (resolved via :func:`create_engine`) or an
            already-built :class:`~repro.dedup.base.DedupEngine`.
        config: experiment knobs (defaults to
            ``ExperimentConfig.default()``); carries the
            :class:`~repro.storage.store.StoreConfig` when durability
            matters.
        resources: substitute a pre-built substrate (e.g. one whose
            disk is a :class:`~repro.faults.FaultyDisk`).
        segmenter: defaults to the paper's 0.5–2 MB content-defined
            segmenter.
        ground_truth: annotate reports with the exact redundancy oracle
            (adds RAM/CPU proportional to unique fingerprints).
    """

    def __init__(
        self,
        engine: "Union[str, DedupEngine]" = "DeFrag",
        config: "Optional[ExperimentConfig]" = None,
        resources: "Optional[EngineResources]" = None,
        *,
        segmenter: "Optional[Segmenter]" = None,
        ground_truth: bool = True,
    ) -> None:
        from repro.dedup.pipeline import GroundTruth
        from repro.experiments.config import ExperimentConfig
        from repro.segmenting.segmenter import ContentDefinedSegmenter

        if config is None:
            config = ExperimentConfig.default()
        self.config = config
        if isinstance(engine, str):
            if resources is None:
                resources = create_resources(config)
            engine = create_engine(engine, config, resources)
        elif resources is None:
            resources = engine.res
        self.engine = engine
        self.resources = resources
        self.segmenter = (
            segmenter if segmenter is not None else ContentDefinedSegmenter()
        )
        self._ground_truth: "Optional[GroundTruth]" = (
            GroundTruth() if ground_truth else None
        )
        self.reports: "List[BackupReport]" = []
        self._reader: "Optional[RestoreReader]" = None

    # -- the bundled components ----------------------------------------

    @property
    def store(self):
        """The shared container store."""
        return self.resources.store

    @property
    def index(self):
        """The shared on-disk chunk index."""
        return self.resources.index

    @property
    def disk(self):
        """The simulated disk all costs are charged to."""
        return self.resources.disk

    @property
    def reader(self) -> "RestoreReader":
        """The restore reader (cache sized from the store's config,
        policy/FAA/read-ahead wired from the session's experiment
        config)."""
        if self._reader is None:
            self._reader = create_reader(self.store, self.config)
        return self._reader

    @property
    def recipes(self) -> "List[BackupRecipe]":
        """One recipe per completed backup, in ingest order."""
        return [r.recipe for r in self.reports]

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "BackupSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # engine.end_backup already sealed/flushed per stream; nothing
        # is held open between backups, so exit is bookkeeping only
        return None

    def backup(self, job: "BackupJob") -> "BackupReport":
        """Ingest one backup job; the report is also kept in
        :attr:`reports`."""
        from repro.dedup.pipeline import run_backup

        report = run_backup(self.engine, job, self.segmenter, self._ground_truth)
        self.reports.append(report)
        return report

    def run(self, jobs: "Sequence[BackupJob]") -> "List[BackupReport]":
        """Ingest a sequence of jobs; returns their reports in order."""
        return [self.backup(job) for job in jobs]

    def restore(
        self, backup: "Union[int, BackupRecipe]" = -1
    ) -> "RestoreReport":
        """Restore a completed backup.

        Args:
            backup: an index into :attr:`reports` (default: the latest)
                or an explicit recipe.
        """
        if isinstance(backup, int):
            if not self.reports:
                raise RuntimeError("no completed backups to restore")
            recipe = self.reports[backup].recipe
        else:
            recipe = backup
        return self.reader.restore(recipe)
