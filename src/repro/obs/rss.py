"""Process peak-RSS measurement (the memory bench's one real number).

Everything else ``repro.obs`` records lives on the simulated clock;
peak RSS is deliberately a *machine* measurement — it is what the
out-of-core store exists to bound, and the only meaningful way to gate
it is to ask the kernel what the process actually used.
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_bytes", "peak_rss_mb"]


def peak_rss_bytes() -> int:
    """High-water-mark resident set size of this process, in bytes.

    Returns 0 on platforms without :mod:`resource` (the gate treats
    that as "unmeasurable", never as "within budget" — callers must
    check for 0 before gating).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - ru_maxrss is bytes
        return int(peak)
    return int(peak) * 1024  # Linux reports kilobytes


def peak_rss_mb() -> float:
    """Peak RSS in (decimal) megabytes, the unit BENCH_memory.json uses."""
    return peak_rss_bytes() / 1e6
