"""Static HTML perf dashboard: trajectories, baselines, telemetry.

``repro dash`` renders one self-contained HTML file — inline CSS and
inline SVG only, no scripts, no external fetches — from three kinds of
artifact found on disk:

* metrics snapshots saved by ``repro trace`` (``.repro_stats.json`` or
  any ``--stats PATH``), whose time-series sections become sparkline
  grids (the paper's trajectories over *simulated* time);
* the committed ``BENCH_*.json`` baselines, which become stat tiles
  (the numbers ``repro bench`` gates against); and
* ``BENCH_history.jsonl``, the append-only perf trajectory grown by
  ``benchmarks/record.py --append-history``, plotted as one small
  line chart per headline metric over *wall-clock recording order*.

The stylesheet carries both light and dark values via CSS custom
properties: the ``prefers-color-scheme`` media query switches on the OS
setting, and a ``data-theme`` attribute on ``<html>`` can force either.
Every number also appears in a plain table, so nothing is gated on
reading a chart. Rendering only ever *reads* artifacts — running the
dashboard can not perturb any result (the twin-run contract, trivially).
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.bench import (
    BASELINE_FILENAME,
    CHUNKING_BASELINE_FILENAME,
    HISTORY_FILENAME,
    HISTORY_METRICS,
    RESTORE_BASELINE_FILENAME,
    load_history,
)

__all__ = ["build_dashboard", "render_dashboard"]

# palette roles (light, dark) — see the data-viz reference palette
_CSS = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7;
  --series-1: #2a78d6; --series-dim: #86b6ef;
  --good: #006300; --bad: #d03b3b;
  --ring: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --axis: #383835;
    --series-1: #3987e5; --series-dim: #1c5cab;
    --good: #0ca30c; --bad: #e66767;
    --ring: rgba(255,255,255,0.10);
  }
}
:root[data-theme="dark"] {
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
  --grid: #2c2c2a; --axis: #383835;
  --series-1: #3987e5; --series-dim: #1c5cab;
  --good: #0ca30c; --bad: #e66767;
  --ring: rgba(255,255,255,0.10);
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink-1);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
h2 { font-size: 15px; font-weight: 600; margin: 28px 0 10px; }
h3 { font-size: 13px; font-weight: 600; margin: 16px 0 8px; color: var(--ink-2); }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.chips { margin: 8px 0 0; }
.chip {
  display: inline-block; padding: 1px 8px; margin: 0 6px 6px 0;
  border: 1px solid var(--ring); border-radius: 10px;
  color: var(--ink-2); font-size: 12px; background: var(--surface-1);
}
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 16px; min-width: 180px;
}
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin: 2px 0; }
.tile .delta { font-size: 12px; }
.delta.good { color: var(--good); }
.delta.bad { color: var(--bad); }
.delta.flat { color: var(--ink-muted); }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 12px;
}
.card .name { color: var(--ink-2); font-size: 12px; margin-bottom: 2px; }
.card .last { color: var(--ink-1); font-weight: 600; font-size: 13px; }
svg text { fill: var(--ink-muted); font-size: 10px; }
table { border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--ring); border-radius: 8px; }
th, td { padding: 4px 10px; text-align: right;
  font-variant-numeric: tabular-nums; border-top: 1px solid var(--grid); }
th { color: var(--ink-2); font-weight: 600; border-top: none; }
td:first-child, th:first-child { text-align: left; }
footer { margin-top: 28px; color: var(--ink-muted); font-size: 12px; }
"""


def build_dashboard(
    out: Union[str, Path],
    stats_paths: Sequence[Union[str, Path]] = (),
    root: Union[str, Path] = ".",
) -> Path:
    """Assemble the dashboard from artifacts under ``root`` and write it.

    Args:
        out: output HTML path.
        stats_paths: ``repro trace`` snapshot files to include (missing
            ones are skipped with a note).
        root: directory holding the committed ``BENCH_*.json`` baselines
            and ``BENCH_history.jsonl``.
    """
    rootp = Path(root)
    runs: List[Dict] = []
    for p in stats_paths:
        p = Path(p)
        if not p.is_file():
            continue
        try:
            data = json.loads(p.read_text())
        except json.JSONDecodeError:
            continue
        runs.append(
            {
                "path": str(p),
                "manifest": data.get("manifest", {}) if "metrics" in data else {},
                "metrics": data.get("metrics", data),
            }
        )
    bench = {}
    for key, fname in (
        ("ingest", BASELINE_FILENAME),
        ("restore", RESTORE_BASELINE_FILENAME),
        ("chunking", CHUNKING_BASELINE_FILENAME),
    ):
        f = rootp / fname
        if f.is_file():
            try:
                bench[key] = json.loads(f.read_text())
            except json.JSONDecodeError:
                pass
    history = load_history(rootp / HISTORY_FILENAME)
    text = render_dashboard(runs=runs, bench=bench, history=history)
    outp = Path(out)
    outp.write_text(text)
    return outp


def render_dashboard(
    runs: Sequence[Dict] = (),
    bench: Optional[Dict] = None,
    history: Sequence[Dict] = (),
) -> str:
    """Render the HTML document from already-loaded artifacts."""
    bench = bench or {}
    body: List[str] = [
        "<h1>defrag-repro performance dashboard</h1>",
        '<p class="sub">Simulated-time telemetry from <code>repro trace</code>, '
        "wall-clock baselines from the committed <code>BENCH_*.json</code>, "
        "and the recorded perf trajectory.</p>",
    ]
    body += _tiles_section(bench, list(history))
    body += _engines_section()
    body += _history_section(list(history))
    for run in runs:
        body += _run_section(run)
    if not runs:
        body.append(
            '<p class="sub">No trace snapshots given — run '
            "<code>repro trace &lt;fig&gt;</code> and re-render to see "
            "simulated-time trajectories.</p>"
        )
    body.append(
        "<footer>Static artifact — no scripts, no external resources. "
        "Regenerate with <code>python -m repro dash</code>.</footer>"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        "<title>defrag-repro dashboard</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


# -- sections ---------------------------------------------------------------


def _tiles_section(bench: Dict, history: List[Dict]) -> List[str]:
    """Stat tiles: the committed headline numbers, each with a delta and
    a trend sparkline against the recorded history."""
    tiles: List[str] = []
    specs = (
        ("ingest", "ingest", "batch_seconds", "ingest_batch_seconds"),
        ("restore", "restore", "restore_seconds", "restore_seconds"),
        ("chunking", "chunking", "seqcdc_mb_per_s", "chunking_mb_per_s"),
    )
    for bench_key, inner, field, hist_key in specs:
        record = bench.get(bench_key, {}).get(inner, {})
        value = record.get(field)
        if value is None:
            continue
        label, unit, lower_is_better = HISTORY_METRICS[hist_key]
        series = [r[hist_key] for r in history if r.get(hist_key) is not None]
        delta_html = ""
        prior = [v for v in series if v != value]
        if prior:
            rel = (value - prior[-1]) / prior[-1]
            if abs(rel) <= 0.02:
                cls, arrow = "flat", "&#8594;"
            elif (rel < 0) == lower_is_better:
                cls, arrow = "good", "&#8595;" if rel < 0 else "&#8593;"
            else:
                cls, arrow = "bad", "&#8593;" if rel > 0 else "&#8595;"
            delta_html = (
                f'<div class="delta {cls}">{arrow} {rel:+.1%} '
                "vs last recorded</div>"
            )
        trend = _sparkline(series[-12:], w=120, h=28) if len(series) >= 2 else ""
        tiles.append(
            '<div class="tile">'
            f'<div class="label">{html.escape(label)} (committed)</div>'
            f'<div class="value">{value:g}<span style="font-size:13px;'
            f'color:var(--ink-2)"> {unit}</span></div>'
            f"{delta_html}{trend}</div>"
        )
    if not tiles:
        return []
    return ["<h2>Committed baselines</h2>", '<div class="tiles">'] + tiles + ["</div>"]


def _engines_section() -> List[str]:
    """Engine registry table: every registered placement policy with its
    lifecycle capabilities, read live from ``repro.api.engine_infos``."""
    from repro.api import engine_infos

    rows: List[str] = []
    for info in engine_infos():
        maint = "yes" if info.supports_maintenance else "&mdash;"
        rewrites = "yes" if info.rewrites_old_containers else "&mdash;"
        rows.append(
            "<tr>"
            f"<td><code>{html.escape(info.name)}</code></td>"
            f"<td>{maint}</td><td>{rewrites}</td>"
            f"<td>{html.escape(info.doc or '')}</td></tr>"
        )
    return [
        "<h2>Engine registry</h2>",
        "<table><thead><tr><th>engine</th><th>maintenance</th>"
        "<th>rewrites old containers</th><th>policy</th></tr></thead>",
        "<tbody>",
        *rows,
        "</tbody></table>",
    ]


def _history_section(history: List[Dict]) -> List[str]:
    """The perf trajectory: one small line chart per headline metric,
    x = recording order, plus the full table."""
    if not history:
        return []
    out: List[str] = [
        "<h2>Perf trajectory (BENCH_history.jsonl)</h2>",
        '<div class="cards">',
    ]
    for key, (label, unit, _lower) in HISTORY_METRICS.items():
        pts = [
            (i, r[key], r.get("commit") or r.get("recorded_utc") or f"run {i}")
            for i, r in enumerate(history)
            if r.get(key) is not None
        ]
        if not pts:
            continue
        out.append(
            '<div class="card">'
            f'<div class="name">{html.escape(label)} ({unit})</div>'
            + _line_chart([v for _, v, _ in pts], [t for _, _, t in pts])
            + f'<div class="last">{pts[-1][1]:g} {unit} @ '
            f"{html.escape(str(pts[-1][2]))}</div></div>"
        )
    out.append("</div>")
    # table view: every recorded line, no chart required to read it
    cols = [k for k in HISTORY_METRICS if any(r.get(k) is not None for r in history)]
    out += ["<h3>Recorded runs</h3>", "<table>", "<tr><th>run</th>"]
    out += [f"<th>{html.escape(HISTORY_METRICS[c][0])}</th>" for c in cols]
    out.append("</tr>")
    for i, r in enumerate(history):
        who = r.get("commit") or r.get("recorded_utc") or str(i)
        cells = "".join(
            f"<td>{r[c]:g}</td>" if r.get(c) is not None else "<td>-</td>"
            for c in cols
        )
        out.append(f"<tr><td>{html.escape(str(who))}</td>{cells}</tr>")
    out.append("</table>")
    return out


def _run_section(run: Dict) -> List[str]:
    """One traced run: provenance chips plus a sparkline per time series."""
    manifest = run.get("manifest") or {}
    metrics = run.get("metrics") or {}
    series = metrics.get("timeseries", {})
    title = manifest.get("target") or Path(run.get("path", "run")).name
    out: List[str] = [f"<h2>Run: {html.escape(str(title))}</h2>"]
    if manifest:
        chips = "".join(
            f'<span class="chip">{html.escape(str(k))}: '
            f"{html.escape(str(v))}</span>"
            for k, v in manifest.items()
        )
        out.append(f'<div class="chips">{chips}</div>')
    if not series:
        out.append(
            '<p class="sub">No time-series samples in this snapshot.</p>'
        )
        return out
    out.append('<div class="cards">')
    for name in sorted(series):
        ts = series[name]
        samples = ts.get("samples", [])
        if len(samples) < 2:
            continue
        values = [v for _, v in samples]
        out.append(
            '<div class="card">'
            f'<div class="name">{html.escape(name)}</div>'
            + _sparkline(values, w=180, h=36)
            + f'<div class="last">last {values[-1]:g} &middot; '
            f"min {min(values):g} &middot; max {max(values):g}</div></div>"
        )
    out.append("</div>")
    return out


# -- inline SVG marks -------------------------------------------------------


def _scale(values: Sequence[float], w: int, h: int, pad: int) -> List[Tuple[float, float]]:
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    n = len(values)
    step = (w - 2 * pad) / max(n - 1, 1)
    return [
        (pad + i * step, h - pad - (v - lo) / span * (h - 2 * pad))
        for i, v in enumerate(values)
    ]


def _sparkline(values: Sequence[float], w: int = 120, h: int = 28) -> str:
    """A 2px de-emphasized line with the current value accented — the
    stat-tile trend mark. Values only; axes live in the table view."""
    if len(values) < 2:
        return ""
    pts = _scale(values, w, h, pad=4)
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
    cx, cy = pts[-1]
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="trend of {len(values)} values">'
        f'<polyline points="{path}" fill="none" stroke="var(--series-dim)" '
        'stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>'
        f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="4" fill="var(--series-1)" '
        'stroke="var(--surface-1)" stroke-width="2"/>'
        "</svg>"
    )


def _line_chart(
    values: Sequence[float], labels: Sequence[str], w: int = 260, h: int = 96
) -> str:
    """A single-series line chart (one hue, no legend): hairline grid,
    2px line, >=8px end marker with a surface ring, min/max tick text.
    Each point carries a <title> so hovering reveals run + value."""
    pad = 10
    if len(values) == 1:
        values = list(values) * 2
        labels = list(labels) * 2
    pts = _scale(values, w, h, pad)
    path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
    lo, hi = min(values), max(values)
    grid_y = (pad, h / 2, h - pad)
    grid = "".join(
        f'<line x1="{pad}" y1="{y:.1f}" x2="{w - pad}" y2="{y:.1f}" '
        'stroke="var(--grid)" stroke-width="1"/>'
        for y in grid_y
    )
    dots = "".join(
        f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="var(--series-1)" '
        'stroke="var(--surface-1)" stroke-width="2">'
        f"<title>{html.escape(str(label))}: {value:g}</title></circle>"
        for (x, y), value, label in zip(pts, values, labels)
    )
    return (
        f'<svg width="{w}" height="{h}" viewBox="0 0 {w} {h}" role="img" '
        f'aria-label="trajectory of {len(values)} recorded runs">'
        f"{grid}"
        f'<polyline points="{path}" fill="none" stroke="var(--series-1)" '
        'stroke-width="2" stroke-linecap="round" stroke-linejoin="round"/>'
        f"{dots}"
        f'<text x="{w - pad}" y="{pad - 2}" text-anchor="end">{hi:g}</text>'
        f'<text x="{w - pad}" y="{h - 1}" text-anchor="end">{lo:g}</text>'
        "</svg>"
    )
