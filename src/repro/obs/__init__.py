"""``repro.obs`` — structured observability: metrics, spans, events.

The layer has three pieces (see DESIGN.md for the full model):

* :class:`~repro.obs.registry.MetricsRegistry` — process-local counters,
  gauges, fixed-edge histograms, and phase spans keyed by flat dotted
  names (``DeFrag.phase.identify``).
* :class:`~repro.obs.spans.EngineScope` — per-engine probe that
  attributes each segment's *simulated* time to pipeline phases from
  shared stats deltas (never wall-clock, never per-chunk).
* :mod:`~repro.obs.events` — the JSONL decision-trace channel
  (``defrag_decision``, ``cache_evict``, ``prefetch_yield``, ...).

Everything hangs off an :class:`Observability` session. The default is
:data:`NULL_OBS` (``enabled=False``): a disabled engine performs exactly
one attribute check per segment and records nothing, so benchmark
numbers and the batch/scalar twin-run contract are untouched. Enable a
session either explicitly (``engine = DeFragEngine(res, obs=obs)``) or
ambiently for a block of code::

    with obs_session(Observability(events=JsonlEventSink(path))) as obs:
        run_group_workload(config)      # engines built here record into obs
    print(obs.registry.render())
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.events import (
    EventSink,
    JsonlEventSink,
    ListEventSink,
    NULL_EVENTS,
    NullEventSink,
    read_jsonl,
)
from repro.obs.manifest import RunManifest, build_manifest
from repro.obs.registry import (
    Counter,
    FRACTION_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIM_SECONDS_EDGES,
    SPL_EDGES,
    Span,
    TimeSeries,
    YIELD_EDGES,
    chunking_summary,
    render_snapshot,
)
from repro.obs.rss import peak_rss_bytes, peak_rss_mb
from repro.obs.spans import EngineScope, INGEST_PHASES
from repro.obs.trace_export import export_chrome_trace, write_chrome_trace

__all__ = [
    "Observability",
    "NULL_OBS",
    "get_active",
    "obs_session",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "TimeSeries",
    "RunManifest",
    "build_manifest",
    "export_chrome_trace",
    "write_chrome_trace",
    "EngineScope",
    "INGEST_PHASES",
    "EventSink",
    "NullEventSink",
    "ListEventSink",
    "JsonlEventSink",
    "NULL_EVENTS",
    "read_jsonl",
    "peak_rss_bytes",
    "peak_rss_mb",
    "render_snapshot",
    "chunking_summary",
    "SPL_EDGES",
    "YIELD_EDGES",
    "SIM_SECONDS_EDGES",
    "FRACTION_EDGES",
]


class Observability:
    """One observability session: a registry plus an event sink.

    Args:
        registry: metrics registry (a fresh one by default).
        events: event sink; defaults to the shared null sink, so a
            session can be metrics-only at zero event cost.
        enabled: master switch. When False the session records nothing
            and instrumentation sites skip all work (the zero-overhead
            invariant); :data:`NULL_OBS` is the canonical disabled
            session.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events: Optional[EventSink] = None,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.events = events if events is not None else NULL_EVENTS

    def scope_for(self, engine) -> EngineScope:
        """Build the per-engine metric scope (engines cache the result)."""
        return EngineScope(self.registry, self.events, engine)

    def span(self, name: str, sim_seconds: float, count: int = 1) -> None:
        """Record ``sim_seconds`` against the span called ``name``."""
        self.registry.span(name).record(sim_seconds, count=count)

    def close(self) -> None:
        """Flush/close the event sink (idempotent)."""
        self.events.close()


#: The default, disabled session. Shared and immutable by convention.
NULL_OBS = Observability(registry=MetricsRegistry(), events=NULL_EVENTS, enabled=False)

_active: Observability = NULL_OBS


def get_active() -> Observability:
    """The ambient session new engines adopt when ``obs`` is not passed.

    Defaults to :data:`NULL_OBS`; :func:`obs_session` swaps it for a
    block. Engines capture the session at construction time, so a
    session must be entered *before* building the engines it should
    observe.
    """
    return _active


@contextlib.contextmanager
def obs_session(obs: Optional[Observability] = None) -> Iterator[Observability]:
    """Make ``obs`` (default: a fresh enabled session) ambient for the
    dynamic extent of the ``with`` block, then restore the previous one
    and close the session's event sink."""
    global _active
    if obs is None:
        obs = Observability()
    prev = _active
    _active = obs
    try:
        yield obs
    finally:
        _active = prev
        obs.close()
