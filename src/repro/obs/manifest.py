"""Run-provenance manifest: which run produced this artifact?

Every telemetry artifact — a JSONL event stream, an obs snapshot, a
bench record, a report, a dashboard — outlives the process that made it,
and a perf-trajectory history file (``BENCH_history.jsonl``) deliberately
accumulates records from *many* runs. A :class:`RunManifest` stamps each
artifact with enough identity to trace it back: the config fingerprint
(same digest the parallel grid keys cells by), the engine(s) involved,
the workload seed, the git commit of the checkout, the package version,
and both clocks (wall-clock creation time, simulated seconds covered).

Two serializations, one rule:

* :meth:`RunManifest.as_dict` — the full record, **including** the
  wall-clock timestamp. For append-only artifacts (bench records,
  history lines, JSONL event streams) where "when was this measured"
  is the point.
* :meth:`RunManifest.deterministic_dict` — everything except wall-clock
  fields. For artifacts under the byte-identity contract (reports,
  ``repro all`` comparisons): two runs of the same checkout and config
  must produce the same bytes, so wall time may never leak into them.
"""

from __future__ import annotations

import hashlib
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional

__all__ = ["RunManifest", "build_manifest", "fingerprint_of", "MANIFEST_EVENT"]

#: event ``type`` under which a manifest rides first-class in a JSONL
#: event stream (emitted before any telemetry event)
MANIFEST_EVENT = "run_manifest"

_REPO_ROOT = Path(__file__).resolve().parents[3]


@dataclass(frozen=True)
class RunManifest:
    """Immutable provenance stamp for one run's artifacts."""

    #: short sha256 digest of the full experiment config repr (matches
    #: :func:`repro.experiments.common.config_fingerprint`), or None
    #: when the artifact is not tied to one config
    config_fingerprint: Optional[str] = None
    #: engine name(s) involved, comma-joined ("DeFrag" / "CBR,CAP,DeFrag")
    engine: Optional[str] = None
    #: workload RNG seed
    seed: Optional[int] = None
    #: short git commit hash of the producing checkout, or None outside git
    commit: Optional[str] = None
    #: repro package version
    version: Optional[str] = None
    #: wall-clock creation time, UTC ISO-8601 (excluded from
    #: :meth:`deterministic_dict`)
    created_utc: Optional[str] = None
    #: simulated seconds covered by the run, when known
    sim_seconds: Optional[float] = None
    #: free-form extra identity (scale, argv, ...); values must be
    #: JSON-serializable
    extra: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Full JSON-serializable record, wall clock included."""
        out: Dict[str, object] = dict(self.deterministic_dict())
        if self.created_utc is not None:
            out["created_utc"] = self.created_utc
        return out

    def deterministic_dict(self) -> Dict[str, object]:
        """The record minus wall-clock fields, safe for byte-identical
        artifacts (reports, golden tables). Key order is fixed."""
        out: Dict[str, object] = {}
        if self.config_fingerprint is not None:
            out["config_fingerprint"] = self.config_fingerprint
        if self.engine is not None:
            out["engine"] = self.engine
        if self.seed is not None:
            out["seed"] = self.seed
        if self.commit is not None:
            out["commit"] = self.commit
        if self.version is not None:
            out["version"] = self.version
        if self.sim_seconds is not None:
            out["sim_seconds"] = self.sim_seconds
        for key in sorted(self.extra):
            out[key] = self.extra[key]
        return out

    def event(self) -> Dict[str, object]:
        """The manifest as a ``run_manifest`` event payload (full record;
        an event stream is an append-only artifact, so wall time rides
        along)."""
        return {"type": MANIFEST_EVENT, **self.as_dict()}


def fingerprint_of(config) -> str:
    """Short stable digest of any config object's repr — the same
    derivation :func:`repro.experiments.common.config_fingerprint` uses,
    duplicated here so ``repro.obs`` stays import-independent of the
    experiments layer."""
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:12]


def git_commit(cwd: Optional[Path] = None) -> Optional[str]:
    """Short commit hash of the checkout at ``cwd`` (default: this
    package's repo root), or None when git/metadata is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            check=True,
            capture_output=True,
            text=True,
            cwd=cwd or _REPO_ROOT,
            timeout=10,
        )
    except (OSError, subprocess.CalledProcessError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None


def _package_version() -> Optional[str]:
    # lazy: repro/__init__ transitively imports repro.obs, so importing
    # it at module load would be circular; by the time a manifest is
    # built the package is fully initialized
    try:
        from repro import __version__

        return __version__
    except ImportError:  # pragma: no cover - package always importable in repo
        return None


def build_manifest(
    config=None,
    engine: Optional[str] = None,
    sim_seconds: Optional[float] = None,
    wall_clock: bool = True,
    **extra,
) -> RunManifest:
    """Assemble a :class:`RunManifest` for the current checkout.

    Args:
        config: experiment config; supplies the fingerprint and (when it
            has one) the ``seed`` attribute.
        engine: engine name(s) the run exercised.
        sim_seconds: simulated clock reading at capture time.
        wall_clock: stamp ``created_utc``; pass False for manifests
            embedded in byte-identity artifacts.
        **extra: additional JSON-serializable identity (``scale=...``).
    """
    return RunManifest(
        config_fingerprint=fingerprint_of(config) if config is not None else None,
        engine=engine,
        seed=getattr(config, "seed", None),
        commit=git_commit(),
        version=_package_version(),
        created_utc=(
            datetime.now(timezone.utc).isoformat(timespec="seconds")
            if wall_clock
            else None
        ),
        sim_seconds=sim_seconds,
        extra=dict(sorted(extra.items())),
    )
