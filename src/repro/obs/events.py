"""Structured event sinks: the JSONL decision-trace channel.

Events are flat dicts with a ``type`` key. The hot paths are guarded by
the sink's ``enabled`` flag (and by ``Observability.enabled`` above it),
so a disabled run never builds an event dict, never serializes, and
never touches the filesystem — the zero-overhead-when-disabled
invariant the bench gate enforces.

Event vocabulary emitted by the engines (see DESIGN.md):

* ``defrag_decision`` — one per (incoming segment, referenced stored
  segment): the SPL value, the policy threshold, and whether the shared
  duplicates were rewritten or deduplicated.
* ``cache_evict`` — a prefetched unit fell out of the locality cache.
* ``prefetch_yield`` — per backup: cache hits bought per prefetched unit.
* ``segment_span`` — per segment: simulated-clock phase attribution.
* ``backup`` / ``restore`` / ``gc_pass`` — lifecycle summaries.

And by the fault/recovery subsystem (``repro.faults``,
``repro.storage.recovery``):

* ``fault_injected`` — the injector fired a planned fault: the kind
  (``crash``, ``io_error``, ``drop_flush``), the 1-based disk op, and
  the context tags (``seal``, ``seal_marker``, ``index_flush``,
  ``journal``, ``gc``) naming the durability window it landed in.
* ``retry`` — a transient IO error was absorbed by the retry policy:
  which wrapped op, which attempt, and the backoff delay charged to the
  simulated clock.
* ``recovery_pass`` — one :class:`~repro.storage.recovery.RecoveryScanner`
  run: containers scanned, torn tails truncated, index entries rebuilt,
  GC rollback/roll-forward decisions, recipes remapped.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = ["EventSink", "NullEventSink", "JsonlEventSink", "ListEventSink", "NULL_EVENTS"]


class EventSink:
    """Interface: ``emit(type, **fields)`` plus an ``enabled`` flag."""

    enabled = True

    def emit(self, type: str, **fields) -> None:  # noqa: A002 - event type
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""

    def flush(self) -> None:
        """Push buffered events to their destination (idempotent).

        The grid runner flushes the parent sink before forking workers so
        a child process can never exit holding (and re-writing) a copy of
        the parent's buffered output.
        """

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class NullEventSink(EventSink):
    """Discards everything; ``enabled`` is False so instrumentation
    sites can skip building the event at all."""

    enabled = False

    def emit(self, type: str, **fields) -> None:  # noqa: A002
        pass


#: Shared do-nothing sink (stateless, safe to share globally).
NULL_EVENTS = NullEventSink()


class ListEventSink(EventSink):
    """Collects events in memory — tests and small analysis scripts."""

    def __init__(self) -> None:
        self.events: List[Dict] = []

    @property
    def n_events(self) -> int:
        return len(self.events)

    def emit(self, type: str, **fields) -> None:  # noqa: A002
        fields["type"] = type
        self.events.append(fields)

    def of_type(self, type: str) -> List[Dict]:  # noqa: A002
        return [e for e in self.events if e["type"] == type]


class JsonlEventSink(EventSink):
    """Appends one compact JSON object per event to a file.

    Usable as a context manager (``with JsonlEventSink(p) as sink:``);
    ``close()`` is idempotent either way. The sink flushes to disk every
    ``flush_every`` events so a crashed or fault-injected run leaves at
    most that many events unwritten instead of a silently truncated
    trace.

    Args:
        path: output file (opened lazily on the first event, truncated).
        flush_every: flush after every N events (0 disables periodic
            flushing; the OS/interpreter then decides when bytes land).
    """

    def __init__(self, path: Union[str, Path], flush_every: int = 64) -> None:
        if flush_every < 0:
            raise ValueError(f"flush_every cannot be negative, got {flush_every}")
        self.path = Path(path)
        self.flush_every = int(flush_every)
        self.n_events = 0
        self._fh = None

    def emit(self, type: str, **fields) -> None:  # noqa: A002
        if self._fh is None:
            self._fh = self.path.open("w")
        fields["type"] = type
        json.dump(fields, self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.n_events += 1
        if self.flush_every and self.n_events % self.flush_every == 0:
            self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_jsonl(path: Union[str, Path], type: Optional[str] = None) -> List[Dict]:  # noqa: A002
    """Load a JSONL event file (optionally filtered by event type)."""
    out: List[Dict] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if type is None or event.get("type") == type:
                out.append(event)
    return out
