"""Process-local metrics registry: counters, gauges, histograms, spans,
time series.

Every metric lives in one :class:`MetricsRegistry` keyed by a flat dotted
name (engines prefix their own: ``DeFrag.phase.identify``). Nothing here
ever reads the wall clock — span durations and time-series sample times
come from the *simulated* clock handed in by the caller — so recording
metrics can never perturb the reproduction's reported numbers, and the
batch/scalar twin-run byte-equivalence contract extends to the metrics
themselves.

Histograms use **fixed bucket edges** chosen at creation: bucket ``i``
counts values in ``(edges[i-1], edges[i]]`` with an implicit first bucket
``(-inf, edges[0]]`` and overflow bucket ``(edges[-1], +inf)``. Fixed
edges keep snapshots comparable across runs and keep ``observe`` O(log
n_edges) with no allocation.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple

from repro.obs.timeseries import DEFAULT_MAX_SAMPLES, TimeSeries

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "TimeSeries",
    "MetricsRegistry",
    "chunking_summary",
    "SPL_EDGES",
    "YIELD_EDGES",
    "SIM_SECONDS_EDGES",
    "FRACTION_EDGES",
]

#: SPL values live in [0, 1]; fine near 0 where the rewrite threshold
#: (paper: alpha = 0.1) cuts.
SPL_EDGES: Tuple[float, ...] = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)

#: Cache hits bought per prefetched unit (hits/prefetch); decays from
#: tens toward ~1 as placement de-linearizes.
YIELD_EDGES: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Simulated seconds per segment (geometric ladder around ms..s).
SIM_SECONDS_EDGES: Tuple[float, ...] = (
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0,
)

#: Generic [0, 1] fractions (duplicate share of a segment, etc.).
FRACTION_EDGES: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


class Counter:
    """Monotonic count (int or float increments)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n=1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins instantaneous value.

    Merge semantics (see :meth:`MetricsRegistry.merge`): a merged gauge
    simply takes the incoming snapshot's value — later merges overwrite
    earlier ones. The parallel grid merges per-cell snapshots in stable
    spec order, so the surviving value is the last cell's, exactly what
    serial recording into one registry would have left behind. Gauges
    are therefore only meaningful for values where "most recent wins"
    is the right aggregation (occupancy, configuration echoes), never
    for totals — use a :class:`Counter` for anything additive.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket-edge histogram with sum/count."""

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        e = tuple(float(x) for x in edges)
        if list(e) != sorted(set(e)):
            raise ValueError(f"bucket edges must be strictly increasing, got {e}")
        self.name = name
        self.edges = e
        self.counts: List[int] = [0] * (len(e) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def buckets(self) -> List[Tuple[str, int]]:
        """(human label, count) per bucket, in order."""
        out: List[Tuple[str, int]] = []
        lo = None
        for edge, n in zip(self.edges, self.counts):
            label = f"<= {edge:g}" if lo is None else f"({lo:g}, {edge:g}]"
            out.append((label, n))
            lo = edge
        out.append((f"> {self.edges[-1]:g}", self.counts[-1]))
        return out


class Span:
    """Accumulated phase time: how many times a phase ran and how many
    *simulated* seconds it covered. Durations are clock deltas supplied
    by the instrumentation site — never wall-clock reads."""

    __slots__ = ("name", "count", "sim_seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sim_seconds = 0.0

    def record(self, sim_seconds: float, count: int = 1) -> None:
        self.count += count
        self.sim_seconds += sim_seconds


class MetricsRegistry:
    """Flat name -> metric map with get-or-create accessors.

    Accessors are idempotent: asking for an existing name returns the
    existing metric (and raises if it is of a different kind, or — for
    histograms — was created with different bucket edges).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    # -- accessors -------------------------------------------------------

    def _get_or_create(self, name: str, kind, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, *args)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str, edges: Sequence[float]) -> Histogram:
        hist = self._get_or_create(name, Histogram, edges)
        if hist.edges != tuple(float(x) for x in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {hist.edges}"
            )
        return hist

    def span(self, name: str) -> Span:
        return self._get_or_create(name, Span)

    def timeseries(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> TimeSeries:
        ts = self._get_or_create(name, TimeSeries, max_samples)
        if ts.max_samples != int(max_samples):
            raise ValueError(
                f"timeseries {name!r} already registered with "
                f"max_samples={ts.max_samples}"
            )
        return ts

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def get(self, name: str):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def by_kind(self, kind) -> List:
        """All metrics of one kind, name-sorted."""
        return [self._metrics[n] for n in self.names() if type(self._metrics[n]) is kind]

    def snapshot(self) -> Dict:
        """A JSON-serializable dump of every metric."""
        out: Dict[str, Dict] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "spans": {},
            "timeseries": {},
        }
        for name in self.names():
            m = self._metrics[name]
            if type(m) is Counter:
                out["counters"][name] = m.value
            elif type(m) is Gauge:
                out["gauges"][name] = m.value
            elif type(m) is Histogram:
                out["histograms"][name] = {
                    "edges": list(m.edges),
                    "counts": list(m.counts),
                    "count": m.count,
                    "sum": m.sum,
                }
            elif type(m) is TimeSeries:
                out["timeseries"][name] = m.snapshot()
            else:
                out["spans"][name] = {"count": m.count, "sim_seconds": m.sim_seconds}
        return out

    def merge(self, snapshot: Dict) -> None:
        """Fold a :meth:`snapshot` dict from another registry into this one.

        The parallel grid runner uses this to re-assemble per-cell worker
        registries into the parent session: counters and spans add, histogram
        bucket counts/sums add (edges must match), time series interleave
        their samples by sim time (receiver wins ties) and re-thin under the
        coarser resolution, and gauges are **last-write-wins** — the incoming
        value simply overwrites the current one, so merge order must be the
        stable cell order for gauge determinism. Merging the snapshots of
        disjoint registries in execution order reproduces exactly what serial
        recording into one registry would have produced.

        A name registered here under one kind and arriving in ``snapshot``
        under a different kind raises ``TypeError`` before any partial
        mutation of that metric.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, h in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, h["edges"])
            for i, n in enumerate(h["counts"]):
                hist.counts[i] += n
            hist.count += h["count"]
            hist.sum += h["sum"]
        for name, s in snapshot.get("spans", {}).items():
            self.span(name).record(s["sim_seconds"], count=s["count"])
        for name, ts in snapshot.get("timeseries", {}).items():
            self.timeseries(name, ts.get("max_samples", DEFAULT_MAX_SAMPLES)).merge_snapshot(ts)

    def render(self) -> str:
        """Human-readable text dump (``repro stats``)."""
        return render_snapshot(self.snapshot())

    def reset(self) -> None:
        """Drop every registered metric."""
        self._metrics.clear()


def chunking_summary(snap: Dict) -> List[Tuple[str, str]]:
    """Derived CDC figures from the raw ``chunking.*`` counters and the
    ``chunking.phase.cut`` span (PR 6): mean chunk size, the skip-then-
    scan byte split, and candidate density. Empty when the snapshot has
    no chunking activity (non-byte-level runs)."""
    counters = snap.get("counters", {})
    bytes_in = counters.get("chunking.bytes_in", 0)
    if not bytes_in:
        return []
    chunks = counters.get("chunking.chunks_out", 0)
    scanned = counters.get("chunking.scan_bytes", 0)
    warmup = counters.get("chunking.warmup_bytes", 0)
    skipped = counters.get("chunking.skipped_bytes", 0)
    out = [
        ("bytes_in", f"{bytes_in}"),
        ("chunks_out", f"{chunks}"),
        ("mean_chunk_bytes", f"{bytes_in / chunks:.1f}" if chunks else "0"),
        ("scan_fraction", f"{(scanned + warmup) / bytes_in:.4f}"),
        ("skipped_fraction", f"{skipped / bytes_in:.4f}"),
        ("candidates", f"{counters.get('chunking.candidates', 0)}"),
    ]
    cut = snap.get("spans", {}).get("chunking.phase.cut")
    if cut:
        out.append(
            ("cut_span", f"n={cut['count']} sim={cut['sim_seconds']:.6f}s")
        )
    return out


def render_snapshot(snap: Dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as aligned text."""
    lines: List[str] = []
    spans = snap.get("spans", {})
    if spans:
        lines.append("== phase spans (simulated seconds) ==")
        width = max(len(n) for n in spans)
        for name in sorted(spans):
            s = spans[name]
            lines.append(
                f"{name:<{width}}  n={s['count']:>8}  sim={s['sim_seconds']:.6f}s"
            )
    counters = snap.get("counters", {})
    if counters:
        lines.append("== counters ==")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"{name:<{width}}  {counters[name]}")
    chunking = chunking_summary(snap)
    if chunking:
        lines.append("== chunking (derived) ==")
        width = max(len(k) for k, _ in chunking)
        for key, value in chunking:
            lines.append(f"{key:<{width}}  {value}")
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("== gauges ==")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"{name:<{width}}  {gauges[name]:g}")
    hists = snap.get("histograms", {})
    if hists:
        lines.append("== histograms ==")
        for name in sorted(hists):
            h = hists[name]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            lines.append(f"{name}: n={h['count']} mean={mean:.4f}")
            lo = None
            for edge, n in zip(h["edges"], h["counts"]):
                label = f"<= {edge:g}" if lo is None else f"({lo:g}, {edge:g}]"
                if n:
                    lines.append(f"  {label:<16} {n}")
                lo = edge
            if h["counts"][-1]:
                lines.append(f"  {'> ' + format(h['edges'][-1], 'g'):<16} {h['counts'][-1]}")
    series = snap.get("timeseries", {})
    if series:
        lines.append("== time series ==")
        for name in sorted(series):
            ts = series[name]
            pts = ts.get("samples", [])
            if not pts:
                lines.append(f"{name}: n=0")
                continue
            vals = [v for _, v in pts]
            lines.append(
                f"{name}: n={ts.get('count', len(pts))} kept={len(pts)} "
                f"t=[{pts[0][0]:.4f}, {pts[-1][0]:.4f}] "
                f"last={pts[-1][1]:g} min={min(vals):g} max={max(vals):g}"
            )
    return "\n".join(lines)
