"""Time-series metric kind: ring-buffered ``(sim_time, value)`` samples.

The paper's central claims are *trajectories* — fragmentation, restore
seeks, and dedup ratio evolving across backup generations — so the
observability layer needs a metric with a time axis, not just end-of-run
totals. A :class:`TimeSeries` holds samples keyed by the **simulated**
clock (never wall time, so recording can never perturb reported
numbers) in a bounded buffer:

* ``max_samples`` caps memory. When an append would exceed it, the
  series *compacts*: the minimum spacing between retained samples (its
  ``resolution``) doubles until the thinned series fits in half the
  capacity, keeping the first and most recent samples exactly. Long
  runs therefore degrade gracefully from full fidelity to an evenly
  thinned overview, like a round-robin database.
* Compaction and merge are **pure functions of the recorded sequence**:
  given the same samples in the same order, the retained set is always
  the same bytes. The parallel grid captures each cell into a fresh
  registry and merges snapshots in stable spec order, so a ``--jobs N``
  time-series snapshot is byte-identical to the serial one — the same
  twin-run contract every other metric kind honours.

Merging two series interleaves their samples by time (stable: the
receiver's samples win ties) and re-compacts under the larger of the two
resolutions. Merging snapshots of disjoint registries in execution
order therefore reproduces exactly what serial recording into one
registry would have produced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TimeSeries", "DEFAULT_MAX_SAMPLES"]

#: default ring capacity — generous for generation-boundary sampling
#: (tens of engines x tens of generations) while bounding per-segment
#: sampling of long runs to a few KB per series
DEFAULT_MAX_SAMPLES = 512


class TimeSeries:
    """Bounded ``(sim_time, value)`` sample series (see module docs).

    Args:
        name: flat dotted metric name (``DeFrag.ts.cache_hit_ratio``).
        max_samples: ring capacity; compaction triggers above it.
        resolution: initial minimum spacing between retained samples in
            simulated seconds (0.0 keeps every sample until the capacity
            forces thinning).
    """

    __slots__ = ("name", "max_samples", "resolution", "count", "_samples")

    def __init__(
        self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES, resolution: float = 0.0
    ) -> None:
        if max_samples < 4:
            raise ValueError(f"max_samples must be >= 4, got {max_samples}")
        if resolution < 0:
            raise ValueError(f"resolution cannot be negative, got {resolution}")
        self.name = name
        self.max_samples = int(max_samples)
        self.resolution = float(resolution)
        #: total samples ever recorded (compaction does not decrement)
        self.count = 0
        self._samples: List[Tuple[float, float]] = []

    # -- recording -------------------------------------------------------

    def sample(self, t: float, value: float) -> None:
        """Record ``value`` at simulated time ``t``."""
        self._samples.append((float(t), float(value)))
        self.count += 1
        if len(self._samples) > self.max_samples:
            self._compact()

    def _compact(self) -> None:
        """Thin to at most half capacity by doubling ``resolution``.

        Deterministic given the current sample list: keeps the first
        sample, then every sample at least ``resolution`` simulated
        seconds after the previously kept one, and always the last.
        """
        target = max(4, self.max_samples // 2)
        span = self._samples[-1][0] - self._samples[0][0]
        if span <= 0.0:
            # degenerate: everything at one instant — keep the endpoints
            self._samples = [self._samples[0], self._samples[-1]]
            return
        while len(self._samples) > target:
            self.resolution = (
                self.resolution * 2.0 if self.resolution > 0.0 else span / target
            )
            self._samples = _thin(self._samples, self.resolution)

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        """Samples currently retained (≤ ``count``)."""
        return len(self._samples)

    @property
    def samples(self) -> List[Tuple[float, float]]:
        """The retained ``(t, value)`` samples, oldest first (a copy)."""
        return list(self._samples)

    @property
    def last(self) -> Optional[Tuple[float, float]]:
        """Most recent retained sample, or None when empty."""
        return self._samples[-1] if self._samples else None

    def values(self) -> List[float]:
        """Retained values, oldest first."""
        return [v for _, v in self._samples]

    def times(self) -> List[float]:
        """Retained sample times, oldest first."""
        return [t for t, _ in self._samples]

    # -- snapshot / merge ------------------------------------------------

    def snapshot(self) -> Dict:
        """JSON-serializable dump (samples as ``[t, value]`` pairs)."""
        return {
            "max_samples": self.max_samples,
            "resolution": self.resolution,
            "count": self.count,
            "samples": [[t, v] for t, v in self._samples],
        }

    def merge_snapshot(self, snap: Dict) -> None:
        """Fold another series' :meth:`snapshot` into this one.

        Samples interleave by time with a stable tie-break (this series'
        samples first), the resolution takes the coarser of the two, and
        the merged series re-compacts if it exceeds capacity — all
        deterministic functions of the two inputs, so spec-order merging
        keeps parallel snapshots byte-identical to serial ones.
        """
        incoming = [(float(t), float(v)) for t, v in snap.get("samples", ())]
        self.count += int(snap.get("count", len(incoming)))
        self.resolution = max(self.resolution, float(snap.get("resolution", 0.0)))
        if incoming:
            self._samples = _merge_by_time(self._samples, incoming)
            if len(self._samples) > self.max_samples:
                self._compact()


def _thin(
    samples: Sequence[Tuple[float, float]], resolution: float
) -> List[Tuple[float, float]]:
    """Keep the first sample, then each ≥ ``resolution`` after the last
    kept, and always the final sample."""
    out = [samples[0]]
    last_t = samples[0][0]
    for t, v in samples[1:-1]:
        if t - last_t >= resolution:
            out.append((t, v))
            last_t = t
    if samples[-1] is not out[-1]:
        out.append(samples[-1])
    return out


def _merge_by_time(
    a: Sequence[Tuple[float, float]], b: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Stable two-way merge by sample time (``a`` wins ties)."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if b[j][0] < a[i][0]:
            out.append(b[j])
            j += 1
        else:
            out.append(a[i])
            i += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out
