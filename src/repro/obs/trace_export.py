"""Chrome trace-event export: view phase attribution in Perfetto.

Converts a recorded event stream (``segment_span`` / ``backup`` /
``restore`` lifecycle events, each carrying ``t`` — the simulated clock
at emission) into the Chrome trace-event JSON format that
https://ui.perfetto.dev and ``chrome://tracing`` load directly.

Layout of the exported trace:

* one *process* per engine (``DeFrag``, ``CBR``, ...) plus one for the
  restore path, named via ``M``/``process_name`` metadata events;
* thread 1 ("segments") carries one ``X`` complete slice per segment,
  with the four ingest phases (cpu, index_fault, meta_prefetch,
  container_append) laid end-to-end inside it — they partition the
  segment's simulated time exactly (DESIGN.md §8), so the nested slices
  tile the parent;
* thread 2 ("backups") carries one slice per backup generation;
  restores appear the same way in the restore process.

Timestamps are the *simulated* clock mapped to microseconds (the
trace-event ``ts``/``dur`` unit), so slice widths in Perfetto are the
same simulated durations every table reports — wall time never appears.
The run's provenance manifest rides in the top-level ``otherData``
object, where the trace viewers surface it as metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.obs.manifest import RunManifest
from repro.obs.spans import INGEST_PHASES

__all__ = ["export_chrome_trace", "write_chrome_trace"]

#: simulated seconds -> trace-event microseconds
_US = 1e6

#: per-process thread ids (fixed so traces diff cleanly across runs)
_TID_SEGMENTS = 1
_TID_BACKUPS = 2

#: ``segment_span`` field -> phase name, in pipeline order
_PHASE_FIELDS = tuple(f"{phase}_s" for phase in INGEST_PHASES)


def export_chrome_trace(
    events: Iterable[Dict],
    manifest: Optional[RunManifest] = None,
) -> Dict:
    """Build the trace-event JSON object from recorded events.

    Events lacking a ``t`` field (decision/eviction events, streams
    recorded before PR 7) are skipped — only lifecycle events carry
    enough information to place a slice on the timeline.
    """
    pids: Dict[str, int] = {}
    trace: List[Dict] = []
    meta: List[Dict] = []

    def pid_for(process: str) -> int:
        pid = pids.get(process)
        if pid is None:
            pid = len(pids) + 1
            pids[process] = pid
            meta.append(_meta("process_name", pid, 0, name=process))
            meta.append(_meta("thread_name", pid, _TID_SEGMENTS, name="segments"))
            meta.append(_meta("thread_name", pid, _TID_BACKUPS, name="backups"))
        return pid

    for event in events:
        etype = event.get("type")
        t = event.get("t")
        if t is None:
            continue
        if etype == "segment_span":
            pid = pid_for(str(event.get("engine", "?")))
            dur = float(event.get("sim_seconds", 0.0))
            start = float(t) - dur
            trace.append(
                _slice(
                    f"g{event.get('generation')}/seg{event.get('segment')}",
                    pid,
                    _TID_SEGMENTS,
                    start,
                    dur,
                    args={
                        k: event[k]
                        for k in ("n_chunks", "nbytes", "index_faults",
                                  "prefetch_units", "cache_hits")
                        if k in event
                    },
                )
            )
            cursor = start
            for field in _PHASE_FIELDS:
                phase_dur = float(event.get(field, 0.0))
                if phase_dur > 0.0:
                    trace.append(
                        _slice(
                            field[:-2], pid, _TID_SEGMENTS, cursor, phase_dur
                        )
                    )
                cursor += phase_dur
        elif etype == "backup":
            pid = pid_for(str(event.get("engine", "?")))
            dur = float(event.get("sim_seconds", 0.0))
            trace.append(
                _slice(
                    f"backup g{event.get('generation')}",
                    pid,
                    _TID_BACKUPS,
                    float(t) - dur,
                    dur,
                    args={
                        k: event[k]
                        for k in ("label", "logical_bytes", "stored_bytes",
                                  "throughput")
                        if k in event
                    },
                )
            )
        elif etype == "restore":
            pid = pid_for("restore")
            dur = float(event.get("sim_seconds", 0.0))
            trace.append(
                _slice(
                    f"restore g{event.get('generation')}",
                    pid,
                    _TID_BACKUPS,
                    float(t) - dur,
                    dur,
                    args={
                        k: event[k]
                        for k in ("logical_bytes", "seeks", "cache_hits",
                                  "container_reads", "policy")
                        if k in event
                    },
                )
            )

    out: Dict = {
        "traceEvents": meta + trace,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        out["otherData"] = manifest.as_dict()
    return out


def write_chrome_trace(
    path: Union[str, Path],
    events: Iterable[Dict],
    manifest: Optional[RunManifest] = None,
) -> int:
    """Write the trace to ``path``; returns the number of slices."""
    doc = export_chrome_trace(events, manifest)
    Path(path).write_text(json.dumps(doc, separators=(",", ":")))
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")


def _slice(
    name: str, pid: int, tid: int, start_s: float, dur_s: float, args=None
) -> Dict:
    event: Dict = {
        "name": name,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": round(start_s * _US, 3),
        "dur": round(max(dur_s, 0.0) * _US, 3),
        "cat": "sim",
    }
    if args:
        event["args"] = args
    return event


def _meta(kind: str, pid: int, tid: int, **args) -> Dict:
    return {"name": kind, "ph": "M", "pid": pid, "tid": tid, "ts": 0, "args": args}
