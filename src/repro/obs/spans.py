"""Phase spans: simulated-clock attribution of the ingest pipeline.

A *span* is an accumulated (count, simulated seconds) pair per pipeline
phase. The engine base class probes shared meters (disk, index, cache,
store) at segment boundaries and attributes the segment's simulated time
to phases **exactly**, because every disk charge in the model has a
closed form:

* ``cpu`` — the analytic CPU term (chunking, fingerprinting, RAM ladder
  work including bloom probes and cache lookups, which cost no simulated
  disk time by construction).
* ``index_fault`` — on-disk index bucket reads: each fault charges one
  seek plus one page transfer, so ``faults x access_time(page_bytes, 1)``
  is exact.
* ``meta_prefetch`` — locality prefetches (container metadata sections,
  SiLo block indexes, sparse-index manifests): the remaining read+seek
  time once faults and seal seeks are subtracted.
* ``container_append`` — sealing containers to the log (write transfer
  plus the store's configured seal seeks).

The four phases partition each segment's disk+CPU simulated time, and
they are derived from the *shared stats counters* — which the twin-run
suite asserts byte-identical between the batch and scalar ingest paths —
so recording them can never diverge between the two paths either.

Probing happens once per segment (never per chunk) and only when
observability is enabled, preserving the zero-overhead-when-disabled
invariant.

Beyond cumulative spans, the scope also feeds the **time-series** layer
(PR 7): per-segment samples of the cache hit ratio and index fault rate,
and per-backup samples of the dedup ratio, rewrite fraction, recipe
fragmentation, container-store occupancy, and ingest throughput — each
timestamped with the *simulated* clock, so the trajectories the paper
plots (fragmentation and dedup evolving across generations) are visible
in any snapshot. Lifecycle events additionally carry ``t`` (the sim
clock at emission) so the Chrome trace exporter can place spans on a
timeline.
"""

from __future__ import annotations

from typing import Tuple

from repro.obs.registry import (
    FRACTION_EDGES,
    MetricsRegistry,
    SIM_SECONDS_EDGES,
    YIELD_EDGES,
)

__all__ = ["EngineScope", "INGEST_PHASES", "record_maintenance"]

#: The base per-segment phase names, in pipeline order.
INGEST_PHASES = ("cpu", "index_fault", "meta_prefetch", "container_append")

_MIB = 1024 * 1024


def _fragments_per_mib(recipe) -> float:
    """Recipe fragmentation (container runs per MiB of logical data) —
    the CFL-style de-linearization signal the paper tracks per
    generation. Lazy import keeps ``repro.obs`` import-independent of
    the storage layer at module load."""
    from repro.storage.layout import analyze_recipe

    return analyze_recipe(recipe).fragments_per_mib


def record_maintenance(obs, report) -> None:
    """Record one finished maintenance pass: a ``phase.maintenance``
    span, per-engine counters, and a ``maintenance_pass`` lifecycle
    event. Called by :meth:`~repro.dedup.base.DedupEngine
    .end_generation` only when the session is enabled, and only reads
    the completed :class:`~repro.dedup.base.MaintenanceReport` — every
    priced number is already fixed, so the twin-run contract holds."""
    reg = obs.registry
    p = report.engine
    reg.span(f"{p}.phase.maintenance").record(report.elapsed_seconds)
    reg.counter(f"{p}.maintenance.passes").inc()
    reg.counter(f"{p}.maintenance.containers_rewritten").inc(
        report.containers_rewritten
    )
    reg.counter(f"{p}.maintenance.bytes_moved").inc(report.bytes_moved)
    reg.counter(f"{p}.maintenance.bytes_reclaimed").inc(report.bytes_reclaimed)
    reg.counter(f"{p}.maintenance.redirected_chunks").inc(report.redirected_chunks)
    reg.counter(f"{p}.maintenance.index_lookups").inc(report.index_lookups)
    if obs.events.enabled:
        obs.events.emit(
            "maintenance_pass",
            engine=p,
            generation=report.generation,
            sim_seconds=report.elapsed_seconds,
            containers_rewritten=report.containers_rewritten,
            bytes_moved=report.bytes_moved,
            bytes_reclaimed=report.bytes_reclaimed,
            redirected_chunks=report.redirected_chunks,
            index_lookups=report.index_lookups,
        )


class EngineScope:
    """Pre-resolved metric handles + meter references for one engine.

    Created lazily on the first instrumented segment so construction
    order (engines build their caches after ``super().__init__``) does
    not matter. One scope per engine instance; engines sharing a registry
    but differing in display name record under distinct prefixes.
    """

    __slots__ = (
        "prefix",
        "events",
        "clock",
        "disk_stats",
        "index_stats",
        "store_stats",
        "cache_stats",
        "bloom",
        "seal_seek_seconds",
        "fault_seconds",
        "sp_cpu",
        "sp_fault",
        "sp_prefetch",
        "sp_append",
        "sp_segment",
        "c_segments",
        "c_chunks",
        "c_logical",
        "c_new",
        "c_removed",
        "c_rewritten",
        "c_index_lookups",
        "c_index_faults",
        "c_cache_lookups",
        "c_cache_hits",
        "c_prefetch_units",
        "c_evictions",
        "c_bloom_added",
        "h_seg_seconds",
        "h_dup_frac",
        "h_yield",
        "ts_hit_ratio",
        "ts_fault_rate",
        "ts_dedup_ratio",
        "ts_rewrite_frac",
        "ts_frag",
        "ts_occupancy",
        "ts_throughput",
    )

    def __init__(self, registry: MetricsRegistry, events, engine) -> None:
        p = engine.name
        self.prefix = p
        self.events = events
        disk = engine.res.disk
        self.clock = disk.clock
        self.disk_stats = disk.stats
        self.index_stats = engine.res.index.stats
        self.store_stats = engine.res.store.stats
        cache = getattr(engine, "cache", None)
        self.cache_stats = cache.stats if cache is not None else None
        self.bloom = getattr(engine, "bloom", None)
        profile = disk.profile
        self.seal_seek_seconds = engine.res.store.seal_seeks * profile.seek_time_s
        self.fault_seconds = profile.access_time(engine.res.index.page_bytes, seeks=1)

        self.sp_cpu = registry.span(f"{p}.phase.cpu")
        self.sp_fault = registry.span(f"{p}.phase.index_fault")
        self.sp_prefetch = registry.span(f"{p}.phase.meta_prefetch")
        self.sp_append = registry.span(f"{p}.phase.container_append")
        self.sp_segment = registry.span(f"{p}.phase.segment")
        self.c_segments = registry.counter(f"{p}.segments")
        self.c_chunks = registry.counter(f"{p}.chunks")
        self.c_logical = registry.counter(f"{p}.bytes.logical")
        self.c_new = registry.counter(f"{p}.bytes.written_new")
        self.c_removed = registry.counter(f"{p}.bytes.removed_dup")
        self.c_rewritten = registry.counter(f"{p}.bytes.rewritten_dup")
        self.c_index_lookups = registry.counter(f"{p}.index.lookups")
        self.c_index_faults = registry.counter(f"{p}.index.page_faults")
        self.c_cache_lookups = registry.counter(f"{p}.cache.lookups")
        self.c_cache_hits = registry.counter(f"{p}.cache.hits")
        self.c_prefetch_units = registry.counter(f"{p}.cache.units_prefetched")
        self.c_evictions = registry.counter(f"{p}.cache.units_evicted")
        self.c_bloom_added = registry.counter(f"{p}.bloom.added")
        self.h_seg_seconds = registry.histogram(
            f"{p}.segment_sim_seconds", SIM_SECONDS_EDGES
        )
        self.h_dup_frac = registry.histogram(
            f"{p}.segment_dup_fraction", FRACTION_EDGES
        )
        self.h_yield = registry.histogram(f"{p}.prefetch_yield", YIELD_EDGES)
        # time series, sampled on the simulated clock: per segment for
        # the fast-moving locality signals, per backup for the rest
        self.ts_hit_ratio = registry.timeseries(f"{p}.ts.cache_hit_ratio")
        self.ts_fault_rate = registry.timeseries(f"{p}.ts.index_fault_rate")
        self.ts_dedup_ratio = registry.timeseries(f"{p}.ts.dedup_ratio")
        self.ts_rewrite_frac = registry.timeseries(f"{p}.ts.rewrite_fraction")
        self.ts_frag = registry.timeseries(f"{p}.ts.frag_per_mib")
        self.ts_occupancy = registry.timeseries(f"{p}.ts.store_mib")
        self.ts_throughput = registry.timeseries(f"{p}.ts.throughput_mbps")

    # -- per-segment probe ----------------------------------------------

    def begin(self) -> Tuple:
        """Snapshot every shared meter the segment can move."""
        d = self.disk_stats
        i = self.index_stats
        c = self.cache_stats
        return (
            self.clock.now,
            d.read_time_s,
            d.write_time_s,
            d.seek_time_s,
            i.lookups,
            i.page_faults,
            self.store_stats.containers_sealed,
            (c.lookups, c.hits, c.units_inserted, c.units_evicted)
            if c is not None
            else None,
            self.bloom.n_added if self.bloom is not None else 0,
        )

    def end(self, generation: int, segment, outcome, snap: Tuple, cpu_s: float) -> None:
        """Attribute the segment's simulated time and counter deltas."""
        t0, r0, w0, k0, l0, f0, sealed0, c0, b0 = snap
        d = self.disk_stats
        i = self.index_stats
        total = self.clock.now - t0
        faults = i.page_faults - f0
        sealed = self.store_stats.containers_sealed - sealed0
        fault_s = faults * self.fault_seconds
        seal_seek_s = sealed * self.seal_seek_seconds
        append_s = (d.write_time_s - w0) + seal_seek_s
        prefetch_s = (d.read_time_s - r0) + (d.seek_time_s - k0) - fault_s - seal_seek_s

        self.sp_cpu.record(cpu_s)
        self.sp_fault.record(fault_s, count=faults)
        self.sp_append.record(append_s, count=sealed)
        self.sp_segment.record(total)
        self.c_segments.inc()
        self.c_chunks.inc(outcome.n_chunks)
        self.c_logical.inc(outcome.nbytes)
        self.c_new.inc(outcome.written_new)
        self.c_removed.inc(outcome.removed_dup)
        self.c_rewritten.inc(outcome.rewritten_dup)
        self.c_index_lookups.inc(i.lookups - l0)
        self.c_index_faults.inc(faults)
        if self.bloom is not None:
            self.c_bloom_added.inc(self.bloom.n_added - b0)
        units = 0
        hits = 0
        now = self.clock.now
        if c0 is not None:
            c = self.cache_stats
            lookups = c.lookups - c0[0]
            hits = c.hits - c0[1]
            units = c.units_inserted - c0[2]
            self.c_cache_lookups.inc(lookups)
            self.c_cache_hits.inc(hits)
            self.c_prefetch_units.inc(units)
            self.c_evictions.inc(c.units_evicted - c0[3])
            self.sp_prefetch.record(prefetch_s, count=units)
            if units:
                self.h_yield.observe(hits / units)
            if lookups:
                self.ts_hit_ratio.sample(now, hits / lookups)
        else:
            self.sp_prefetch.record(prefetch_s)
        seg_lookups = i.lookups - l0
        if seg_lookups:
            self.ts_fault_rate.sample(now, faults / seg_lookups)
        self.h_seg_seconds.observe(total)
        if outcome.nbytes:
            self.h_dup_frac.observe(
                (outcome.removed_dup + outcome.rewritten_dup) / outcome.nbytes
            )
        if self.events.enabled:
            self.events.emit(
                "segment_span",
                engine=self.prefix,
                generation=generation,
                t=now,
                segment=outcome.index,
                n_chunks=outcome.n_chunks,
                nbytes=outcome.nbytes,
                sim_seconds=total,
                cpu_s=cpu_s,
                index_fault_s=fault_s,
                meta_prefetch_s=prefetch_s,
                container_append_s=append_s,
                index_faults=faults,
                prefetch_units=units,
                cache_hits=hits,
            )

    # -- per-backup ------------------------------------------------------

    def record_backup(self, report) -> None:
        """Per-backup rollup: generation-boundary time-series samples
        plus lifecycle events. Called only when the session is enabled;
        every read is from finished report/meter state, so recording can
        never perturb the run."""
        now = self.clock.now
        stored = report.stored_bytes
        if stored:
            self.ts_dedup_ratio.sample(now, report.logical_bytes / stored)
        if report.logical_bytes:
            self.ts_rewrite_frac.sample(
                now, report.rewritten_dup_bytes / report.logical_bytes
            )
        self.ts_frag.sample(now, _fragments_per_mib(report.recipe))
        self.ts_occupancy.sample(now, self.store_stats.physical_bytes / _MIB)
        self.ts_throughput.sample(now, report.throughput / _MIB)
        if self.events.enabled:
            extras = report.extras
            units = extras.get("prefetches", extras.get("block_fetches"))
            if units is not None:
                self.events.emit(
                    "prefetch_yield",
                    engine=self.prefix,
                    generation=report.generation,
                    t=now,
                    prefetch_units=units,
                    cache_hits=extras.get("cache_hits", 0.0),
                    hits_per_prefetch=extras.get("hits_per_prefetch", 0.0),
                )
            self.events.emit(
                "backup",
                engine=self.prefix,
                generation=report.generation,
                t=now,
                label=report.label,
                logical_bytes=report.logical_bytes,
                stored_bytes=report.stored_bytes,
                sim_seconds=report.elapsed_seconds,
                throughput=report.throughput,
            )
