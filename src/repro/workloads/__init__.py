"""Workload substrate: synthetic backup streams with realistic churn.

The paper evaluates on real multi-generation file-system backups (647 GB /
20 full backups of one author's FS; 1.72 TB / 66 backups from five
students). Those datasets are private, so this package synthesizes the
property the paper's effects actually depend on: the *sharing structure*
across backup generations — which chunks repeat, where their first copies
were written, and how edits scatter new chunks through otherwise stable
streams.

* :class:`~repro.workloads.fs_model.FileSystemModel` — an evolving file
  system at chunk granularity: files with lognormal sizes, per-generation
  modify/insert/delete churn, content-defined-chunking boundary-shift
  effects.
* :mod:`~repro.workloads.generators` — the named paper workloads
  (:func:`author_fs_20_full`, :func:`group_fs_66`) plus building blocks.
* :mod:`~repro.workloads.bytegen` — byte-level twins of the generators:
  real buffers materialized from the same churn model, CDC-chunked and
  batch-fingerprinted into the identical ``BackupJob`` contract.
* :mod:`~repro.workloads.trace` — save/load backup traces as ``.npz``.
"""

from repro.workloads.fs_model import ChunkIdAllocator, ChurnProfile, FileSystemModel
from repro.workloads.generators import (
    BackupJob,
    author_fs_20_full,
    author_fs_20_incremental,
    group_fs_66,
    single_user_incrementals,
    single_user_stream,
)
from repro.workloads.bytegen import (
    byte_backup,
    chunk_payload,
    default_byte_chunker,
    group_fs_bytes,
    single_user_byte_stream,
)
from repro.workloads.trace import load_trace, save_trace

__all__ = [
    "ChunkIdAllocator",
    "ChurnProfile",
    "FileSystemModel",
    "BackupJob",
    "author_fs_20_full",
    "author_fs_20_incremental",
    "group_fs_66",
    "single_user_incrementals",
    "single_user_stream",
    "byte_backup",
    "chunk_payload",
    "default_byte_chunker",
    "group_fs_bytes",
    "single_user_byte_stream",
    "load_trace",
    "save_trace",
]
