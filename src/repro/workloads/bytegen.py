"""Byte-level workload generation: real buffers from the churn model.

The chunk-level generators emit ``(fingerprint, size)`` streams directly;
this module materializes actual *bytes* for the same evolving file
systems, so the full ingest pipeline — bytes → CDC → fingerprint →
engine → containers — can run end-to-end.

Each model chunk's payload is a pure function of its fingerprint: the
little-endian byte view of ``splitmix64(fp + k)`` for word index ``k``,
trimmed to the chunk size. That single invariant carries the whole churn
model over to byte level:

* identical fingerprints (a chunk copied between generations, files, or
  users via the shared pool) produce **identical bytes**, so all modeled
  redundancy survives;
* an edit replaces a chunk's fingerprint and therefore its bytes, while
  the following content keeps its values but *shifts position* — exactly
  the regime content-defined chunking exists for (cuts resynchronize
  after the edit instead of cascading, which a byte-level experiment
  verifies rather than assumes).

Generators materialize one generation's buffer at a time (constant
memory in the number of generations), chunk it with the vectorized
:class:`~repro.chunking.gear.GearChunker` fast path, and fingerprint via
the vectorized batch fold, yielding the same
:class:`~repro.workloads.generators.BackupJob` /
:class:`~repro.chunking.base.ChunkStream` contract the engines already
consume.
"""

from __future__ import annotations

import logging
from typing import Iterator, Optional

import numpy as np

from repro._util import MIB, check_positive, derive_seed
from repro.chunking.base import Chunker
from repro.chunking.fingerprint import splitmix64_array
from repro.chunking.gear import GearChunker
from repro.workloads.fs_model import ChunkIdAllocator, ChurnProfile, FileSystemModel
from repro.workloads.generators import BackupJob, _shared_pool

log = logging.getLogger(__name__)

__all__ = [
    "chunk_payload",
    "byte_backup",
    "default_byte_chunker",
    "single_user_byte_stream",
    "group_fs_bytes",
]


def chunk_payload(fps: np.ndarray, sizes: np.ndarray) -> bytes:
    """Materialize the byte payload of a chunk sequence (vectorized).

    Chunk ``i`` contributes the first ``sizes[i]`` bytes of the
    little-endian stream ``splitmix64(fps[i] + k), k = 0, 1, ...`` — a
    deterministic function of the fingerprint alone.
    """
    fps = np.asarray(fps, dtype=np.uint64)
    sizes = np.asarray(sizes, dtype=np.int64)
    if fps.size == 0:
        return b""
    if sizes.size and int(sizes.min()) <= 0:
        raise ValueError("chunk sizes must be > 0")
    words = (sizes + 7) // 8
    wstarts = np.zeros(words.size + 1, dtype=np.int64)
    np.cumsum(words, out=wstarts[1:])
    total_words = int(wstarts[-1])
    # word index local to each chunk, then the per-word mixer input
    karr = np.arange(total_words, dtype=np.uint64)
    karr -= np.repeat(wstarts[:-1].astype(np.uint64), words)
    with np.errstate(over="ignore"):
        karr += np.repeat(fps, words)
    padded = splitmix64_array(karr).view(np.uint8)
    n_total = int(sizes.sum())
    if n_total == total_words * 8:
        return padded.tobytes()
    # drop each chunk's padding tail: per-chunk memcpy for realistic
    # sizes, vectorized gather when chunks are tiny
    out = np.empty(n_total, dtype=np.uint8)
    bstarts = np.zeros(sizes.size + 1, dtype=np.int64)
    np.cumsum(sizes, out=bstarts[1:])
    if n_total >= 64 * sizes.size:
        for i in range(sizes.size):
            b = int(bstarts[i])
            length = int(sizes[i])
            p = 8 * int(wstarts[i])
            out[b : b + length] = padded[p : p + length]
    else:
        idx = np.arange(n_total, dtype=np.int64)
        idx += np.repeat(8 * wstarts[:-1] - bstarts[:-1], sizes)
        out[:] = padded[idx]
    return out.tobytes()


def byte_backup(fs: FileSystemModel) -> bytes:
    """The full-backup stream of ``fs`` as one byte buffer."""
    stream = fs.full_backup()
    return chunk_payload(stream.fps, stream.sizes)


def default_byte_chunker(avg_size: Optional[int] = None, seed: int = 2012) -> GearChunker:
    """The byte-level pipeline's chunker: the Gear skip-then-scan fast
    path at the workload's average chunk size (8 KiB by default)."""
    if avg_size is None:
        return GearChunker(seed=seed)
    return GearChunker(avg_size=avg_size, seed=seed)


def _chunk_job(
    generation: int, label: str, data: bytes, chunker: Chunker
) -> BackupJob:
    stream = chunker.chunk(data, fingerprints="fast")
    return BackupJob(generation=generation, label=label, stream=stream)


def single_user_byte_stream(
    n_generations: int,
    fs_bytes: int,
    seed: int = 2012,
    churn: Optional[ChurnProfile] = None,
    label: str = "user0",
    chunker: Optional[Chunker] = None,
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """Byte-level twin of
    :func:`~repro.workloads.generators.single_user_stream`: each
    generation's buffer is materialized, CDC-chunked, and batch-
    fingerprinted before being yielded (one buffer live at a time)."""
    check_positive("n_generations", n_generations)
    chunker = chunker if chunker is not None else default_byte_chunker(seed=seed)
    fs = FileSystemModel(
        seed=seed, initial_bytes=fs_bytes, churn=churn, user=label, **fs_kwargs
    )
    for gen in range(n_generations):
        if gen > 0:
            fs.evolve()
        yield _chunk_job(gen, label, byte_backup(fs), chunker)


def group_fs_bytes(
    per_user_bytes: int = 32 * MIB,
    seed: int = 2012,
    n_users: int = 5,
    n_backups: int = 66,
    churn: Optional[ChurnProfile] = None,
    shared_frac: float = 0.15,
    chunker: Optional[Chunker] = None,
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """Byte-level twin of :func:`~repro.workloads.generators.group_fs_66`.

    The same five evolving user file systems and round-robin backup
    schedule, but every backup is shipped as real bytes through
    CDC + batch fingerprinting. Cross-user redundancy survives because
    shared-pool fingerprints materialize to identical bytes for every
    user.
    """
    check_positive("per_user_bytes", per_user_bytes)
    check_positive("n_users", n_users)
    check_positive("n_backups", n_backups)
    log.info(
        "group_fs_bytes: %d users x %d bytes, %d backups (seed %d, shared %.0f%%)",
        n_users,
        per_user_bytes,
        n_backups,
        seed,
        shared_frac * 100,
    )
    chunker = chunker if chunker is not None else default_byte_chunker(seed=seed)
    alloc = ChunkIdAllocator(seed)
    pool = _shared_pool(derive_seed(seed, "pool"), int(per_user_bytes * 1.5))
    users = [
        FileSystemModel(
            seed=seed,
            initial_bytes=per_user_bytes,
            churn=churn,
            user=f"student{u}",
            allocator=alloc,
            shared_pool=pool,
            shared_frac=shared_frac,
            **fs_kwargs,
        )
        for u in range(n_users)
    ]
    seen = [False] * n_users
    for gen in range(n_backups):
        u = gen % n_users
        if seen[u]:
            users[u].evolve()
        seen[u] = True
        yield _chunk_job(gen, f"student{u}", byte_backup(users[u]), chunker)
