"""An evolving file system at chunk granularity.

The model tracks every file as a sequence of ``(fingerprint, size)``
chunks and applies per-generation churn:

* **in-place edits** — runs of chunks replaced by brand-new chunks, with
  one extra neighbouring chunk disturbed to mimic content-defined-
  chunking boundary shift around an edit;
* **insertions / deletions** of chunk runs inside files;
* **whole-file events** — files created, deleted, or fully rewritten.

A full backup is the concatenation of all live files in stable creation
order (a file-tree walk), which is what makes consecutive generations
highly redundant yet progressively *de-linearized* once a deduplicator
scatters their physical copies — the paper's setting.

Fingerprints come from :class:`ChunkIdAllocator`: splitmix64 of a global
counter, which is collision-free by construction (splitmix64 is a
bijection) while still uniformly distributed for the index structures.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._util import KIB, check_fraction, check_positive, rng_from
from repro.chunking.base import ChunkStream
from repro.chunking.fingerprint import splitmix64_array

log = logging.getLogger(__name__)


class ChunkIdAllocator:
    """Issues globally unique, uniformly distributed 64-bit chunk ids.

    All users of one workload share a single allocator so that chunks
    created anywhere in the workload can never collide, while chunks
    *copied* between files/users share ids (that is what dedup sees).
    """

    def __init__(self, seed: int) -> None:
        # offset the counter space by the seed so two workloads with
        # different seeds produce disjoint, uncorrelated id streams
        self._counter = (int(seed) & 0xFFFF_FFFF) << 32
        self._sizes_rng = rng_from(seed, "chunk-sizes")

    def take(self, n: int) -> np.ndarray:
        """Allocate ``n`` fresh fingerprints."""
        check_positive("n", n)
        start = self._counter
        self._counter += n
        return splitmix64_array(np.arange(start, start + n, dtype=np.uint64))

    def chunk_sizes(self, n: int, avg_bytes: int, min_bytes: int, max_bytes: int) -> np.ndarray:
        """Sample ``n`` content-defined-looking chunk sizes.

        CDC produces sizes that are roughly ``min + Exp(avg - min)``
        truncated at ``max``; we sample exactly that.
        """
        check_positive("n", n)
        span = max(avg_bytes - min_bytes, 1)
        raw = self._sizes_rng.exponential(scale=span, size=n)
        sizes = np.clip(min_bytes + raw, min_bytes, max_bytes)
        return sizes.astype(np.uint32)


@dataclass(frozen=True)
class ChurnProfile:
    """Per-generation mutation rates of a user file system.

    All fractions are per generation. Defaults are tuned to backup-style
    churn: most data stable, a noticeable minority of files touched.

    Attributes:
        modify_frac: fraction of files receiving in-place edits.
        edits_per_file_mean: Poisson mean of edit sites per modified file.
        edit_run_mean: geometric mean of chunks replaced per edit site.
        insert_prob: probability an edit inserts new chunks instead of
            replacing (grows the file).
        delete_prob: probability an edit deletes the run instead of
            replacing (shrinks the file).
        boundary_shift: probability an edit also disturbs the following
            chunk (CDC boundary-shift effect).
        file_delete_frac: fraction of files deleted outright.
        file_create_frac: new-file bytes per generation, as a fraction of
            current FS bytes.
        file_rewrite_frac: fraction of files completely rewritten.
        hot_fraction: fraction of files eligible for in-place edits (a
            stable "hot set" — real file systems concentrate churn in a
            minority of files; 1.0 spreads edits uniformly).
        file_move_frac: fraction of files moved/renamed per generation.
            A move keeps the content but relocates the file in the
            backup stream order (directory walks change), perturbing
            segment composition — the disorder that similarity-based
            detection is sensitive to.
    """

    modify_frac: float = 0.12
    edits_per_file_mean: float = 4.0
    edit_run_mean: float = 2.0
    insert_prob: float = 0.15
    delete_prob: float = 0.10
    boundary_shift: float = 0.5
    file_delete_frac: float = 0.01
    file_create_frac: float = 0.015
    file_rewrite_frac: float = 0.01
    hot_fraction: float = 1.0
    file_move_frac: float = 0.0

    def __post_init__(self) -> None:
        check_fraction("file_move_frac", self.file_move_frac)
        check_fraction("hot_fraction", self.hot_fraction)
        if self.hot_fraction == 0.0:
            raise ValueError("hot_fraction must be > 0 (no files could be edited)")
        check_fraction("modify_frac", self.modify_frac)
        check_fraction("insert_prob", self.insert_prob)
        check_fraction("delete_prob", self.delete_prob)
        check_fraction("boundary_shift", self.boundary_shift)
        check_fraction("file_delete_frac", self.file_delete_frac)
        check_fraction("file_create_frac", self.file_create_frac)
        check_fraction("file_rewrite_frac", self.file_rewrite_frac)
        if self.insert_prob + self.delete_prob > 1.0:
            raise ValueError("insert_prob + delete_prob must be <= 1")
        check_positive("edits_per_file_mean", self.edits_per_file_mean)
        check_positive("edit_run_mean", self.edit_run_mean)


@dataclass
class _File:
    """One file's chunk content (parallel arrays)."""

    fid: int
    fps: np.ndarray
    sizes: np.ndarray

    @property
    def n_chunks(self) -> int:
        return int(self.fps.size)

    @property
    def nbytes(self) -> int:
        return int(self.sizes.sum(dtype=np.int64)) if self.n_chunks else 0


class FileSystemModel:
    """One user's evolving file system.

    Args:
        seed: deterministic seed (combined with ``user`` tag).
        initial_bytes: approximate initial FS size.
        churn: per-generation mutation profile.
        avg_chunk_bytes / min_chunk_bytes / max_chunk_bytes: chunk-size
            distribution (defaults 8 KiB avg, as the paper's systems use).
        avg_file_bytes: lognormal mean file size (default 512 KiB).
        allocator: shared chunk-id allocator (one per workload); a private
            one is created when omitted.
        shared_pool: optional ``(fps, sizes)`` arrays of common content
            (OS/toolchain files); a slice of the initial FS is built from
            contiguous runs of it, giving cross-user redundancy.
        shared_frac: fraction of initial bytes drawn from the pool.
    """

    def __init__(
        self,
        seed: int,
        initial_bytes: int,
        churn: Optional[ChurnProfile] = None,
        *,
        user: str = "user0",
        avg_chunk_bytes: int = 8 * KIB,
        min_chunk_bytes: int = 2 * KIB,
        max_chunk_bytes: int = 64 * KIB,
        avg_file_bytes: int = 512 * KIB,
        allocator: Optional[ChunkIdAllocator] = None,
        shared_pool: Optional[tuple] = None,
        shared_frac: float = 0.0,
    ) -> None:
        check_positive("initial_bytes", initial_bytes)
        check_fraction("shared_frac", shared_frac)
        self.seed = int(seed)
        self.user = str(user)
        self.churn = churn if churn is not None else ChurnProfile()
        self.avg_chunk_bytes = int(avg_chunk_bytes)
        self.min_chunk_bytes = int(min_chunk_bytes)
        self.max_chunk_bytes = int(max_chunk_bytes)
        self.avg_file_bytes = int(avg_file_bytes)
        self._rng = rng_from(seed, "fs", user)
        self._alloc = allocator if allocator is not None else ChunkIdAllocator(seed)
        self._files: List[_File] = []
        self._next_fid = 0
        self.generation = 0
        # files touched by the most recent evolve() — the content of an
        # incremental backup
        self._changed_fids: set = set()
        self._populate(initial_bytes, shared_pool, float(shared_frac))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _sample_file_chunk_count(self) -> int:
        """Lognormal file size, expressed in chunks (>= 1)."""
        sigma = 1.1
        mu = np.log(self.avg_file_bytes) - 0.5 * sigma * sigma
        nbytes = float(self._rng.lognormal(mean=mu, sigma=sigma))
        # clip the lognormal tail relative to the mean so scaled-down
        # experiments are not dominated by one huge file
        nbytes = min(max(nbytes, self.min_chunk_bytes), 16 * self.avg_file_bytes)
        return max(1, int(round(nbytes / self.avg_chunk_bytes)))

    def _new_chunks(self, n: int) -> tuple:
        fps = self._alloc.take(n)
        sizes = self._alloc.chunk_sizes(
            n, self.avg_chunk_bytes, self.min_chunk_bytes, self.max_chunk_bytes
        )
        return fps, sizes

    def _make_file(self, n_chunks: int) -> _File:
        fps, sizes = self._new_chunks(n_chunks)
        f = _File(fid=self._next_fid, fps=fps, sizes=sizes)
        self._next_fid += 1
        return f

    def _make_shared_file(self, n_chunks: int, pool_fps: np.ndarray, pool_sizes: np.ndarray) -> _File:
        """A file whose content is a contiguous run of the shared pool."""
        max_start = max(pool_fps.size - n_chunks, 0)
        start = int(self._rng.integers(0, max_start + 1))
        stop = min(start + n_chunks, pool_fps.size)
        f = _File(
            fid=self._next_fid,
            fps=pool_fps[start:stop].copy(),
            sizes=pool_sizes[start:stop].copy(),
        )
        self._next_fid += 1
        return f

    def _populate(self, target_bytes: int, shared_pool, shared_frac: float) -> None:
        shared_target = int(target_bytes * shared_frac) if shared_pool is not None else 0
        produced = 0
        if shared_target:
            pool_fps, pool_sizes = shared_pool
            while produced < shared_target:
                f = self._make_shared_file(self._sample_file_chunk_count(), pool_fps, pool_sizes)
                if f.n_chunks == 0:
                    break
                self._files.append(f)
                produced += f.nbytes
        while produced < target_bytes:
            remaining = target_bytes - produced
            n_chunks = self._sample_file_chunk_count()
            # truncate the last file so the FS lands on target, not past it
            n_chunks = min(n_chunks, max(1, remaining // self.avg_chunk_bytes))
            f = self._make_file(n_chunks)
            self._files.append(f)
            produced += f.nbytes

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def n_files(self) -> int:
        return len(self._files)

    @property
    def total_bytes(self) -> int:
        return sum(f.nbytes for f in self._files)

    @property
    def total_chunks(self) -> int:
        return sum(f.n_chunks for f in self._files)

    def full_backup(self) -> ChunkStream:
        """Full-backup stream: all live files in stable creation order."""
        live = [f for f in self._files if f.n_chunks]
        if not live:
            return ChunkStream.empty()
        return ChunkStream(
            np.concatenate([f.fps for f in live]),
            np.concatenate([f.sizes for f in live]),
        )

    def file_extents(self):
        """Chunk-index extents of each live file within the full-backup
        stream: a list of ``(fid, start_chunk, n_chunks)`` in stream
        order. Lets callers restore or analyze single files out of a
        backup recipe (the paper's Fig. 1 is a per-file view)."""
        extents = []
        pos = 0
        for f in self._files:
            if f.n_chunks:
                extents.append((f.fid, pos, f.n_chunks))
                pos += f.n_chunks
        return extents

    def incremental_backup(self) -> ChunkStream:
        """Incremental stream: only files touched by the latest
        :meth:`evolve` (whole-file granularity, as file-level incremental
        backup tools ship them). Before any evolve this equals the full
        backup."""
        if self.generation == 0:
            return self.full_backup()
        changed = [f for f in self._files if f.fid in self._changed_fids and f.n_chunks]
        if not changed:
            return ChunkStream.empty()
        return ChunkStream(
            np.concatenate([f.fps for f in changed]),
            np.concatenate([f.sizes for f in changed]),
        )

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------

    def evolve(self) -> None:
        """Apply one generation of churn."""
        rng = self._rng
        c = self.churn
        self.generation += 1
        self._changed_fids = set()

        n = len(self._files)
        if n == 0:
            return

        # whole-file deletes
        n_delete = int(round(n * c.file_delete_frac))
        if n_delete:
            doomed = set(rng.choice(n, size=min(n_delete, n), replace=False).tolist())
            self._files = [f for i, f in enumerate(self._files) if i not in doomed]

        # whole-file rewrites (same file slot, all-new content)
        n = len(self._files)
        n_rewrite = int(round(n * c.file_rewrite_frac))
        if n_rewrite and n:
            targets = rng.choice(n, size=min(n_rewrite, n), replace=False)
            for i in targets:
                f = self._files[int(i)]
                fps, sizes = self._new_chunks(max(1, f.n_chunks))
                f.fps, f.sizes = fps, sizes
                self._changed_fids.add(f.fid)

        # in-place edits, drawn from the stable hot set (membership is a
        # pure function of the file id, so the hot set persists across
        # generations and survives file-list reshuffles)
        n = len(self._files)
        n_modify = int(round(n * c.modify_frac))
        if n_modify and n:
            if c.hot_fraction >= 1.0:
                eligible = np.arange(n)
            else:
                threshold = int(c.hot_fraction * 2**32)
                fids = np.asarray([f.fid for f in self._files], dtype=np.uint64)
                hot = (splitmix64_array(fids) >> np.uint64(32)) < threshold
                eligible = np.flatnonzero(hot)
                if eligible.size == 0:
                    eligible = np.arange(n)
            take = min(n_modify, eligible.size)
            targets = rng.choice(eligible, size=take, replace=False)
            for i in targets:
                self._edit_file(self._files[int(i)])
                self._changed_fids.add(self._files[int(i)].fid)

        # file moves/renames: content unchanged, stream position changes
        n = len(self._files)
        n_move = int(round(n * c.file_move_frac))
        if n_move and n > 1:
            movers = rng.choice(n, size=min(n_move, n), replace=False)
            moved = [self._files[int(i)] for i in movers]
            doomed = set(int(i) for i in movers)
            rest = [f for i, f in enumerate(self._files) if i not in doomed]
            for f in moved:
                pos = int(rng.integers(0, len(rest) + 1))
                rest.insert(pos, f)
                # renamed/moved files are re-shipped by file-level
                # incremental backup tools
                self._changed_fids.add(f.fid)
            self._files = rest

        # new files (truncating the last one so growth matches the profile)
        target_new = int(self.total_bytes * c.file_create_frac)
        produced = 0
        while produced < target_new:
            remaining = target_new - produced
            n_chunks = self._sample_file_chunk_count()
            n_chunks = min(n_chunks, max(1, remaining // self.avg_chunk_bytes))
            f = self._make_file(n_chunks)
            self._files.append(f)
            produced += f.nbytes
            self._changed_fids.add(f.fid)
        log.debug(
            "%s gen %d: %d files (%d touched), %d bytes",
            self.user,
            self.generation,
            len(self._files),
            len(self._changed_fids),
            self.total_bytes,
        )

    def _edit_file(self, f: _File) -> None:
        """Apply a Poisson number of edit sites to one file."""
        rng = self._rng
        c = self.churn
        n_edits = max(1, int(rng.poisson(c.edits_per_file_mean)))
        for _ in range(n_edits):
            if f.n_chunks == 0:
                fps, sizes = self._new_chunks(1)
                f.fps, f.sizes = fps, sizes
                continue
            pos = int(rng.integers(0, f.n_chunks))
            run = max(1, int(rng.geometric(1.0 / c.edit_run_mean)))
            u = rng.random()
            if u < c.insert_prob:
                # insertion: new chunks spliced in at pos
                fps, sizes = self._new_chunks(run)
                f.fps = np.concatenate([f.fps[:pos], fps, f.fps[pos:]])
                f.sizes = np.concatenate([f.sizes[:pos], sizes, f.sizes[pos:]])
            elif u < c.insert_prob + c.delete_prob:
                # deletion of the run
                stop = min(pos + run, f.n_chunks)
                f.fps = np.concatenate([f.fps[:pos], f.fps[stop:]])
                f.sizes = np.concatenate([f.sizes[:pos], f.sizes[stop:]])
            else:
                # replacement; boundary shift may extend the damage by one
                stop = min(pos + run, f.n_chunks)
                if rng.random() < c.boundary_shift and stop < f.n_chunks:
                    stop += 1
                length = stop - pos
                fps, sizes = self._new_chunks(length)
                f.fps = np.concatenate([f.fps[:pos], fps, f.fps[stop:]])
                f.sizes = np.concatenate([f.sizes[:pos], sizes, f.sizes[stop:]])
