"""Named workloads mirroring the paper's two datasets.

* :func:`author_fs_20_full` — "20 full backup generations of one author's
  file system of about 647 GB" (Fig. 2 / Fig. 3), scaled by
  ``fs_bytes``.
* :func:`group_fs_66` — "66 backups of the file systems by five graduate
  students ... totaling about 1.72 TB" (Fig. 4 / 5 / 6): five
  independently evolving user file systems with a shared content pool,
  backed up round-robin.

Both are lazy generators of :class:`BackupJob` so that arbitrarily long
workloads never hold more than one stream in memory.
"""

from __future__ import annotations

import logging
from typing import Iterator, NamedTuple, Optional

from repro._util import KIB, MIB, check_positive
from repro.chunking.base import ChunkStream
from repro.chunking.fingerprint import splitmix64_array
from repro.workloads.fs_model import ChunkIdAllocator, ChurnProfile, FileSystemModel

import numpy as np

log = logging.getLogger(__name__)


class BackupJob(NamedTuple):
    """One backup to ingest: its generation index, a label, and the
    logical chunk stream."""

    generation: int
    label: str
    stream: ChunkStream


def single_user_stream(
    n_generations: int,
    fs_bytes: int,
    seed: int = 2012,
    churn: Optional[ChurnProfile] = None,
    label: str = "user0",
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """Full backups of one evolving file system, one per generation.

    Extra keyword arguments are forwarded to
    :class:`~repro.workloads.fs_model.FileSystemModel` (chunk/file size
    distributions etc.).
    """
    check_positive("n_generations", n_generations)
    log.info(
        "single_user_stream: %d generations x %d bytes (seed %d, label %s)",
        n_generations,
        fs_bytes,
        seed,
        label,
    )
    fs = FileSystemModel(
        seed=seed, initial_bytes=fs_bytes, churn=churn, user=label, **fs_kwargs
    )
    for gen in range(n_generations):
        if gen > 0:
            fs.evolve()
        yield BackupJob(generation=gen, label=label, stream=fs.full_backup())


def single_user_incrementals(
    n_generations: int,
    fs_bytes: int,
    seed: int = 2012,
    churn: Optional[ChurnProfile] = None,
    label: str = "user0",
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """Generation 0 is a full backup; every later generation ships only
    the files touched since the previous backup (file-level incremental,
    the regime of the paper's Fig. 3 / SiLo evaluation)."""
    check_positive("n_generations", n_generations)
    fs = FileSystemModel(
        seed=seed, initial_bytes=fs_bytes, churn=churn, user=label, **fs_kwargs
    )
    yield BackupJob(generation=0, label=label, stream=fs.full_backup())
    for gen in range(1, n_generations):
        fs.evolve()
        yield BackupJob(generation=gen, label=label, stream=fs.incremental_backup())


def author_fs_20_incremental(
    fs_bytes: int = 64 * MIB,
    seed: int = 2012,
    n_generations: int = 20,
    churn: Optional[ChurnProfile] = None,
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """The Fig. 3 dataset: ~20 incremental backup generations of one
    author's file system (as in the SiLo evaluation)."""
    return single_user_incrementals(
        n_generations=n_generations,
        fs_bytes=fs_bytes,
        seed=seed,
        churn=churn,
        label="author-fs-incr",
        **fs_kwargs,
    )


def author_fs_20_full(
    fs_bytes: int = 64 * MIB,
    seed: int = 2012,
    n_generations: int = 20,
    churn: Optional[ChurnProfile] = None,
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """The Fig. 2/3 dataset: 20 full backups of one author's FS.

    ``fs_bytes`` scales the 647 GB original down to something a laptop
    simulates in seconds; the redundancy *structure* across generations
    is what matters, and it is size-invariant here.
    """
    return single_user_stream(
        n_generations=n_generations,
        fs_bytes=fs_bytes,
        seed=seed,
        churn=churn,
        label="author-fs",
        **fs_kwargs,
    )


def _shared_pool(seed: int, nbytes: int, avg_chunk: int = 8 * KIB):
    """Common content (OS images, toolchains) sampled into every user's
    initial file system."""
    n = max(1, nbytes // avg_chunk)
    alloc = ChunkIdAllocator(seed)
    fps = splitmix64_array(np.arange(1 << 60, (1 << 60) + n, dtype=np.uint64))
    sizes = alloc.chunk_sizes(n, avg_chunk, avg_chunk // 4, avg_chunk * 8)
    return fps, sizes


def group_fs_66(
    per_user_bytes: int = 32 * MIB,
    seed: int = 2012,
    n_users: int = 5,
    n_backups: int = 66,
    churn: Optional[ChurnProfile] = None,
    shared_frac: float = 0.15,
    **fs_kwargs,
) -> Iterator[BackupJob]:
    """The Fig. 4/5/6 dataset: 66 backups from five users' file systems.

    Users are backed up round-robin (user ``g % n_users`` at generation
    ``g``), each evolving independently between its own backups; a shared
    pool of ``shared_frac`` of each FS provides cross-user redundancy.
    """
    check_positive("per_user_bytes", per_user_bytes)
    check_positive("n_users", n_users)
    check_positive("n_backups", n_backups)
    log.info(
        "group_fs_66: %d users x %d bytes, %d backups (seed %d, shared %.0f%%)",
        n_users,
        per_user_bytes,
        n_backups,
        seed,
        shared_frac * 100,
    )
    alloc = ChunkIdAllocator(seed)
    pool = _shared_pool(derive(seed, "pool"), int(per_user_bytes * 1.5))
    users = [
        FileSystemModel(
            seed=seed,
            initial_bytes=per_user_bytes,
            churn=churn,
            user=f"student{u}",
            allocator=alloc,
            shared_pool=pool,
            shared_frac=shared_frac,
            **fs_kwargs,
        )
        for u in range(n_users)
    ]
    seen = [False] * n_users
    for gen in range(n_backups):
        u = gen % n_users
        if seen[u]:
            users[u].evolve()
        seen[u] = True
        yield BackupJob(generation=gen, label=f"student{u}", stream=users[u].full_backup())


def derive(seed: int, tag: str) -> int:
    """Small local helper mirroring :func:`repro._util.derive_seed` for
    readability at call sites."""
    from repro._util import derive_seed

    return derive_seed(seed, tag)
