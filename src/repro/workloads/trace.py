"""Backup-trace persistence.

Traces (sequences of :class:`~repro.workloads.generators.BackupJob`) can
be materialized to a single ``.npz`` file and replayed later, so that an
expensive workload generation is paid once per parameter set and every
engine sees byte-identical input.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator, List

import numpy as np

from repro.chunking.base import ChunkStream
from repro.workloads.generators import BackupJob


def save_trace(jobs: Iterable[BackupJob], path: "str | Path") -> int:
    """Write a trace to ``path`` (npz). Returns the number of backups."""
    path = Path(path)
    fps_parts: List[np.ndarray] = []
    sizes_parts: List[np.ndarray] = []
    boundaries = [0]
    meta = []
    total = 0
    for job in jobs:
        fps_parts.append(job.stream.fps)
        sizes_parts.append(job.stream.sizes)
        total += len(job.stream)
        boundaries.append(total)
        meta.append({"generation": job.generation, "label": job.label})
    fps = np.concatenate(fps_parts) if fps_parts else np.zeros(0, dtype=np.uint64)
    sizes = np.concatenate(sizes_parts) if sizes_parts else np.zeros(0, dtype=np.uint32)
    np.savez_compressed(
        path,
        fps=fps,
        sizes=sizes,
        boundaries=np.asarray(boundaries, dtype=np.int64),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    return len(meta)


def load_trace(path: "str | Path") -> Iterator[BackupJob]:
    """Replay a trace written by :func:`save_trace`."""
    with np.load(Path(path)) as data:
        fps = data["fps"]
        sizes = data["sizes"]
        boundaries = data["boundaries"]
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
    for i, m in enumerate(meta):
        a, b = int(boundaries[i]), int(boundaries[i + 1])
        yield BackupJob(
            generation=int(m["generation"]),
            label=str(m["label"]),
            stream=ChunkStream(fps[a:b], sizes[a:b]),
        )
