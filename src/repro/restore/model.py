"""The paper's analytic read model (Eq. 1).

A file whose chunks lie in N physically separate parts costs N
positionings plus one streaming pass over its bytes:

    F(read) = N * T_seek + f_size / W_seq

The paper's observation follows immediately: against a linear layout
(N == 1) the slowdown is ~N× in the seek-dominated regime.
"""

from __future__ import annotations

from repro._util import check_nonnegative, check_positive
from repro.storage.disk import DiskProfile, HDD_2012


def read_time_eq1(
    n_fragments: int,
    file_bytes: int,
    profile: DiskProfile = HDD_2012,
) -> float:
    """Eq. 1: seconds to read ``file_bytes`` split into ``n_fragments``
    physically separate parts."""
    check_nonnegative("n_fragments", n_fragments)
    check_nonnegative("file_bytes", file_bytes)
    return n_fragments * profile.seek_time_s + file_bytes / profile.seq_bandwidth


def read_rate_eq1(
    n_fragments: int,
    file_bytes: int,
    profile: DiskProfile = HDD_2012,
) -> float:
    """Effective read bandwidth (bytes/s) implied by Eq. 1."""
    check_positive("file_bytes", file_bytes)
    return file_bytes / read_time_eq1(n_fragments, file_bytes, profile)
