"""Restore subsystem: planned recipe-driven reads and the Eq. 1 model.

Restoring a backup walks its recipe in logical order through a
deterministic access plan and pulls whole containers from the store
through a policy-pluggable container cache. Every priced positioning is
one N of the paper's

    F(read) = N * T_seek + f_size / W_seq          (Eq. 1)

which :func:`read_time_eq1` evaluates directly and
:class:`RestoreReader` realizes operationally on the simulated disk.
Three mechanisms shape N (see DESIGN.md §11):

* pluggable cache policies (:mod:`repro.restore.cache`) — LRU (default),
  LFU, and the clairvoyant Belady upper bound;
* the forward assembly area (:mod:`repro.restore.faa`) — windowed
  in-order assembly reading each container at most once per window;
* container read-ahead — sequential runs of adjacent containers fetched
  as one positioning plus one long transfer.
"""

from repro.restore.cache import (
    RESTORE_POLICIES,
    BeladyCache,
    CacheStats,
    LFUCache,
    LRUCache,
    RestoreCache,
    make_cache,
)
from repro.restore.faa import AssemblyPlan, AssemblyWindow, access_trace, plan_assembly
from repro.restore.model import read_rate_eq1, read_time_eq1
from repro.restore.reader import (
    READAHEAD_HORIZON,
    RestoreReader,
    RestoreReport,
    RestoreStats,
)

__all__ = [
    "RestoreReader",
    "RestoreReport",
    "RestoreStats",
    "READAHEAD_HORIZON",
    "read_time_eq1",
    "read_rate_eq1",
    "RESTORE_POLICIES",
    "RestoreCache",
    "CacheStats",
    "LRUCache",
    "LFUCache",
    "BeladyCache",
    "make_cache",
    "AssemblyPlan",
    "AssemblyWindow",
    "plan_assembly",
    "access_trace",
]
