"""Restore substrate: recipe-driven reads and the Eq. 1 read model.

Restoring a backup walks its recipe in logical order and pulls whole
containers from the store through an LRU container cache. Every switch
to a non-cached container is one positioning — the N of the paper's

    F(read) = N * T_seek + f_size / W_seq          (Eq. 1)

which :func:`read_time_eq1` evaluates directly and
:class:`RestoreReader` realizes operationally on the simulated disk.
"""

from repro.restore.reader import RestoreReader, RestoreReport
from repro.restore.model import read_time_eq1, read_rate_eq1

__all__ = ["RestoreReader", "RestoreReport", "read_time_eq1", "read_rate_eq1"]
