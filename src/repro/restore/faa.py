"""Forward assembly area: recipe-lookahead restore planning.

A restore knows its whole future — the recipe lists every chunk in
stream order — so the reader does not have to discover container
references one run at a time. The forward assembly area (FAA) slices
the logical stream into fixed windows of ``window_chunks`` chunks,
assembles each window in memory, and reads every container section a
window needs **at most once per window**, no matter how its chunks
interleave (the technique of Lillibridge et al., FAST'13, at container
granularity).

:func:`plan_assembly` turns a recipe into the deterministic
:class:`AssemblyPlan` the reader executes:

* one :class:`AssemblyWindow` per ``window_chunks`` chunk extent, whose
  ``accesses`` are the distinct containers the window touches, in
  first-need order;
* ``window_chunks <= 0`` disables the FAA: each maximal same-container
  run becomes its own single-access window, which is exactly the
  original scalar reader's access sequence (the default path's
  byte-identity anchor).

The flattened ``trace`` of a plan is the policy-independent container
access sequence — the input to the Belady oracle and the unit the
cache-policy property suite compares across policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.storage.layout import container_run_lengths
from repro.storage.recipe import BackupRecipe

__all__ = ["AssemblyWindow", "AssemblyPlan", "plan_assembly", "access_trace"]


@dataclass(frozen=True)
class AssemblyWindow:
    """One assembly window: a chunk extent plus its container needs.

    Attributes:
        chunk_start / chunk_stop: the logical chunk range ``[start,
            stop)`` this window assembles.
        accesses: distinct container ids the window's chunks live in,
            ordered by first need within the window.
    """

    chunk_start: int
    chunk_stop: int
    accesses: Tuple[int, ...]

    @property
    def n_chunks(self) -> int:
        return self.chunk_stop - self.chunk_start


@dataclass(frozen=True)
class AssemblyPlan:
    """The full, deterministic read plan of one restore.

    Attributes:
        window_chunks: the FAA window size the plan was built with
            (0 = FAA off, run-granular access).
        n_chunks: chunks the plan assembles (== the recipe's).
        n_runs: maximal same-container runs in the recipe (Eq. 1's N at
            container granularity; independent of the window size).
        windows: the ordered assembly windows.
    """

    window_chunks: int
    n_chunks: int
    n_runs: int
    windows: Tuple[AssemblyWindow, ...]

    @property
    def trace(self) -> List[int]:
        """The flattened container access sequence, window by window."""
        return [cid for w in self.windows for cid in w.accesses]

    def covers(self, recipe: BackupRecipe) -> bool:
        """Sanity invariant: the windows partition the recipe's chunk
        range contiguously and each window's access set is exactly the
        containers its chunk extent references — i.e. assembling window
        by window reconstructs every logical chunk, in order."""
        pos = 0
        for w in self.windows:
            if w.chunk_start != pos or w.chunk_stop <= w.chunk_start:
                return False
            needed = set(
                int(c) for c in np.unique(recipe.containers[w.chunk_start : w.chunk_stop])
            )
            if set(w.accesses) != needed or len(w.accesses) != len(needed):
                return False
            pos = w.chunk_stop
        return pos == recipe.n_chunks


def plan_assembly(recipe: BackupRecipe, window_chunks: int = 0) -> AssemblyPlan:
    """Build the :class:`AssemblyPlan` for one recipe.

    Args:
        recipe: the backup (or file extent) to restore.
        window_chunks: FAA window size in chunks; ``<= 0`` disables the
            FAA (one window per same-container run — the scalar access
            sequence).
    """
    runs = container_run_lengths(recipe.containers)
    n = recipe.n_chunks
    n_runs = int(runs.size)
    if n == 0:
        return AssemblyPlan(
            window_chunks=max(0, int(window_chunks)), n_chunks=0, n_runs=0, windows=()
        )
    run_starts = np.concatenate(([0], np.cumsum(runs)[:-1]))
    run_cids = recipe.containers[run_starts]
    if window_chunks <= 0:
        windows = tuple(
            AssemblyWindow(
                chunk_start=int(s), chunk_stop=int(s + ln), accesses=(int(c),)
            )
            for s, ln, c in zip(run_starts, runs, run_cids)
        )
        return AssemblyPlan(window_chunks=0, n_chunks=n, n_runs=n_runs, windows=windows)

    window_chunks = int(window_chunks)
    run_ends = run_starts + runs
    windows: List[AssemblyWindow] = []
    r = 0  # first run overlapping the current window
    for start in range(0, n, window_chunks):
        stop = min(start + window_chunks, n)
        accesses: List[int] = []
        seen = set()
        k = r
        while k < run_starts.size and run_starts[k] < stop:
            cid = int(run_cids[k])
            if cid not in seen:
                seen.add(cid)
                accesses.append(cid)
            k += 1
        # runs wholly consumed by this window never overlap the next
        while r < run_ends.size and run_ends[r] <= stop:
            r += 1
        windows.append(
            AssemblyWindow(chunk_start=start, chunk_stop=stop, accesses=tuple(accesses))
        )
    return AssemblyPlan(
        window_chunks=window_chunks, n_chunks=n, n_runs=n_runs, windows=tuple(windows)
    )


def access_trace(
    recipe: BackupRecipe, window_chunks: int = 0
) -> Tuple[List[int], List[int], int]:
    """The reader's hot-path view of :func:`plan_assembly`.

    Returns ``(trace, window_ends, n_runs)``: the flattened container
    access sequence, the per-access exclusive end index of its window
    within ``trace`` (the read-ahead scope boundary), and the recipe's
    run count. Equivalent to flattening :func:`plan_assembly` — the
    property suite asserts so — but skips building window objects, which
    matters on the default per-run path where a fragmented backup has
    tens of thousands of runs.
    """
    runs = container_run_lengths(recipe.containers)
    n = recipe.n_chunks
    n_runs = int(runs.size)
    if n == 0:
        return [], [], 0
    run_starts = np.concatenate(([0], np.cumsum(runs)[:-1]))
    run_cids = recipe.containers[run_starts]
    if window_chunks <= 0:
        trace = [int(c) for c in run_cids]
        return trace, list(range(1, n_runs + 1)), n_runs

    window_chunks = int(window_chunks)
    run_ends = run_starts + runs
    trace: List[int] = []
    window_ends: List[int] = []
    r = 0
    for start in range(0, n, window_chunks):
        stop = min(start + window_chunks, n)
        seen = set()
        k = r
        while k < run_starts.size and run_starts[k] < stop:
            cid = int(run_cids[k])
            if cid not in seen:
                seen.add(cid)
                trace.append(cid)
            k += 1
        while r < run_ends.size and run_ends[r] <= stop:
            r += 1
        window_ends.extend([len(trace)] * len(seen))
    return trace, window_ends, n_runs
