"""Recipe-driven restore with an LRU container cache.

The reader walks a backup recipe in logical order, collapsed to runs of
consecutive chunks in the same container (vectorized via the layout
analyzer's run decomposition). A run whose container is cached costs
nothing extra; otherwise the whole container is read (one seek + payload
transfer). Simulated restore bandwidth is logical bytes over elapsed
simulated seconds — the quantity of the paper's Fig. 6.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from typing import Optional

from repro._util import MIB, check_positive
from repro.restore.model import read_time_eq1
from repro.storage.layout import container_run_lengths
from repro.storage.recipe import BackupRecipe
from repro.storage.store import ContainerStore, StoreConfig, _deprecated_kwarg


@dataclass(frozen=True)
class RestoreReport:
    """Result of restoring one backup.

    Attributes:
        generation: backup generation restored.
        label: the backup's label.
        logical_bytes: bytes reconstructed.
        n_chunks: chunks reconstructed.
        n_runs: physically contiguous runs in the recipe (Eq. 1's N at
            container granularity).
        container_reads: containers actually fetched (cache misses).
        cache_hits: runs served from the container cache.
        elapsed_seconds: simulated time taken.
        eq1_seconds: the analytic Eq. 1 prediction with N = container
            fetches (for cross-checking the operational model).
    """

    generation: int
    label: str
    logical_bytes: int
    n_chunks: int
    n_runs: int
    container_reads: int
    cache_hits: int
    elapsed_seconds: float
    eq1_seconds: float

    @property
    def read_rate(self) -> float:
        """Restore bandwidth, bytes/second (simulated)."""
        return self.logical_bytes / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def seeks_per_mib(self) -> float:
        if not self.logical_bytes:
            return 0.0
        return self.container_reads / (self.logical_bytes / MIB)


class RestoreReader:
    """Restores backups from a container store.

    Args:
        store: the container store holding the physical data (and the
            disk model all costs are charged to).
        config: a :class:`~repro.storage.store.StoreConfig` supplying
            ``cache_containers`` (the LRU container-payload cache
            capacity — a restore client's read buffer). Defaults to the
            store's own config, so reader and store are sized together.
        cache_containers: deprecated alias for the config field (one
            release).
    """

    def __init__(
        self,
        store: ContainerStore,
        cache_containers: Optional[int] = None,
        *,
        config: Optional[StoreConfig] = None,
    ) -> None:
        if config is None:
            config = store.config
        if cache_containers is not None:
            _deprecated_kwarg("cache_containers")
            from dataclasses import replace

            config = replace(config, cache_containers=int(cache_containers))
        check_positive("cache_containers", config.cache_containers)
        self.store = store
        self.config = config
        self.cache_containers = int(config.cache_containers)

    def restore(self, recipe: BackupRecipe) -> RestoreReport:
        """Reconstruct one backup; returns the performance report."""
        disk = self.store.disk
        t0 = disk.clock.now
        cache: "OrderedDict[int, bool]" = OrderedDict()
        container_reads = 0
        cache_hits = 0

        runs = container_run_lengths(recipe.containers)
        # container id at the head of each run
        if recipe.n_chunks:
            run_starts = np.concatenate(([0], np.cumsum(runs)[:-1]))
            run_cids = recipe.containers[run_starts]
        else:
            run_cids = np.zeros(0, dtype=np.int64)

        for cid in run_cids:
            cid = int(cid)
            if cid in cache:
                cache.move_to_end(cid)
                cache_hits += 1
                continue
            self.store.read_container(cid)
            container_reads += 1
            cache[cid] = True
            if len(cache) > self.cache_containers:
                cache.popitem(last=False)

        elapsed = disk.clock.now - t0
        report = RestoreReport(
            generation=recipe.generation,
            label=recipe.label or "",
            logical_bytes=recipe.total_bytes,
            n_chunks=recipe.n_chunks,
            n_runs=int(runs.size),
            container_reads=container_reads,
            cache_hits=cache_hits,
            elapsed_seconds=elapsed,
            eq1_seconds=read_time_eq1(
                container_reads, recipe.total_bytes, disk.profile
            ),
        )
        self._record(report)
        return report

    def _record(self, report: RestoreReport) -> None:
        """Feed the ambient observability session (no-op when disabled)."""
        from repro.obs import YIELD_EDGES, get_active

        obs = get_active()
        if not obs.enabled:
            return
        reg = obs.registry
        reg.counter("restore.backups").inc()
        reg.counter("restore.bytes").inc(report.logical_bytes)
        reg.counter("restore.container_reads").inc(report.container_reads)
        reg.counter("restore.cache_hits").inc(report.cache_hits)
        reg.span("restore.phase.read").record(
            report.elapsed_seconds, count=report.container_reads
        )
        reg.histogram("restore.seeks_per_mib", YIELD_EDGES).observe(
            report.seeks_per_mib
        )
        if obs.events.enabled:
            obs.events.emit(
                "restore",
                generation=report.generation,
                label=report.label,
                logical_bytes=report.logical_bytes,
                container_reads=report.container_reads,
                cache_hits=report.cache_hits,
                sim_seconds=report.elapsed_seconds,
                read_rate=report.read_rate,
            )

    def restore_file(self, recipe: BackupRecipe, start: int, n_chunks: int) -> RestoreReport:
        """Restore a single file (a chunk extent of the backup) — the
        paper's Fig. 1 / Eq. 1 scenario: an N-fragment file costs ~N
        positionings.

        Raises:
            ValueError: if the extent falls outside the recipe
                (previously an out-of-range extent was silently clamped
                by the slice, restoring fewer chunks than asked for).
        """
        start = int(start)
        n_chunks = int(n_chunks)
        if start < 0 or n_chunks < 0 or start + n_chunks > recipe.n_chunks:
            raise ValueError(
                f"file extent [{start}, {start + n_chunks}) out of bounds "
                f"for a recipe of {recipe.n_chunks} chunks"
            )
        return self.restore(recipe.slice(start, start + n_chunks))
