"""Recipe-driven restore: pluggable caches, forward assembly, read-ahead.

The reader walks a backup recipe in logical order through a
deterministic access plan (see :mod:`repro.restore.faa`) and pulls whole
containers from the store through a bounded, policy-pluggable container
cache (see :mod:`repro.restore.cache`). Three independently switchable
mechanisms shape the cost:

* **cache policy** — ``lru`` (default, the original reader's exact
  behaviour), ``lfu``, or the clairvoyant ``belady`` upper bound;
* **forward assembly area** — with ``faa_window > 0`` the stream is
  assembled in windows of that many chunks and each container section is
  read at most once per window, however its chunks interleave;
* **read-ahead** — a miss whose window (or a bounded lookahead, when the
  FAA is off) also needs the physically *next* containers fetches the
  whole sequential run in one positioning plus one long transfer.

With everything at its default (LRU, no FAA, no read-ahead) the reader
charges the simulated disk the identical operations in the identical
order as the original 192-line scalar loop — the golden-output and
property suites pin that equivalence.

Simulated restore bandwidth is logical bytes over elapsed simulated
seconds — the quantity of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import List, Optional

from repro._util import MIB, check_nonnegative, check_positive
from repro.restore.cache import RESTORE_POLICIES, make_cache
from repro.restore.faa import access_trace
from repro.restore.model import read_time_eq1
from repro.storage.recipe import BackupRecipe
from repro.storage.store import ContainerStore, StoreConfig

#: Read-ahead lookahead (in trace accesses) when the FAA is off — the
#: FAA's window otherwise bounds how far ahead need is known.
READAHEAD_HORIZON = 64


@dataclass(frozen=True)
class RestoreReport:
    """Result of restoring one backup.

    Attributes:
        generation: backup generation restored.
        label: the backup's label.
        logical_bytes: bytes reconstructed.
        n_chunks: chunks reconstructed.
        n_runs: physically contiguous runs in the recipe (Eq. 1's N at
            container granularity).
        container_reads: containers actually fetched (cache misses plus
            read-ahead prefetches).
        cache_hits: plan accesses served from the container cache.
        elapsed_seconds: simulated time taken.
        eq1_seconds: the analytic Eq. 1 prediction with N = priced
            positionings (for cross-checking the operational model).
        cache_misses: plan accesses that had to touch the store.
        cache_evictions: containers the policy pushed out of the cache.
        seeks: positionings actually priced — one per miss, with a
            read-ahead batch of adjacent containers costing a single
            positioning (always == ``container_reads`` when read-ahead
            is off).
        readahead_batches: misses that were widened into a multi-
            container sequential batch.
        policy / faa_window / readahead: the reader configuration the
            restore ran under.
    """

    generation: int
    label: str
    logical_bytes: int
    n_chunks: int
    n_runs: int
    container_reads: int
    cache_hits: int
    elapsed_seconds: float
    eq1_seconds: float
    cache_misses: int = 0
    cache_evictions: int = 0
    seeks: int = 0
    readahead_batches: int = 0
    policy: str = "lru"
    faa_window: int = 0
    readahead: bool = False

    @property
    def read_rate(self) -> float:
        """Restore bandwidth, bytes/second (simulated)."""
        return self.logical_bytes / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def seeks_per_mib(self) -> float:
        """Priced positionings per MiB of logical data restored."""
        if not self.logical_bytes:
            return 0.0
        return self.seeks / (self.logical_bytes / MIB)


@dataclass
class RestoreStats:
    """Cumulative accounting across every restore a reader performed.

    The twin-run suite asserts these totals are identical with
    observability on and off — recording must never change what the
    restore path does to the simulated disk.
    """

    restores: int = 0
    logical_bytes: int = 0
    n_chunks: int = 0
    container_reads: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    seeks: int = 0
    readahead_batches: int = 0
    elapsed_seconds: float = 0.0

    def add(self, report: RestoreReport) -> None:
        """Fold one restore's report into the running totals."""
        self.restores += 1
        self.logical_bytes += report.logical_bytes
        self.n_chunks += report.n_chunks
        self.container_reads += report.container_reads
        self.cache_hits += report.cache_hits
        self.cache_misses += report.cache_misses
        self.cache_evictions += report.cache_evictions
        self.seeks += report.seeks
        self.readahead_batches += report.readahead_batches
        self.elapsed_seconds += report.elapsed_seconds


class RestoreReader:
    """Restores backups from a container store.

    Args:
        store: the container store holding the physical data (and the
            disk model all costs are charged to).
        config: a :class:`~repro.storage.store.StoreConfig` supplying
            ``cache_containers`` (the container-payload cache capacity —
            a restore client's read buffer). Defaults to the store's own
            config, so reader and store are sized together.
        policy: cache eviction policy — ``lru`` (default), ``lfu``, or
            ``belady`` (the offline optimum computed from the recipe's
            future references).
        faa_window: forward-assembly window in chunks; 0 (default)
            disables the FAA and reads run-at-a-time like the original
            scalar reader.
        readahead: batch a miss with the physically adjacent containers
            the current window also needs into one priced positioning.
    """

    def __init__(
        self,
        store: ContainerStore,
        *,
        config: Optional[StoreConfig] = None,
        policy: str = "lru",
        faa_window: int = 0,
        readahead: bool = False,
    ) -> None:
        if config is None:
            config = store.config
        check_positive("cache_containers", config.cache_containers)
        check_nonnegative("faa_window", faa_window)
        if policy not in RESTORE_POLICIES:
            raise ValueError(
                f"unknown restore cache policy {policy!r}; "
                f"pick one of {', '.join(RESTORE_POLICIES)}"
            )
        self.store = store
        self.config = config
        self.cache_containers = int(config.cache_containers)
        self.policy = policy
        self.faa_window = int(faa_window)
        self.readahead = bool(readahead)
        self.stats = RestoreStats()

    def restore(self, recipe: BackupRecipe) -> RestoreReport:
        """Reconstruct one backup; returns the performance report."""
        from repro.obs import get_active

        store = self.store
        disk = store.disk
        obs = get_active()
        t0 = disk.clock.now
        d0 = disk.stats.snapshot()

        trace, window_ends, n_runs = access_trace(recipe, self.faa_window)
        cache = make_cache(self.policy, self.cache_containers, trace)
        evicted: List[int] = []
        if obs.enabled and obs.events.enabled:
            cache.on_evict = evicted.append

        seeks = 0
        container_reads = 0
        readahead_batches = 0
        use_readahead = self.readahead
        horizon = READAHEAD_HORIZON if self.faa_window <= 0 else 0
        n_trace = len(trace)
        for pos, cid in enumerate(trace):
            if cache.access(cid, pos):
                continue
            batch = [cid]
            if use_readahead:
                end = window_ends[pos] if not horizon else min(pos + 1 + horizon, n_trace)
                if end > pos + 1:
                    upcoming = set(trace[pos + 1 : end])
                    nxt = cid + 1
                    while nxt in upcoming and nxt not in cache and store.has(nxt):
                        batch.append(nxt)
                        nxt += 1
            if len(batch) == 1:
                store.read_container(cid)
            else:
                store.read_container_run(batch)
                readahead_batches += 1
            seeks += 1
            container_reads += len(batch)
            for fetched in batch:
                cache.admit(fetched, pos)

        elapsed = disk.clock.now - t0
        delta = disk.stats.delta_since(d0)
        report = RestoreReport(
            generation=recipe.generation,
            label=recipe.label or "",
            logical_bytes=recipe.total_bytes,
            n_chunks=recipe.n_chunks,
            n_runs=n_runs,
            container_reads=container_reads,
            cache_hits=cache.stats.hits,
            elapsed_seconds=elapsed,
            eq1_seconds=read_time_eq1(seeks, recipe.total_bytes, disk.profile),
            cache_misses=cache.stats.misses,
            cache_evictions=cache.stats.evictions,
            seeks=seeks,
            readahead_batches=readahead_batches,
            policy=self.policy,
            faa_window=self.faa_window,
            readahead=self.readahead,
        )
        self.stats.add(report)
        if obs.enabled:
            self._record(
                obs, report, seek_s=delta.seek_time_s, transfer_s=delta.read_time_s,
                evicted=evicted,
            )
        return report

    def _record(
        self,
        obs,
        report: RestoreReport,
        *,
        seek_s: float,
        transfer_s: float,
        evicted: List[int],
    ) -> None:
        """Feed the observability session (only called when enabled)."""
        from repro.obs import YIELD_EDGES

        reg = obs.registry
        reg.counter("restore.backups").inc()
        reg.counter("restore.bytes").inc(report.logical_bytes)
        reg.counter("restore.container_reads").inc(report.container_reads)
        reg.counter("restore.cache_hits").inc(report.cache_hits)
        reg.counter("restore.cache_misses").inc(report.cache_misses)
        reg.counter("restore.cache_evictions").inc(report.cache_evictions)
        reg.counter("restore.seeks").inc(report.seeks)
        reg.counter("restore.readahead_batches").inc(report.readahead_batches)
        reg.span("restore.phase.read").record(
            report.elapsed_seconds, count=report.container_reads
        )
        reg.span("restore.phase.seek").record(seek_s, count=report.seeks)
        reg.span("restore.phase.transfer").record(
            transfer_s, count=report.container_reads
        )
        reg.histogram("restore.seeks_per_mib", YIELD_EDGES).observe(
            report.seeks_per_mib
        )
        # trajectory samples on the simulated clock: how restore locality
        # evolves as placement de-linearizes across generations
        now = self.store.disk.clock.now
        reg.timeseries("restore.ts.seeks_per_mib").sample(now, report.seeks_per_mib)
        lookups = report.cache_hits + report.cache_misses
        if lookups:
            reg.timeseries("restore.ts.cache_hit_ratio").sample(
                now, report.cache_hits / lookups
            )
        reg.timeseries("restore.ts.read_rate_mbps").sample(
            now, report.read_rate / MIB
        )
        if obs.events.enabled:
            for cid in evicted:
                obs.events.emit(
                    "restore_cache_evict",
                    generation=report.generation,
                    cid=cid,
                    policy=report.policy,
                )
            obs.events.emit(
                "restore",
                generation=report.generation,
                t=now,
                label=report.label,
                logical_bytes=report.logical_bytes,
                container_reads=report.container_reads,
                cache_hits=report.cache_hits,
                cache_misses=report.cache_misses,
                cache_evictions=report.cache_evictions,
                seeks=report.seeks,
                readahead_batches=report.readahead_batches,
                policy=report.policy,
                faa_window=report.faa_window,
                readahead=report.readahead,
                sim_seconds=report.elapsed_seconds,
                read_rate=report.read_rate,
            )

    def restore_file(self, recipe: BackupRecipe, start: int, n_chunks: int) -> RestoreReport:
        """Restore a single file (a chunk extent of the backup) — the
        paper's Fig. 1 / Eq. 1 scenario: an N-fragment file costs ~N
        positionings.

        Seek accounting follows Eq. 1 exactly: only a distinct *uncached*
        container visit prices a positioning; cache hits are free, and a
        read-ahead batch prices one positioning for its whole sequential
        run (``tests/restore/test_seek_accounting.py`` pins this).

        Raises:
            ValueError: if the extent falls outside the recipe
                (previously an out-of-range extent was silently clamped
                by the slice, restoring fewer chunks than asked for).
        """
        start = int(start)
        n_chunks = int(n_chunks)
        if start < 0 or n_chunks < 0 or start + n_chunks > recipe.n_chunks:
            raise ValueError(
                f"file extent [{start}, {start + n_chunks}) out of bounds "
                f"for a recipe of {recipe.n_chunks} chunks"
            )
        return self.restore(recipe.slice(start, start + n_chunks))
