"""Pluggable restore-cache policies behind one small protocol.

The restore reader holds whole container payloads in a bounded client
cache; which container to evict is the one policy decision the restore
path makes, and this module makes it pluggable:

* :class:`LRUCache` — least-recently-used, the default (and the exact
  behaviour of the original scalar reader, so the default restore path
  stays byte-identical).
* :class:`LFUCache` — least-frequently-used with LRU tie-breaking, the
  classic frequency policy; wins when a few hot containers (shared base
  data) are re-referenced across the whole stream.
* :class:`BeladyCache` — the clairvoyant optimum: evict the cached
  container whose next reference is farthest in the future, computed
  from the recipe's known access trace. Not realizable online; it is
  the upper bound every realizable policy is measured against (a backup
  recipe *does* reveal the whole future, so a production system could
  actually approximate this — see DESIGN.md §11).

The contract (:class:`RestoreCache`) is deliberately tiny and
deterministic: ``access(cid, pos)`` returns hit/miss and updates
recency/frequency bookkeeping; the caller fetches on a miss and then
``admit``\\ s what it read (possibly more than one container, when
read-ahead batched a sequential run). ``pos`` is the index of the
current access in the reader's precomputed trace — LRU/LFU ignore it,
Belady uses it to locate "the future".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro._util import check_positive

__all__ = [
    "RESTORE_POLICIES",
    "CacheStats",
    "RestoreCache",
    "LRUCache",
    "LFUCache",
    "BeladyCache",
    "make_cache",
]

#: Registered policy names, in display order (LRU first: the default).
RESTORE_POLICIES: Tuple[str, ...] = ("lru", "lfu", "belady")

#: "Never referenced again" sentinel for Belady's next-use distance.
_NEVER = 1 << 62


@dataclass
class CacheStats:
    """Hit/miss/eviction accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class RestoreCache:
    """Bounded container cache with a pluggable eviction policy.

    Subclasses implement :meth:`_touch` (hit bookkeeping), :meth:`_admit`
    (insert bookkeeping) and :meth:`_victim` (which resident cid to
    evict). The base class owns capacity enforcement, stats, and the
    optional ``on_evict`` callback (the reader wires it to the
    observability event stream).
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self.stats = CacheStats()
        #: eviction callback ``(cid) -> None``; None = no observer
        self.on_evict: Optional[Callable[[int], None]] = None

    # -- policy hooks ---------------------------------------------------

    def _touch(self, cid: int, pos: int) -> None:
        raise NotImplementedError

    def _admit(self, cid: int, pos: int) -> None:
        raise NotImplementedError

    def _victim(self) -> int:
        raise NotImplementedError

    def _contains(self, cid: int) -> bool:
        raise NotImplementedError

    def _evict(self, cid: int) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- the reader-facing contract -------------------------------------

    def __contains__(self, cid: int) -> bool:
        return self._contains(cid)

    def access(self, cid: int, pos: int) -> bool:
        """One trace access: True on hit (bookkeeping updated), False on
        miss (the caller must fetch and :meth:`admit`)."""
        if self._contains(cid):
            self.stats.hits += 1
            self._touch(cid, pos)
            return True
        self.stats.misses += 1
        return False

    def admit(self, cid: int, pos: int) -> None:
        """Insert a fetched container, evicting per policy when full.
        Admitting a resident cid refreshes it instead (read-ahead can
        admit a container the demand path already holds)."""
        if self._contains(cid):
            self._touch(cid, pos)
            return
        if len(self) >= self.capacity:
            victim = self._victim()
            self._evict(victim)
            self.stats.evictions += 1
            if self.on_evict is not None:
                self.on_evict(victim)
        self._admit(cid, pos)


class LRUCache(RestoreCache):
    """Least-recently-used — the original reader's OrderedDict loop."""

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._order: "OrderedDict[int, bool]" = OrderedDict()

    def _contains(self, cid: int) -> bool:
        return cid in self._order

    def __len__(self) -> int:
        return len(self._order)

    def _touch(self, cid: int, pos: int) -> None:
        self._order.move_to_end(cid)

    def _admit(self, cid: int, pos: int) -> None:
        self._order[cid] = True

    def _victim(self) -> int:
        return next(iter(self._order))

    def _evict(self, cid: int) -> None:
        del self._order[cid]


class LFUCache(RestoreCache):
    """Least-frequently-used, ties broken least-recently-used.

    Deterministic: the victim minimizes ``(frequency, last_access_seq)``.
    Eviction scans the resident set — capacities here are tens of
    containers, so the scan is cheaper than a frequency-bucket DLL.
    """

    def __init__(self, capacity: int) -> None:
        super().__init__(capacity)
        self._seq = 0
        #: cid -> [frequency, last access sequence number]
        self._entries: Dict[int, List[int]] = {}

    def _contains(self, cid: int) -> bool:
        return cid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def _touch(self, cid: int, pos: int) -> None:
        self._seq += 1
        entry = self._entries[cid]
        entry[0] += 1
        entry[1] = self._seq

    def _admit(self, cid: int, pos: int) -> None:
        self._seq += 1
        self._entries[cid] = [1, self._seq]

    def _victim(self) -> int:
        return min(self._entries, key=lambda c: tuple(self._entries[c]))

    def _evict(self, cid: int) -> None:
        del self._entries[cid]


class BeladyCache(RestoreCache):
    """Belady's MIN: evict the resident container re-referenced farthest
    in the future (or never).

    Built from the reader's full access trace — the sequence of cids the
    restore will touch, which a backup recipe fully determines up front.
    With uniform-cost, uniform-size items (whole containers), MIN is
    optimal: no policy can miss fewer times on the same trace with the
    same capacity, which the property suite asserts against LRU/LFU.
    """

    def __init__(self, capacity: int, trace: Sequence[int]) -> None:
        super().__init__(capacity)
        #: cid -> sorted positions where the trace references it
        self._occurrences: Dict[int, List[int]] = {}
        for i, cid in enumerate(trace):
            self._occurrences.setdefault(int(cid), []).append(i)
        #: resident cid -> position of its next reference (or _NEVER)
        self._next_use: Dict[int, int] = {}

    def _next_after(self, cid: int, pos: int) -> int:
        from bisect import bisect_right

        occ = self._occurrences.get(cid)
        if not occ:
            return _NEVER
        i = bisect_right(occ, pos)
        return occ[i] if i < len(occ) else _NEVER

    def _contains(self, cid: int) -> bool:
        return cid in self._next_use

    def __len__(self) -> int:
        return len(self._next_use)

    def _touch(self, cid: int, pos: int) -> None:
        self._next_use[cid] = self._next_after(cid, pos)

    def _admit(self, cid: int, pos: int) -> None:
        self._next_use[cid] = self._next_after(cid, pos)

    def _victim(self) -> int:
        # farthest next use wins; ties (two "never again" residents)
        # break on the larger cid for determinism
        return max(self._next_use, key=lambda c: (self._next_use[c], c))

    def _evict(self, cid: int) -> None:
        del self._next_use[cid]


def make_cache(
    policy: str, capacity: int, trace: Optional[Sequence[int]] = None
) -> RestoreCache:
    """Build a cache by policy name (``lru`` | ``lfu`` | ``belady``).

    ``trace`` (the full access sequence) is required by — and only used
    by — the Belady oracle.
    """
    if policy == "lru":
        return LRUCache(capacity)
    if policy == "lfu":
        return LFUCache(capacity)
    if policy == "belady":
        if trace is None:
            raise ValueError("belady policy needs the full access trace")
        return BeladyCache(capacity, trace)
    raise ValueError(
        f"unknown restore cache policy {policy!r}; "
        f"pick one of {', '.join(RESTORE_POLICIES)}"
    )
