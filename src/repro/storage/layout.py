"""Placement-linearity analysis.

The paper's central observable is the *de-linearization of data
placement*: how far a backup's physical layout departs from its logical
stream order. This module quantifies that from a
:class:`~repro.storage.recipe.BackupRecipe`:

* **container run lengths** — lengths of maximal runs of consecutive
  logical chunks resolved to the same container; long runs == linear
  placement, unit runs == one seek per chunk (the paper's worst case).
* **fragments per MB** — container switches normalized by logical size,
  the N of Eq. 1 per unit of data.
* **linearity** — mean logical bytes retrievable per positioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import MIB
from repro.storage.recipe import BackupRecipe


def container_run_lengths(containers: np.ndarray) -> np.ndarray:
    """Lengths of maximal constant runs in a container-id sequence.

    ``container_run_lengths([5,5,5,7,7,5])`` -> ``[3, 2, 1]``.
    """
    containers = np.asarray(containers)
    if containers.size == 0:
        return np.zeros(0, dtype=np.int64)
    change = np.flatnonzero(containers[1:] != containers[:-1])
    boundaries = np.concatenate(([0], change + 1, [containers.size]))
    return np.diff(boundaries).astype(np.int64)


@dataclass(frozen=True)
class LayoutReport:
    """Summary of one backup's placement linearity.

    Attributes:
        generation: backup generation the report describes.
        n_chunks: logical chunk count.
        logical_bytes: pre-dedup bytes.
        n_fragments: number of physically contiguous pieces (container
            runs); the N of Eq. 1.
        n_distinct_containers: distinct containers referenced.
        mean_run_chunks: average chunks per contiguous run.
        fragments_per_mib: fragments normalized per MiB of logical data.
        bytes_per_seek: mean logical bytes retrieved per positioning.
    """

    generation: int
    n_chunks: int
    logical_bytes: int
    n_fragments: int
    n_distinct_containers: int
    mean_run_chunks: float
    fragments_per_mib: float
    bytes_per_seek: float

    @property
    def delinearization(self) -> float:
        """Fraction of adjacent chunk pairs that break physical
        contiguity, in [0, 1]; 0 == perfectly linear placement."""
        if self.n_chunks <= 1:
            return 0.0
        return (self.n_fragments - 1) / (self.n_chunks - 1)


def analyze_recipe(recipe: BackupRecipe) -> LayoutReport:
    """Compute a :class:`LayoutReport` for one backup recipe."""
    runs = container_run_lengths(recipe.containers)
    n_fragments = int(runs.size)
    logical = recipe.total_bytes
    return LayoutReport(
        generation=recipe.generation,
        n_chunks=recipe.n_chunks,
        logical_bytes=logical,
        n_fragments=n_fragments,
        n_distinct_containers=int(recipe.unique_containers().size),
        mean_run_chunks=float(runs.mean()) if n_fragments else 0.0,
        fragments_per_mib=(n_fragments / (logical / MIB)) if logical else 0.0,
        bytes_per_seek=(logical / n_fragments) if n_fragments else 0.0,
    )
