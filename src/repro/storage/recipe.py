"""Backup recipes: the chunk map a restore needs.

A recipe records, for every logical chunk of one backup stream in stream
order, its fingerprint, size, and the container holding its physical copy.
It is the object the paper's Fig. 1 sketches (chunk metadata in front of
scattered data parts), and the input to both the restore reader and the
placement-linearity analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class BackupRecipe:
    """Immutable chunk map of one completed backup.

    Attributes:
        generation: backup generation number (0-based stream index).
        fingerprints: uint64, one per logical chunk, stream order.
        sizes: uint32 chunk sizes.
        containers: int64 container id holding each chunk's physical copy.
        label: optional human-readable tag (e.g. the user the FS belongs to).
    """

    generation: int
    fingerprints: np.ndarray
    sizes: np.ndarray
    containers: np.ndarray
    label: Optional[str] = None

    def __post_init__(self) -> None:
        n = len(self.fingerprints)
        if len(self.sizes) != n or len(self.containers) != n:
            raise ValueError("recipe arrays must be parallel")

    @property
    def n_chunks(self) -> int:
        return int(len(self.fingerprints))

    @property
    def total_bytes(self) -> int:
        """Logical (pre-dedup) bytes of the backup."""
        return int(self.sizes.sum()) if self.n_chunks else 0

    def unique_containers(self) -> np.ndarray:
        """Sorted unique container ids referenced by this backup."""
        return np.unique(self.containers)

    def container_switches(self) -> int:
        """Number of adjacent chunk pairs whose physical copies live in
        different containers — a direct count of the read path's required
        repositionings (the N of Eq. 1, at container granularity)."""
        if self.n_chunks < 2:
            return 0
        return int(np.count_nonzero(self.containers[1:] != self.containers[:-1]))

    def slice(self, start: int, stop: int) -> "BackupRecipe":
        """Sub-recipe over the chunk range [start, stop) (e.g. one file)."""
        return BackupRecipe(
            generation=self.generation,
            fingerprints=self.fingerprints[start:stop],
            sizes=self.sizes[start:stop],
            containers=self.containers[start:stop],
            label=self.label,
        )


class RecipeBuilder:
    """Incremental recipe construction during deduplication.

    Engines append one entry per logical chunk as they classify it; the
    builder keeps Python lists (cheap appends) and converts to numpy on
    :meth:`finalize`.
    """

    __slots__ = ("generation", "label", "_fps", "_sizes", "_cids")

    def __init__(self, generation: int, label: Optional[str] = None) -> None:
        self.generation = int(generation)
        self.label = label
        self._fps: List[int] = []
        self._sizes: List[int] = []
        self._cids: List[int] = []

    def add(self, fp: int, size: int, cid: int) -> None:
        """Record one logical chunk resolved to container ``cid``."""
        self._fps.append(int(fp))
        self._sizes.append(int(size))
        self._cids.append(int(cid))

    def add_many(self, fps, sizes, cids) -> None:
        """Record a run of chunks (parallel iterables). Plain lists are
        extended as-is (the batch ingest path's bulk append); any other
        iterable is normalized element-wise."""
        if type(fps) is list and type(sizes) is list and type(cids) is list:
            self._fps.extend(fps)
            self._sizes.extend(sizes)
            self._cids.extend(cids)
            return
        self._fps.extend(int(f) for f in fps)
        self._sizes.extend(int(s) for s in sizes)
        self._cids.extend(int(c) for c in cids)

    @property
    def n_chunks(self) -> int:
        return len(self._fps)

    def finalize(self) -> BackupRecipe:
        """Freeze into a :class:`BackupRecipe`."""
        return BackupRecipe(
            generation=self.generation,
            fingerprints=np.asarray(self._fps, dtype=np.uint64),
            sizes=np.asarray(self._sizes, dtype=np.uint32),
            containers=np.asarray(self._cids, dtype=np.int64),
            label=self.label,
        )
