"""Containers: the unit of locality on disk.

DDFS-style systems append new unique chunks, in stream order, into large
fixed-capacity *containers* (the paper's data layout of Fig. 1 is a
sequence of container-resident parts). A container is also the prefetch
unit: on an index hit the engine loads the container's *metadata section*
(all its fingerprints) into RAM so that subsequent nearby duplicates are
resolved without disk I/O, and the restore path reads whole containers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro._util import MIB, check_positive

#: Default container payload capacity (DDFS uses ~4 MB containers).
DEFAULT_CONTAINER_BYTES = 4 * MIB

#: Bytes of metadata stored per chunk in a container's metadata section
#: (fingerprint + size + offset, roughly what DDFS keeps).
CHUNK_METADATA_BYTES = 32


@dataclass(frozen=True)
class SealedContainer:
    """An immutable, fully written container.

    Attributes:
        cid: container id (monotonically increasing log position).
        fingerprints: uint64 array of chunk fingerprints, in write order.
        sizes: uint32 array of chunk sizes, parallel to ``fingerprints``.
        data_bytes: total payload bytes.
    """

    cid: int
    fingerprints: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        if len(self.fingerprints) != len(self.sizes):
            raise ValueError("fingerprints and sizes must be parallel arrays")

    @property
    def n_chunks(self) -> int:
        return int(len(self.fingerprints))

    @property
    def data_bytes(self) -> int:
        return int(self.sizes.sum()) if len(self.sizes) else 0

    @property
    def metadata_bytes(self) -> int:
        """Size of the metadata section prefetched on an index hit."""
        return self.n_chunks * CHUNK_METADATA_BYTES

    def __len__(self) -> int:
        return self.n_chunks


class Container:
    """A mutable, in-progress container accumulating chunks until full.

    The container is *full* when adding the next chunk would exceed its
    byte capacity (a chunk never spans two containers). Sealing converts
    it into a :class:`SealedContainer`.
    """

    __slots__ = ("cid", "capacity", "_fps", "_sizes", "_bytes")

    def __init__(self, cid: int, capacity: int = DEFAULT_CONTAINER_BYTES) -> None:
        check_positive("capacity", capacity)
        self.cid = int(cid)
        self.capacity = int(capacity)
        self._fps: List[int] = []
        self._sizes: List[int] = []
        self._bytes = 0

    @property
    def n_chunks(self) -> int:
        return len(self._fps)

    @property
    def data_bytes(self) -> int:
        return self._bytes

    @property
    def remaining(self) -> int:
        return self.capacity - self._bytes

    def fits(self, size: int) -> bool:
        """True if a chunk of ``size`` bytes fits without overflow.

        An empty container accepts any chunk (even one larger than the
        capacity) so oversized chunks are representable.
        """
        return self._bytes == 0 or size <= self.remaining

    def add(self, fp: int, size: int) -> None:
        """Append one chunk. Caller must have checked :meth:`fits`."""
        if size <= 0:
            raise ValueError(f"chunk size must be > 0, got {size}")
        if not self.fits(size):
            raise ValueError(
                f"chunk of {size} B does not fit in container {self.cid} "
                f"({self.remaining} B remaining)"
            )
        self._fps.append(int(fp))
        self._sizes.append(int(size))
        self._bytes += int(size)

    def add_unchecked(self, fp: int, size: int) -> None:
        """:meth:`add` without the guards, for a caller that has already
        checked :meth:`fits` and normalized the values (the container
        store's per-chunk hot path)."""
        self._fps.append(fp)
        self._sizes.append(size)
        self._bytes += size

    def iter_chunks(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(fingerprint, size)`` in write order."""
        return zip(self._fps, self._sizes)

    def seal(self) -> SealedContainer:
        """Freeze into a :class:`SealedContainer`."""
        return SealedContainer(
            cid=self.cid,
            fingerprints=np.asarray(self._fps, dtype=np.uint64),
            sizes=np.asarray(self._sizes, dtype=np.uint32),
        )

    def __len__(self) -> int:
        return self.n_chunks

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Container(cid={self.cid}, chunks={self.n_chunks}, "
            f"bytes={self._bytes}/{self.capacity})"
        )
