"""Crash recovery: replaying the container log back to consistency.

After a simulated power loss (:class:`~repro.faults.SimulatedCrash`) the
durable state is: every *committed* container, the metadata journal, and
whatever index flushes actually reached disk. Everything else — the open
container, a sealed-but-unmarked (torn) tail, buffered index entries,
and a half-finished GC pass — must be repaired before the log can serve
restores or new backups again. :class:`RecoveryScanner` runs that
repair, in the order real container-log systems do:

1. **Truncate torn tails** — a sealed container without its commit
   marker is the torn write the seal protocol makes detectable; it is
   dropped (only the in-flight backup could reference it).
2. **Reconcile GC** — a dangling ``gc_mark`` (no matching ``gc_commit``)
   rolls *back*: the mark record is dropped and the victims stay (the
   sweep's copies are dead garbage a later pass reclaims). A durable
   ``gc_commit`` whose victims still exist rolls *forward*: victims are
   removed and the retained recipes remapped from the journaled move map.
3. **Rebuild the chunk index** — one sequential scan of every committed
   container's metadata section (charged: one positioning plus the
   metadata transfer), newest copy wins; the rebuilt index is written
   back in one batch. Segment identity is not persisted in container
   metadata, so recovered locations carry ``sid = -1`` (conservatively
   treated as an unrelated stored segment by SPL-based policies).

Every disk access the scanner makes goes through the store's
retry-wrapped read path, so transient errors during recovery are retried
on the same backoff policy as normal operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.storage.recipe import BackupRecipe
from repro.storage.store import ContainerStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.full_index import DiskChunkIndex


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one recovery pass.

    Attributes:
        containers_scanned: committed containers whose metadata was read.
        torn_truncated: sealed-but-uncommitted containers dropped.
        index_entries_rebuilt: fingerprints in the rebuilt index.
        gc_rolled_back: a dangling GC mark was discarded.
        gc_rolled_forward: a durable GC commit was completed.
        recipes_remapped: retained recipes rewritten by a roll-forward.
        sim_seconds: simulated time the pass took.
    """

    containers_scanned: int
    torn_truncated: int
    index_entries_rebuilt: int
    gc_rolled_back: bool
    gc_rolled_forward: bool
    recipes_remapped: int
    sim_seconds: float


class RecoveryScanner:
    """Replays the container log after a simulated crash.

    Args:
        store: the crashed container store (call :meth:`ContainerStore
            .crash` first — the scanner repairs durable state, it does
            not model the power loss itself).
        index: the chunk index to rebuild (optional; pass the engine's
            index so post-recovery dedup finds every surviving copy).
    """

    def __init__(
        self, store: ContainerStore, index: "Optional[DiskChunkIndex]" = None
    ) -> None:
        self.store = store
        self.index = index

    def recover(
        self, retained: Sequence[BackupRecipe] = ()
    ) -> Tuple[RecoveryReport, List[BackupRecipe]]:
        """Run one full recovery pass.

        Args:
            retained: the durable recipes that must stay restorable; a
                GC roll-forward returns them remapped to the
                post-compaction layout (same order), otherwise they are
                returned unchanged.

        Returns:
            ``(report, recipes)`` — the recovery report and the retained
            recipes, remapped if a GC commit was rolled forward.
        """
        disk = self.store.disk
        t0 = disk.clock.now

        torn = self.store.truncate_torn()
        rolled_back, rolled_forward, remapped = self._reconcile_gc(retained)
        scanned, n_entries = self._rebuild_index()

        report = RecoveryReport(
            containers_scanned=scanned,
            torn_truncated=len(torn),
            index_entries_rebuilt=n_entries,
            gc_rolled_back=rolled_back,
            gc_rolled_forward=rolled_forward,
            recipes_remapped=len(remapped) if rolled_forward else 0,
            sim_seconds=disk.clock.now - t0,
        )
        self._record(report)
        return report, remapped

    # ------------------------------------------------------------------

    def _reconcile_gc(
        self, retained: Sequence[BackupRecipe]
    ) -> Tuple[bool, bool, List[BackupRecipe]]:
        """Roll a half-finished GC pass back or forward from the journal."""
        records = self.store.journal_records()
        marks = [r for r in records if r.get("kind") == "gc_mark"]
        commits = [r for r in records if r.get("kind") == "gc_commit"]

        rolled_back = False
        if len(marks) > len(commits):
            # the last mark never reached its commit: the sweep was
            # interrupted before the move map became durable -> roll back
            self.store.journal_pop(marks[-1])
            rolled_back = True

        rolled_forward = False
        remapped = list(retained)
        if commits:
            last = commits[-1]
            stale = [cid for cid in last.get("victims", ()) if self.store.has(cid)]
            if stale:
                # commit is durable but the removals/remap were not
                # applied -> roll forward from the journaled move map
                for cid in stale:
                    self.store.remove(cid)
                moved = {
                    (int(fp), int(cid)): int(new)
                    for (fp, cid), new in last.get("moved", {}).items()
                }
                remapped = [self._remap(r, moved) for r in retained]
                rolled_forward = True
        return rolled_back, rolled_forward, remapped

    @staticmethod
    def _remap(recipe: BackupRecipe, moved: Dict) -> BackupRecipe:
        if not moved:
            return recipe
        cids = recipe.containers.copy()
        for i, (fp, cid) in enumerate(zip(recipe.fingerprints, recipe.containers)):
            new_cid = moved.get((int(fp), int(cid)))
            if new_cid is not None:
                cids[i] = new_cid
        return BackupRecipe(
            generation=recipe.generation,
            fingerprints=recipe.fingerprints,
            sizes=recipe.sizes,
            containers=cids,
            label=recipe.label,
        )

    def _rebuild_index(self) -> Tuple[int, int]:
        """Scan committed container metadata and rebuild the full index."""
        from repro.index.full_index import ChunkLocation

        store = self.store
        cids = store.cids()
        entries: Dict[int, ChunkLocation] = {}
        total_meta = 0
        for cid in cids:
            sealed = store.get(cid)
            total_meta += sealed.metadata_bytes
            loc = ChunkLocation(cid, -1)
            for fp in sealed.fingerprints:
                # ascending cid order: the newest physical copy wins,
                # matching what the pre-crash index pointed at
                entries[int(fp)] = loc
        if cids:
            # one sequential pass over the log's metadata sections
            store._read(total_meta, seeks=1)  # noqa: SLF001 - same package
        n = len(entries)
        if self.index is not None:
            self.index.load_recovered(entries)
            if n:
                # the rebuilt index is written back in one batch
                store._write(n * self.index.entry_bytes, seeks=1)  # noqa: SLF001
        return len(cids), n

    def _record(self, report: RecoveryReport) -> None:
        """Feed the ambient observability session (no-op when disabled)."""
        from repro.obs import get_active

        obs = get_active()
        if not obs.enabled:
            return
        reg = obs.registry
        reg.counter("recovery.passes").inc()
        reg.counter("recovery.torn_truncated").inc(report.torn_truncated)
        reg.counter("recovery.index_entries_rebuilt").inc(report.index_entries_rebuilt)
        if report.gc_rolled_back:
            reg.counter("recovery.gc_rollbacks").inc()
        if report.gc_rolled_forward:
            reg.counter("recovery.gc_rollforwards").inc()
        if obs.events.enabled:
            obs.events.emit(
                "recovery_pass",
                containers_scanned=report.containers_scanned,
                torn_truncated=report.torn_truncated,
                index_entries_rebuilt=report.index_entries_rebuilt,
                gc_rolled_back=report.gc_rolled_back,
                gc_rolled_forward=report.gc_rolled_forward,
                recipes_remapped=report.recipes_remapped,
                sim_seconds=report.sim_seconds,
            )
