"""Analytic disk model.

The paper's performance effects are disk-bound: random accesses (index
page faults, container-metadata prefetches, fragmented restores) cost a
seek, while container payloads stream at sequential bandwidth. The model
here prices exactly those two primitives and advances a simulated clock;
it deliberately does not model rotational position or queueing, which the
paper's analysis (Eq. 1) also abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import SimClock, check_nonnegative, check_positive


@dataclass(frozen=True)
class DiskProfile:
    """Static performance parameters of a storage device.

    Attributes:
        name: human-readable profile name.
        seek_time_s: average cost of one random positioning, seconds.
        seq_bandwidth: sequential transfer rate, bytes/second.
    """

    name: str
    seek_time_s: float
    seq_bandwidth: float

    def __post_init__(self) -> None:
        check_nonnegative("seek_time_s", self.seek_time_s)
        check_positive("seq_bandwidth", self.seq_bandwidth)

    def transfer_time(self, nbytes: int) -> float:
        """Sequential transfer time for ``nbytes`` (no seek)."""
        check_nonnegative("nbytes", nbytes)
        return nbytes / self.seq_bandwidth

    def access_time(self, nbytes: int, seeks: int = 1) -> float:
        """Time for ``seeks`` random positionings plus ``nbytes`` of
        sequential transfer — the Eq. 1 cost shape."""
        check_nonnegative("seeks", seeks)
        return seeks * self.seek_time_s + self.transfer_time(nbytes)


#: A circa-2012 7.2k RPM SATA drive, the class of device behind the
#: paper's testbed numbers (~8 ms average seek, ~120 MB/s streaming).
HDD_2012 = DiskProfile(name="hdd-2012", seek_time_s=8e-3, seq_bandwidth=120e6)

#: Nearline/archive drive: slower positioning, similar streaming rate.
NEARLINE_HDD = DiskProfile(name="nearline-hdd", seek_time_s=12e-3, seq_bandwidth=100e6)

#: SATA SSD: near-zero positioning cost — useful to show the paper's
#: effects collapse when seeks are cheap.
SSD_SATA = DiskProfile(name="ssd-sata", seek_time_s=60e-6, seq_bandwidth=450e6)


@dataclass
class DiskStats:
    """Cumulative operation counts and time attributed to a DiskModel."""

    seeks: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time_s: float = 0.0
    write_time_s: float = 0.0
    seek_time_s: float = 0.0

    @property
    def total_time_s(self) -> float:
        """All simulated disk time (seek + read + write)."""
        return self.read_time_s + self.write_time_s + self.seek_time_s

    def snapshot(self) -> "DiskStats":
        """Return an independent copy (for before/after deltas)."""
        return DiskStats(
            seeks=self.seeks,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            read_time_s=self.read_time_s,
            write_time_s=self.write_time_s,
            seek_time_s=self.seek_time_s,
        )

    def delta_since(self, earlier: "DiskStats") -> "DiskStats":
        """Element-wise ``self - earlier``."""
        return DiskStats(
            seeks=self.seeks - earlier.seeks,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            read_time_s=self.read_time_s - earlier.read_time_s,
            write_time_s=self.write_time_s - earlier.write_time_s,
            seek_time_s=self.seek_time_s - earlier.seek_time_s,
        )


@dataclass
class DiskModel:
    """A disk that charges simulated time to a shared clock.

    Multiple components (dedup engine, container store, restore reader)
    share one DiskModel so that their costs serialize on the same clock,
    mirroring a single-spindle backup appliance.
    """

    profile: DiskProfile = HDD_2012
    clock: SimClock = field(default_factory=SimClock)
    stats: DiskStats = field(default_factory=DiskStats)

    def seek(self, count: int = 1) -> float:
        """Charge ``count`` random positionings; returns seconds charged."""
        check_nonnegative("count", count)
        t = count * self.profile.seek_time_s
        self.stats.seeks += count
        self.stats.seek_time_s += t
        self.clock.advance(t)
        return t

    def read(self, nbytes: int, *, seeks: int = 0) -> float:
        """Charge a read of ``nbytes`` preceded by ``seeks`` positionings."""
        check_nonnegative("nbytes", nbytes)
        t_seek = self.seek(seeks) if seeks else 0.0
        t = self.profile.transfer_time(nbytes)
        self.stats.bytes_read += int(nbytes)
        self.stats.read_time_s += t
        self.clock.advance(t)
        return t + t_seek

    def write(self, nbytes: int, *, seeks: int = 0) -> float:
        """Charge a write of ``nbytes`` preceded by ``seeks`` positionings."""
        check_nonnegative("nbytes", nbytes)
        t_seek = self.seek(seeks) if seeks else 0.0
        t = self.profile.transfer_time(nbytes)
        self.stats.bytes_written += int(nbytes)
        self.stats.write_time_s += t
        self.clock.advance(t)
        return t + t_seek

    def estimate(self, *, seeks: int = 0, nbytes: int = 0) -> float:
        """Pure cost query (no clock advance, no stats)."""
        return self.profile.access_time(nbytes, seeks=seeks)
