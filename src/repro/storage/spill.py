"""Spill backends: the out-of-core half of the container store.

The simulation keeps only container *metadata* (fingerprints + sizes) in
RAM, but at backup-store scale even that metadata outgrows memory —
thousands of sealed containers each holding tens of thousands of chunk
records. A spill backend is where a :class:`~repro.storage.store
.ContainerStore` with a ``resident_containers`` budget parks sealed
containers it evicts from RAM, and where reads fault them back from.

Two backends implement the same four-call protocol
(``put``/``get``/``delete``/``__contains__`` over encoded blobs):

* :class:`DirectorySpill` — one file per container under a spill
  directory: the real out-of-core store (used by ``--spill-dir`` and
  the memory bench).
* :class:`MemorySpill` — a dict of the same encoded blobs: the tmpfs
  shim tests and the chaos sweep use, so the full
  serialize/evict/fault-back cycle is exercised without touching the
  filesystem.

Spill IO is **real machine IO, never simulated IO**: it moves the
Python process's working set, not the modeled backup appliance's disk
head. No spill operation may charge the simulated
:class:`~repro.storage.disk.DiskModel` — that is what keeps the
twin-run contract (results byte-identical with spilling on or off).

The blob format is versioned and self-describing so the recovery
scanner can trust a spill directory that survived a crash::

    MAGIC(4s) | version(u16) | reserved(u16) | cid(i64) | n_chunks(u32)
    | fingerprints: n_chunks * u64 | sizes: n_chunks * u32
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.storage.container import SealedContainer

__all__ = [
    "encode_container",
    "decode_container",
    "ContainerSpill",
    "MemorySpill",
    "DirectorySpill",
    "make_spill",
]

#: blob header: magic, format version, reserved, cid, n_chunks
_HEADER = struct.Struct("<4sHHqI")
_MAGIC = b"RCTN"
_VERSION = 1


def encode_container(sealed: SealedContainer) -> bytes:
    """Serialize a sealed container to its spill blob."""
    fps = np.ascontiguousarray(sealed.fingerprints, dtype=np.uint64)
    sizes = np.ascontiguousarray(sealed.sizes, dtype=np.uint32)
    header = _HEADER.pack(_MAGIC, _VERSION, 0, sealed.cid, len(fps))
    return header + fps.tobytes() + sizes.tobytes()


def decode_container(blob: bytes) -> SealedContainer:
    """Rebuild a sealed container from its spill blob.

    Raises:
        ValueError: on a foreign or truncated blob (a spill directory
            is durable state; corruption must fail loudly, not yield a
            silently short container).
    """
    if len(blob) < _HEADER.size:
        raise ValueError(f"spill blob truncated: {len(blob)} B < header")
    magic, version, _, cid, n = _HEADER.unpack_from(blob)
    if magic != _MAGIC:
        raise ValueError(f"not a container spill blob (magic {magic!r})")
    if version != _VERSION:
        raise ValueError(f"unsupported spill blob version {version}")
    want = _HEADER.size + n * 8 + n * 4
    if len(blob) != want:
        raise ValueError(f"spill blob for cid {cid}: {len(blob)} B != {want} B")
    off = _HEADER.size
    fps = np.frombuffer(blob, dtype=np.uint64, count=n, offset=off)
    sizes = np.frombuffer(blob, dtype=np.uint32, count=n, offset=off + n * 8)
    return SealedContainer(cid=int(cid), fingerprints=fps, sizes=sizes)


class ContainerSpill:
    """Protocol of a spill backend (blob-level; the store owns codecs)."""

    def put(self, cid: int, blob: bytes) -> None:
        raise NotImplementedError

    def get(self, cid: int) -> bytes:
        raise NotImplementedError

    def delete(self, cid: int) -> None:
        raise NotImplementedError

    def __contains__(self, cid: int) -> bool:
        raise NotImplementedError

    def cids(self) -> Iterator[int]:
        raise NotImplementedError


class MemorySpill(ContainerSpill):
    """Dict-backed spill: the in-memory tmpfs shim for tests and chaos.

    Holds the *encoded* blobs, so every spill/fault-back still round-
    trips the serialization — only the filesystem is elided. Like a
    durable disk, its contents survive a simulated power loss
    (:meth:`ContainerStore.crash` drops volatile state only).
    """

    def __init__(self) -> None:
        self._blobs: Dict[int, bytes] = {}

    def put(self, cid: int, blob: bytes) -> None:
        self._blobs[int(cid)] = blob

    def get(self, cid: int) -> bytes:
        return self._blobs[int(cid)]

    def delete(self, cid: int) -> None:
        self._blobs.pop(int(cid), None)

    def __contains__(self, cid: int) -> bool:
        return int(cid) in self._blobs

    def cids(self) -> Iterator[int]:
        return iter(sorted(self._blobs))

    def __len__(self) -> int:
        return len(self._blobs)


class DirectorySpill(ContainerSpill):
    """One ``<cid>.ctn`` file per container under a spill directory.

    Writes go to a temp name then rename into place, so a machine-level
    interruption leaves either the whole blob or nothing — the same
    all-or-nothing property the simulated commit marker gives sealed
    containers inside the model.
    """

    SUFFIX = ".ctn"

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _file(self, cid: int) -> Path:
        return self.path / f"{int(cid):012d}{self.SUFFIX}"

    def put(self, cid: int, blob: bytes) -> None:
        final = self._file(cid)
        tmp = final.with_suffix(".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, final)

    def get(self, cid: int) -> bytes:
        return self._file(cid).read_bytes()

    def delete(self, cid: int) -> None:
        try:
            self._file(cid).unlink()
        except FileNotFoundError:
            pass

    def __contains__(self, cid: int) -> bool:
        return self._file(cid).is_file()

    def cids(self) -> Iterator[int]:
        return iter(
            sorted(
                int(p.stem)
                for p in self.path.glob(f"*{self.SUFFIX}")
            )
        )


def make_spill(spill_dir: Optional[str]) -> ContainerSpill:
    """The backend a store config resolves to: a :class:`DirectorySpill`
    when a directory is named, the :class:`MemorySpill` shim otherwise."""
    if spill_dir is None:
        return MemorySpill()
    return DirectorySpill(spill_dir)
