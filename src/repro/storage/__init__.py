"""Storage substrate: the simulated disk, container log, and backup recipes.

This package models the on-disk side of a deduplication storage system the
way DDFS (Zhu et al., FAST'08) organizes it:

* :class:`~repro.storage.disk.DiskModel` — an analytic disk (seek time +
  sequential bandwidth) advancing a :class:`~repro._util.SimClock`. Every
  performance number in the reproduction is derived from this model.
* :class:`~repro.storage.container.Container` /
  :class:`~repro.storage.store.ContainerStore` — the append-only container
  log that receives new unique chunks in stream order ("stream-informed
  segment layout").
* :class:`~repro.storage.recipe.BackupRecipe` — the per-backup chunk map
  (fingerprint, size, container) used by the restore path and by the
  layout analyzer.
* :mod:`~repro.storage.layout` — placement-linearity measurements used to
  quantify the paper's "de-linearization of data placement".
"""

from repro.storage.disk import DiskModel, DiskProfile, DiskStats, HDD_2012, NEARLINE_HDD, SSD_SATA
from repro.storage.container import Container, SealedContainer
from repro.storage.store import ContainerStore, StoreConfig, StoreStats
from repro.storage.recipe import BackupRecipe, RecipeBuilder
from repro.storage.layout import LayoutReport, analyze_recipe, container_run_lengths
from repro.storage.gc import GarbageCollector, GCReport
from repro.storage.recovery import RecoveryReport, RecoveryScanner

__all__ = [
    "DiskModel",
    "DiskProfile",
    "DiskStats",
    "HDD_2012",
    "NEARLINE_HDD",
    "SSD_SATA",
    "Container",
    "SealedContainer",
    "ContainerStore",
    "StoreConfig",
    "StoreStats",
    "RecoveryReport",
    "RecoveryScanner",
    "BackupRecipe",
    "RecipeBuilder",
    "LayoutReport",
    "analyze_recipe",
    "container_run_lengths",
    "GarbageCollector",
    "GCReport",
]
