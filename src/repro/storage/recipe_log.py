"""Append-to-disk recipe log: constant-memory recipe retention.

A GB-scale workload produces one :class:`~repro.storage.recipe
.BackupRecipe` per generation, each holding three parallel arrays with
one entry per logical chunk — the dominant per-generation RAM cost once
containers spill. The log appends each finished recipe to a backing
file (or an in-memory buffer when no path is given) and loads them back
one at a time, so a driver can ingest N generations and later restore
them while never holding more than one recipe's arrays.

Like container spill, recipe-log IO is real machine IO: it is never
charged to the simulated disk, so logging recipes cannot perturb any
reported number.

Record layout (little-endian)::

    MAGIC(4s) | version(u16) | label_len(u16) | generation(i64)
    | n_chunks(u32) | label: label_len bytes (utf-8)
    | fingerprints: n_chunks * u64 | sizes: n_chunks * u32
    | containers: n_chunks * i64
"""

from __future__ import annotations

import io
import struct
from typing import IO, Iterator, List, Optional

import numpy as np

from repro.storage.recipe import BackupRecipe

__all__ = ["RecipeLog"]

_HEADER = struct.Struct("<4sHHqI")
_MAGIC = b"RRCP"
_VERSION = 1


class RecipeLog:
    """Append-only log of backup recipes with random access by index.

    Args:
        path: backing file (created/truncated). ``None`` keeps the log
            in an in-memory buffer — the tmpfs shim for tests; the full
            serialize/reload cycle still runs.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self._file: IO[bytes]
        if path is None:
            self._file = io.BytesIO()
        else:
            self._file = open(path, "w+b")
        self._offsets: List[int] = []
        self._end = 0

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def nbytes(self) -> int:
        """Bytes occupied by the serialized log."""
        return self._end

    def append(self, recipe: BackupRecipe) -> int:
        """Serialize one recipe at the tail; returns its index."""
        label = (recipe.label or "").encode("utf-8")
        if len(label) > 0xFFFF:
            raise ValueError(f"recipe label too long ({len(label)} B)")
        fps = np.ascontiguousarray(recipe.fingerprints, dtype=np.uint64)
        sizes = np.ascontiguousarray(recipe.sizes, dtype=np.uint32)
        cids = np.ascontiguousarray(recipe.containers, dtype=np.int64)
        header = _HEADER.pack(
            _MAGIC, _VERSION, len(label), recipe.generation, len(fps)
        )
        f = self._file
        f.seek(self._end)
        f.write(header)
        f.write(label)
        f.write(fps.tobytes())
        f.write(sizes.tobytes())
        f.write(cids.tobytes())
        self._offsets.append(self._end)
        self._end = f.tell()
        return len(self._offsets) - 1

    def load(self, index: int) -> BackupRecipe:
        """Materialize the recipe at ``index`` (fresh arrays each call)."""
        offset = self._offsets[index]
        f = self._file
        f.seek(offset)
        head = f.read(_HEADER.size)
        magic, version, label_len, generation, n = _HEADER.unpack(head)
        if magic != _MAGIC or version != _VERSION:
            raise ValueError(f"corrupt recipe log record at offset {offset}")
        label = f.read(label_len).decode("utf-8") if label_len else None
        body = f.read(n * 8 + n * 4 + n * 8)
        fps = np.frombuffer(body, dtype=np.uint64, count=n)
        sizes = np.frombuffer(body, dtype=np.uint32, count=n, offset=n * 8)
        cids = np.frombuffer(body, dtype=np.int64, count=n, offset=n * 12)
        return BackupRecipe(
            generation=int(generation),
            fingerprints=fps,
            sizes=sizes,
            containers=cids,
            label=label,
        )

    def __iter__(self) -> Iterator[BackupRecipe]:
        """Yield recipes oldest-first, one materialized at a time."""
        for i in range(len(self._offsets)):
            yield self.load(i)

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "RecipeLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
