"""The append-only container store (the on-disk chunk log).

New unique chunks are appended in stream order; when the open container
fills it is *sealed*: its payload and metadata section are written to the
log (sequential transfer, plus one positioning to return the head to the
log from any intervening random reads).

The store is shared by the dedup engine (writes + metadata prefetches) and
the restore reader (container reads), all priced on one
:class:`~repro.storage.disk.DiskModel`.
"""

from __future__ import annotations

import contextlib
import itertools
import os
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.storage.container import (
    CHUNK_METADATA_BYTES,
    DEFAULT_CONTAINER_BYTES,
    Container,
    SealedContainer,
)
from repro.storage.disk import DiskModel
from repro.storage.spill import ContainerSpill, decode_container, encode_container, make_spill

if TYPE_CHECKING:  # pragma: no cover - typing only (repro.faults imports
    # repro.storage.disk; keeping this lazy avoids the cycle at import time)
    from repro.faults import RetryPolicy

#: Bytes of the per-container commit marker (journaled mode only): a
#: cid + checksum record appended after the payload and metadata so a
#: torn seal is detectable by the recovery scanner.
COMMIT_MARKER_BYTES = 16

#: Bytes charged per journaled GC record entry (victim cid or move).
JOURNAL_ENTRY_BYTES = 16

#: Per-process sequence for unique store spill subdirectories — cid
#: spaces overlap across stores, so each instance must own its own dir.
_SPILL_SEQ = itertools.count()


@dataclass(frozen=True)
class StoreConfig:
    """All knobs of the container log and its readers, in one place.

    Consolidates the keyword sprawl (``container_bytes``, ``seal_seeks``,
    ``cache_containers``) that used to travel loose through
    :class:`ContainerStore`, :class:`~repro.restore.reader.RestoreReader`
    and :class:`~repro.experiments.config.ExperimentConfig`; the old
    kwargs remain as deprecated aliases for one release.

    Attributes:
        container_bytes: payload capacity per container.
        seal_seeks: positionings charged when sealing.
        cache_containers: the restore reader's LRU container cache.
        journal: enable the durability protocol — per-seal commit
            markers and the GC mark/commit journal are written (and
            charged). Off by default: the fault layer is zero-cost when
            disabled.
        retry: transient-IO retry policy for store/index disk
            operations (None = fail fast; only meaningful with a
            :class:`~repro.faults.FaultyDisk`).
        resident_containers: out-of-core budget — at most this many
            sealed containers stay materialized in RAM; the rest live
            in the spill backend and fault back on read. ``None``
            (default) keeps every sealed container resident, exactly
            the pre-spill behavior. Spill IO is real machine IO, never
            charged to the simulated disk, so results are byte-
            identical with spilling on or off.
        spill_dir: root directory for the spill files; ``None`` uses
            the in-memory shim (tests, chaos). Only meaningful together
            with ``resident_containers``. Each store instance owns a
            unique subdirectory under this root (``store-<pid>-<seq>``),
            so concurrent stores — parallel grid cells, per-tenant
            stores, per-engine memoized runs — can share one configured
            root without clobbering each other's container files (cid
            spaces overlap across stores). The live path is
            :attr:`ContainerStore.spill_path`.
    """

    container_bytes: int = DEFAULT_CONTAINER_BYTES
    seal_seeks: int = 1
    cache_containers: int = 32
    journal: bool = False
    retry: "Optional[RetryPolicy]" = None
    resident_containers: Optional[int] = None
    spill_dir: Optional[str] = None


@dataclass
class StoreStats:
    """Cumulative container-store accounting."""

    containers_sealed: int = 0
    containers_removed: int = 0
    chunks_written: int = 0
    payload_bytes: int = 0
    metadata_bytes: int = 0
    meta_prefetches: int = 0
    container_reads: int = 0
    batched_reads: int = 0

    @property
    def physical_bytes(self) -> int:
        """Total bytes occupying the log (payload + metadata)."""
        return self.payload_bytes + self.metadata_bytes


@dataclass
class SpillStats:
    """Out-of-core accounting (real machine IO, never simulated IO)."""

    spilled: int = 0
    evictions: int = 0
    faults: int = 0
    bytes_spilled: int = 0
    bytes_faulted: int = 0


#: Per-container directory entry kept resident for *every* sealed
#: container (spilled or not): (n_chunks, data_bytes, metadata_bytes).
#: ~3 ints per container, so membership/size queries never fault.
_MetaEntry = Tuple[int, int, int]


class ContainerStore:
    """Append-only log of containers over a simulated disk.

    Args:
        disk: the disk model charged for seals, prefetches and reads.
        config: a :class:`StoreConfig`; the default models the classic
            append-only log with no durability journal.
    """

    def __init__(
        self,
        disk: DiskModel,
        *,
        config: Optional[StoreConfig] = None,
    ) -> None:
        if config is None:
            config = StoreConfig()
        if config.spill_dir is not None and config.resident_containers is None:
            raise ValueError(
                "StoreConfig.spill_dir without resident_containers: "
                "set a resident budget to enable the out-of-core store"
            )
        if config.resident_containers is not None and config.resident_containers < 1:
            raise ValueError(
                f"resident_containers must be >= 1, got {config.resident_containers}"
            )
        self.disk = disk
        self.config = config
        self.container_bytes = int(config.container_bytes)
        self.seal_seeks = int(config.seal_seeks)
        self.journaled = bool(config.journal)
        self.stats = StoreStats()
        self.spill_stats = SpillStats()
        # out-of-core state: the resident LRU holds materialized
        # containers; _meta is the always-resident directory of every
        # sealed cid (so has/cids/remove never fault a container back).
        self._resident: "OrderedDict[int, SealedContainer]" = OrderedDict()
        self._meta: Dict[int, _MetaEntry] = {}
        self._spill: Optional[ContainerSpill] = None
        self._resident_budget = 0
        self._spill_path: Optional[str] = None
        if config.resident_containers is not None:
            if config.spill_dir is not None:
                # every store instance gets its own subdirectory: cid
                # spaces overlap across stores (each starts at cid 0),
                # so two stores sharing one root would silently
                # overwrite each other's {cid}.ctn files
                self._spill_path = os.path.join(
                    config.spill_dir,
                    f"store-{os.getpid()}-{next(_SPILL_SEQ):04d}",
                )
            self._spill = make_spill(self._spill_path)
            self._resident_budget = int(config.resident_containers)
        self._open: Optional[Container] = None
        self._next_cid = 0
        # durability protocol state (journaled mode)
        self._committed: Set[int] = set()
        self._journal: List[Dict] = []
        # retry-wrapped disk ops (bound once: the default path binds the
        # raw methods, so fault-free runs pay nothing extra)
        if config.retry is not None:
            from repro.faults import with_retry

            self._read = with_retry(disk, config.retry, disk.read, "store.read")
            self._write = with_retry(disk, config.retry, disk.write, "store.write")
        else:
            self._read = disk.read
            self._write = disk.write
        from repro.faults import injector_of

        self._inj = injector_of(disk)

    def _tagged(self, tag: str):
        """Injector context for classifying fault sites (no-op disk)."""
        if self._inj is None:
            return contextlib.nullcontext()
        return self._inj.tagged(tag)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    @property
    def open_container(self) -> Optional[Container]:
        """The in-progress container, if any."""
        return self._open

    @property
    def n_containers(self) -> int:
        """Number of sealed containers (resident or spilled)."""
        return len(self._meta)

    @property
    def n_resident(self) -> int:
        """Sealed containers currently materialized in RAM."""
        return len(self._resident)

    @property
    def spilling(self) -> bool:
        """True when a resident budget (and spill backend) is active."""
        return self._spill is not None

    @property
    def spill_path(self) -> Optional[str]:
        """This instance's unique spill directory (``None`` for the
        in-memory shim). Always a fresh ``store-<pid>-<seq>``
        subdirectory of ``config.spill_dir``."""
        return self._spill_path

    def current_cid(self, size: int) -> int:
        """The container id the *next* chunk of ``size`` bytes will land in
        (sealing the open container first if it would not fit)."""
        if self._open is not None and not self._open.fits(size):
            self._seal_open()
        if self._open is None:
            self._open = Container(self._next_cid, self.container_bytes)
            self._next_cid += 1
        return self._open.cid

    def append(self, fp: int, size: int) -> int:
        """Append one chunk to the log; returns the container id it landed
        in. Seals and charges the previous container when it fills.

        Semantically ``current_cid(size)`` + ``Container.add``; open-coded
        because this is the hottest call of the ingest write path."""
        if size <= 0:
            raise ValueError(f"chunk size must be > 0, got {size}")
        fp = int(fp)
        size = int(size)
        open_ = self._open
        # inlined Container.fits / Container.add_unchecked (slot access
        # instead of two method calls per chunk)
        if open_ is not None and open_._bytes != 0 and size > open_.capacity - open_._bytes:
            self._seal_open()
            open_ = None
        if open_ is None:
            open_ = self._open = Container(self._next_cid, self.container_bytes)
            self._next_cid += 1
        open_._fps.append(fp)
        open_._sizes.append(size)
        open_._bytes += size
        self.stats.chunks_written += 1
        return open_.cid

    def append_run(self, fps: list, sizes: list) -> list:
        """Append a run of chunks in stream order; returns one container
        id per chunk. Byte-identical to ``[self.append(f, s) for f, s in
        zip(fps, sizes)]`` — same greedy packing, same seal charges at the
        same sequence points — but packed one *container* at a time
        instead of one chunk at a time. ``fps``/``sizes`` must be plain
        Python ints (callers hold ``.tolist()`` output).
        """
        n = len(fps)
        if n == 0:
            return []
        if min(sizes) <= 0:
            raise ValueError(f"chunk size must be > 0, got {min(sizes)}")
        cs = np.cumsum(np.asarray(sizes, dtype=np.int64))
        cids: list = []
        pos = 0
        while pos < n:
            open_ = self._open
            if open_ is None:
                open_ = self._open = Container(self._next_cid, self.container_bytes)
                self._next_cid += 1
            prev = int(cs[pos - 1]) if pos else 0
            # chunks [pos, k) fit the remaining room of the open container
            k = int(np.searchsorted(cs, prev + open_.capacity - open_._bytes, "right"))
            if k <= pos:
                if open_._bytes != 0:
                    self._seal_open()
                    continue
                # an oversize chunk still lands in an empty container
                # (exactly as the scalar append admits it)
                k = pos + 1
            open_._fps += fps[pos:k]
            open_._sizes += sizes[pos:k]
            open_._bytes += int(cs[k - 1]) - prev
            cids += [open_.cid] * (k - pos)
            pos = k
        self.stats.chunks_written += n
        return cids

    def flush(self) -> Optional[int]:
        """Seal the open container (end of a backup stream). Returns the
        sealed cid, or None if nothing was open."""
        if self._open is None or self._open.n_chunks == 0:
            self._open = None
            return None
        cid = self._open.cid
        self._seal_open()
        return cid

    def _seal_open(self) -> None:
        assert self._open is not None
        sealed = self._open.seal()
        nbytes = sealed.data_bytes + sealed.metadata_bytes
        if self.journaled:
            # commit protocol: (1) payload + metadata, (2) commit marker.
            # A crash during (1) loses the container entirely (it never
            # reaches the sealed log); a crash during (2) leaves a *torn*
            # tail — durable payload with no marker — which the recovery
            # scanner detects and truncates.
            with self._tagged("seal"):
                self._write(nbytes, seeks=self.seal_seeks)
            self._admit_sealed(sealed)
            self.stats.containers_sealed += 1
            self.stats.payload_bytes += sealed.data_bytes
            self.stats.metadata_bytes += sealed.metadata_bytes
            self._open = None
            with self._tagged("seal_marker"):
                self._write(COMMIT_MARKER_BYTES, seeks=0)
            self._committed.add(sealed.cid)
            return
        self._admit_sealed(sealed)
        self.disk.write(nbytes, seeks=self.seal_seeks)
        self.stats.containers_sealed += 1
        self.stats.payload_bytes += sealed.data_bytes
        self.stats.metadata_bytes += sealed.metadata_bytes
        self._committed.add(sealed.cid)
        self._open = None

    # ------------------------------------------------------------------
    # out-of-core machinery (real machine IO; never touches the
    # simulated disk — the twin-run contract depends on it)
    # ------------------------------------------------------------------

    def _admit_sealed(self, sealed: SealedContainer) -> None:
        """Register a freshly sealed container: always enters the
        directory and the resident set; under a spill budget it is also
        written through to the spill backend (the durable copy evicts
        rely on) and the LRU is trimmed."""
        cid = sealed.cid
        self._resident[cid] = sealed
        self._meta[cid] = (sealed.n_chunks, sealed.data_bytes, sealed.metadata_bytes)
        if self._spill is not None:
            blob = encode_container(sealed)
            self._spill.put(cid, blob)
            self.spill_stats.spilled += 1
            self.spill_stats.bytes_spilled += len(blob)
            evicted = self._evict_over_budget()
            self._record_spill_obs("spilled", len(blob), evicted)

    def _evict_over_budget(self) -> int:
        """Trim the resident LRU to the budget; returns the number of
        evictions. Eviction is free: seals write through, so the spill
        copy already exists."""
        evicted = 0
        while len(self._resident) > self._resident_budget:
            self._resident.popitem(last=False)
            self.spill_stats.evictions += 1
            evicted += 1
        return evicted

    def _fault_in(self, cid: int) -> SealedContainer:
        """Materialize a spilled container back into the resident LRU."""
        assert self._spill is not None
        try:
            blob = self._spill.get(cid)
        except (KeyError, FileNotFoundError):
            raise KeyError(cid) from None
        sealed = decode_container(blob)
        self.spill_stats.faults += 1
        self.spill_stats.bytes_faulted += len(blob)
        self._resident[cid] = sealed
        evicted = self._evict_over_budget()
        self._record_spill_obs("faults", len(blob), evicted)
        return sealed

    def _record_spill_obs(self, what: str, nbytes: int, evicted: int) -> None:
        from repro.obs import get_active

        obs = get_active()
        if not obs.enabled:
            return
        reg = obs.registry
        reg.counter(f"store.spill.{what}").inc()
        suffix = "bytes_spilled" if what == "spilled" else "bytes_faulted"
        reg.counter(f"store.spill.{suffix}").inc(nbytes)
        if evicted:
            reg.counter("store.spill.evictions").inc(evicted)
        reg.gauge("store.spill.resident").set(len(self._resident))

    def _drop_everywhere(self, cid: int) -> None:
        """Forget a sealed container in the resident set and the spill
        backend (remove / torn-tail truncation)."""
        self._resident.pop(cid, None)
        if self._spill is not None:
            self._spill.delete(cid)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, cid: int) -> SealedContainer:
        """Look up a sealed container by id (no simulated-disk charge;
        bookkeeping only). Under a resident budget a spilled container
        faults back in (real machine IO, still no simulated charge).
        Raises KeyError for unknown or still-open containers."""
        sealed = self._resident.get(cid)
        if sealed is not None:
            if self._spill is not None:
                self._resident.move_to_end(cid)
            return sealed
        if self._spill is not None and cid in self._meta:
            return self._fault_in(cid)
        raise KeyError(cid)

    def has(self, cid: int) -> bool:
        """True if ``cid`` refers to a sealed container."""
        return cid in self._meta

    def prefetch_meta(self, cid: int) -> np.ndarray:
        """Read a container's metadata section (its fingerprints) from
        disk — the DDFS locality prefetch. Charges one seek plus the
        metadata transfer; returns the fingerprint array."""
        sealed = self.get(cid)
        self._read(sealed.metadata_bytes, seeks=1)
        self.stats.meta_prefetches += 1
        return sealed.fingerprints

    def read_container(self, cid: int) -> SealedContainer:
        """Read a whole container (restore path): one seek + full payload
        and metadata transfer."""
        sealed = self.get(cid)
        self._read(sealed.data_bytes + sealed.metadata_bytes, seeks=1)
        self.stats.container_reads += 1
        return sealed

    def read_container_run(self, cids: Sequence[int]) -> List[SealedContainer]:
        """Read a physically sequential run of containers in **one**
        positioning (the restore read-ahead path).

        The containers of consecutive cids are adjacent in the
        append-only log, so after seeking to the first one the rest
        stream at sequential bandwidth: the whole run is priced as one
        seek plus the summed payload+metadata transfer — exactly Eq. 1
        with the run counted as a single fragment.

        Args:
            cids: strictly consecutive sealed container ids
                (``cid, cid+1, ...``); a gap means the run is not
                physically contiguous and is rejected.
        """
        if not cids:
            raise ValueError("read_container_run needs at least one cid")
        for prev, nxt in zip(cids, cids[1:]):
            if nxt != prev + 1:
                raise ValueError(
                    f"container run must be consecutive cids, got {list(cids)}"
                )
        sealed = [self.get(cid) for cid in cids]
        nbytes = sum(s.data_bytes + s.metadata_bytes for s in sealed)
        self._read(nbytes, seeks=1)
        self.stats.container_reads += len(sealed)
        if len(sealed) > 1:
            self.stats.batched_reads += 1
        return sealed

    def remove(self, cid: int) -> int:
        """Drop a sealed container from the log (garbage collection).
        Returns the payload bytes freed. Bookkeeping only — the space is
        reclaimed in place; no disk charge beyond the reads/writes the
        collector already performed."""
        _, data_bytes, metadata_bytes = self._meta.pop(cid)
        self._drop_everywhere(cid)
        self.stats.payload_bytes -= data_bytes
        self.stats.metadata_bytes -= metadata_bytes
        self.stats.containers_removed += 1
        return data_bytes

    # ------------------------------------------------------------------
    # durability protocol (journaled mode) + crash/recovery support
    # ------------------------------------------------------------------

    def journal_append(self, record: Dict) -> None:
        """Durably append one metadata-journal record (GC mark/commit).

        The record only becomes durable once the charged write returns;
        an injected crash mid-write leaves the journal without it —
        exactly the window the recovery scanner's rollback covers.
        """
        if self.journaled:
            entries = len(record.get("victims", ())) + len(record.get("moved", ()))
            with self._tagged("journal"):
                self._write(max(1, entries) * JOURNAL_ENTRY_BYTES, seeks=1)
        self._journal.append(dict(record))

    def journal_records(self) -> List[Dict]:
        """The metadata journal, oldest first (a copy)."""
        return [dict(r) for r in self._journal]

    def journal_pop(self, record: Dict) -> None:
        """Drop one journal record (recovery rollback of a dangling
        mark). Bookkeeping only."""
        self._journal.remove(record)

    def is_committed(self, cid: int) -> bool:
        """True if ``cid``'s seal reached its commit marker."""
        return cid in self._committed

    def uncommitted_cids(self) -> List[int]:
        """Sealed containers whose commit marker never became durable —
        the torn tail a crash mid-seal leaves behind."""
        return sorted(cid for cid in self._meta if cid not in self._committed)

    def crash(self) -> None:
        """Simulate power loss: the open (unsealed) container is gone;
        the sealed log, commit markers, and journal survive. Torn
        containers stay visible until :meth:`truncate_torn` (the
        recovery scanner's first act) removes them."""
        self._open = None

    def truncate_torn(self) -> List[int]:
        """Remove every sealed-but-uncommitted container (recovery's
        torn-tail truncation). Returns the truncated cids. Bookkeeping
        only — the scanner charges the log scan that found them."""
        torn = self.uncommitted_cids()
        for cid in torn:
            _, data_bytes, metadata_bytes = self._meta.pop(cid)
            self._drop_everywhere(cid)
            self.stats.payload_bytes -= data_bytes
            self.stats.metadata_bytes -= metadata_bytes
        return torn

    def cids(self) -> List[int]:
        """Sorted ids of all sealed containers (resident or spilled)."""
        return sorted(self._meta)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def container_of_chunk_count(self) -> Dict[int, int]:
        """Map cid -> number of chunks, for layout analysis (served from
        the resident directory; never faults)."""
        return {cid: m[0] for cid, m in self._meta.items()}

    def logical_metadata_bytes(self, n_chunks: int) -> int:
        """Metadata footprint of ``n_chunks`` chunks (helper for cost
        estimation)."""
        return n_chunks * CHUNK_METADATA_BYTES
