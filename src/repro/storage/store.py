"""The append-only container store (the on-disk chunk log).

New unique chunks are appended in stream order; when the open container
fills it is *sealed*: its payload and metadata section are written to the
log (sequential transfer, plus one positioning to return the head to the
log from any intervening random reads).

The store is shared by the dedup engine (writes + metadata prefetches) and
the restore reader (container reads), all priced on one
:class:`~repro.storage.disk.DiskModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.storage.container import (
    CHUNK_METADATA_BYTES,
    DEFAULT_CONTAINER_BYTES,
    Container,
    SealedContainer,
)
from repro.storage.disk import DiskModel


@dataclass
class StoreStats:
    """Cumulative container-store accounting."""

    containers_sealed: int = 0
    containers_removed: int = 0
    chunks_written: int = 0
    payload_bytes: int = 0
    metadata_bytes: int = 0
    meta_prefetches: int = 0
    container_reads: int = 0

    @property
    def physical_bytes(self) -> int:
        """Total bytes occupying the log (payload + metadata)."""
        return self.payload_bytes + self.metadata_bytes


class ContainerStore:
    """Append-only log of containers over a simulated disk.

    Args:
        disk: the disk model charged for seals, prefetches and reads.
        container_bytes: payload capacity per container.
        seal_seeks: positionings charged when sealing (returning the head
            to the log after random index/metadata reads). Default 1.
    """

    def __init__(
        self,
        disk: DiskModel,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        seal_seeks: int = 1,
    ) -> None:
        self.disk = disk
        self.container_bytes = int(container_bytes)
        self.seal_seeks = int(seal_seeks)
        self.stats = StoreStats()
        self._sealed: Dict[int, SealedContainer] = {}
        self._open: Optional[Container] = None
        self._next_cid = 0

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    @property
    def open_container(self) -> Optional[Container]:
        """The in-progress container, if any."""
        return self._open

    @property
    def n_containers(self) -> int:
        """Number of sealed containers."""
        return len(self._sealed)

    def current_cid(self, size: int) -> int:
        """The container id the *next* chunk of ``size`` bytes will land in
        (sealing the open container first if it would not fit)."""
        if self._open is not None and not self._open.fits(size):
            self._seal_open()
        if self._open is None:
            self._open = Container(self._next_cid, self.container_bytes)
            self._next_cid += 1
        return self._open.cid

    def append(self, fp: int, size: int) -> int:
        """Append one chunk to the log; returns the container id it landed
        in. Seals and charges the previous container when it fills.

        Semantically ``current_cid(size)`` + ``Container.add``; open-coded
        because this is the hottest call of the ingest write path."""
        if size <= 0:
            raise ValueError(f"chunk size must be > 0, got {size}")
        fp = int(fp)
        size = int(size)
        open_ = self._open
        # inlined Container.fits / Container.add_unchecked (slot access
        # instead of two method calls per chunk)
        if open_ is not None and open_._bytes != 0 and size > open_.capacity - open_._bytes:
            self._seal_open()
            open_ = None
        if open_ is None:
            open_ = self._open = Container(self._next_cid, self.container_bytes)
            self._next_cid += 1
        open_._fps.append(fp)
        open_._sizes.append(size)
        open_._bytes += size
        self.stats.chunks_written += 1
        return open_.cid

    def append_run(self, fps: list, sizes: list) -> list:
        """Append a run of chunks in stream order; returns one container
        id per chunk. Byte-identical to ``[self.append(f, s) for f, s in
        zip(fps, sizes)]`` — same greedy packing, same seal charges at the
        same sequence points — but packed one *container* at a time
        instead of one chunk at a time. ``fps``/``sizes`` must be plain
        Python ints (callers hold ``.tolist()`` output).
        """
        n = len(fps)
        if n == 0:
            return []
        if min(sizes) <= 0:
            raise ValueError(f"chunk size must be > 0, got {min(sizes)}")
        cs = np.cumsum(np.asarray(sizes, dtype=np.int64))
        cids: list = []
        pos = 0
        while pos < n:
            open_ = self._open
            if open_ is None:
                open_ = self._open = Container(self._next_cid, self.container_bytes)
                self._next_cid += 1
            prev = int(cs[pos - 1]) if pos else 0
            # chunks [pos, k) fit the remaining room of the open container
            k = int(np.searchsorted(cs, prev + open_.capacity - open_._bytes, "right"))
            if k <= pos:
                if open_._bytes != 0:
                    self._seal_open()
                    continue
                # an oversize chunk still lands in an empty container
                # (exactly as the scalar append admits it)
                k = pos + 1
            open_._fps += fps[pos:k]
            open_._sizes += sizes[pos:k]
            open_._bytes += int(cs[k - 1]) - prev
            cids += [open_.cid] * (k - pos)
            pos = k
        self.stats.chunks_written += n
        return cids

    def flush(self) -> Optional[int]:
        """Seal the open container (end of a backup stream). Returns the
        sealed cid, or None if nothing was open."""
        if self._open is None or self._open.n_chunks == 0:
            self._open = None
            return None
        cid = self._open.cid
        self._seal_open()
        return cid

    def _seal_open(self) -> None:
        assert self._open is not None
        sealed = self._open.seal()
        self._sealed[sealed.cid] = sealed
        nbytes = sealed.data_bytes + sealed.metadata_bytes
        self.disk.write(nbytes, seeks=self.seal_seeks)
        self.stats.containers_sealed += 1
        self.stats.payload_bytes += sealed.data_bytes
        self.stats.metadata_bytes += sealed.metadata_bytes
        self._open = None

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, cid: int) -> SealedContainer:
        """Look up a sealed container by id (no disk charge; bookkeeping
        only). Raises KeyError for unknown or still-open containers."""
        return self._sealed[cid]

    def has(self, cid: int) -> bool:
        """True if ``cid`` refers to a sealed container."""
        return cid in self._sealed

    def prefetch_meta(self, cid: int) -> np.ndarray:
        """Read a container's metadata section (its fingerprints) from
        disk — the DDFS locality prefetch. Charges one seek plus the
        metadata transfer; returns the fingerprint array."""
        sealed = self._sealed[cid]
        self.disk.read(sealed.metadata_bytes, seeks=1)
        self.stats.meta_prefetches += 1
        return sealed.fingerprints

    def read_container(self, cid: int) -> SealedContainer:
        """Read a whole container (restore path): one seek + full payload
        and metadata transfer."""
        sealed = self._sealed[cid]
        self.disk.read(sealed.data_bytes + sealed.metadata_bytes, seeks=1)
        self.stats.container_reads += 1
        return sealed

    def remove(self, cid: int) -> int:
        """Drop a sealed container from the log (garbage collection).
        Returns the payload bytes freed. Bookkeeping only — the space is
        reclaimed in place; no disk charge beyond the reads/writes the
        collector already performed."""
        sealed = self._sealed.pop(cid)
        freed = sealed.data_bytes
        self.stats.payload_bytes -= freed
        self.stats.metadata_bytes -= sealed.metadata_bytes
        self.stats.containers_removed += 1
        return freed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def container_of_chunk_count(self) -> Dict[int, int]:
        """Map cid -> number of chunks, for layout analysis."""
        return {cid: c.n_chunks for cid, c in self._sealed.items()}

    def logical_metadata_bytes(self, n_chunks: int) -> int:
        """Metadata footprint of ``n_chunks`` chunks (helper for cost
        estimation)."""
        return n_chunks * CHUNK_METADATA_BYTES
