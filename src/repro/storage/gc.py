"""Garbage collection: reclaiming the space selective rewriting leaks.

DeFrag (and iDedup) intentionally store duplicates again; the index then
points at the fresh copy and the old one becomes *garbage* — unless an
older retained backup's recipe still references it. This module closes
that loop the way container-log systems do:

1. **Liveness**: a stored chunk copy is live iff some retained recipe
   references its container (per-container live-byte accounting).
2. **Victim selection**: sealed containers whose live fraction falls
   below a utilization threshold.
3. **Compaction**: read each victim (charged), append its live chunks to
   the open end of the log (charged via the normal seal path), drop the
   victim, and re-point both the chunk index and the retained recipes at
   the moved copies.

The report quantifies the trade the paper leaves implicit: how much of
DeFrag's compression sacrifice is *transient* (reclaimable once old
generations expire) versus permanent.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple


from typing import TYPE_CHECKING

from repro._util import check_fraction
from repro.storage.recipe import BackupRecipe
from repro.storage.store import ContainerStore

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids a cycle:
    # repro.storage -> gc -> repro.index -> repro.storage)
    from repro.index.full_index import DiskChunkIndex

#: shared no-op context for fault-free runs (no per-pass allocation)
_NULL_CTX = contextlib.nullcontext()


@dataclass(frozen=True)
class GCReport:
    """Outcome of one collection pass.

    Attributes:
        containers_examined: sealed containers considered.
        containers_collected: victims compacted and freed.
        bytes_reclaimed: payload bytes freed (dead copies).
        bytes_moved: live payload bytes rewritten during compaction.
        remapped_recipes: retained recipes rewritten to the new layout.
        utilization_before / utilization_after: live fraction of the log.
        redirected_chunks: recipe references repointed to a redirect
            target instead of being copied (reverse-reference passes).
    """

    containers_examined: int
    containers_collected: int
    bytes_reclaimed: int
    bytes_moved: int
    remapped_recipes: int
    utilization_before: float
    utilization_after: float
    redirected_chunks: int = 0


class GarbageCollector:
    """Mark-and-compact collector over a :class:`ContainerStore`.

    Args:
        store: the container log (costs charged to its disk).
        index: the chunk index to re-point at moved copies (optional —
            pass the engine's index so future dedup finds the new
            locations).
    """

    def __init__(self, store: ContainerStore, index: "Optional[DiskChunkIndex]" = None) -> None:
        self.store = store
        self.index = index

    def _injector(self):
        """The disk's fault injector, if one is attached."""
        from repro.faults import injector_of

        return injector_of(self.store.disk)

    # ------------------------------------------------------------------

    def live_bytes_per_container(
        self, retained: Sequence[BackupRecipe]
    ) -> Dict[int, int]:
        """Mark phase: payload bytes of each container referenced by any
        retained recipe (each distinct fingerprint counted once)."""
        live: Dict[int, Set[int]] = {}
        sizes: Dict[int, int] = {}
        for recipe in retained:
            for fp, size, cid in zip(
                recipe.fingerprints, recipe.sizes, recipe.containers
            ):
                fp, cid = int(fp), int(cid)
                if self.store.has(cid):
                    live.setdefault(cid, set()).add(fp)
                    sizes[fp] = int(size)
        return {
            cid: sum(sizes[fp] for fp in fps) for cid, fps in live.items()
        }

    def log_utilization(self, retained: Sequence[BackupRecipe]) -> float:
        """Live fraction of the sealed log."""
        live = self.live_bytes_per_container(retained)
        total = sum(
            self.store.get(cid).data_bytes
            for cid in list(self._sealed_cids())
        )
        return sum(live.values()) / total if total else 1.0

    def _sealed_cids(self) -> List[int]:
        return self.store.cids()

    # ------------------------------------------------------------------

    def collect(
        self,
        retained: Sequence[BackupRecipe],
        min_utilization: float = 0.5,
        redirect: Optional[Dict[int, int]] = None,
        rewrite_redirected: bool = False,
    ) -> Tuple[GCReport, List[BackupRecipe]]:
        """Run one mark-and-compact pass.

        Args:
            retained: the recipes that must stay restorable (the
                retention window); everything else is expendable.
            min_utilization: containers with a live fraction strictly
                below this are compacted.
            redirect: optional ``fingerprint -> container`` map naming a
                *preferred* copy of each chunk (maintenance engines:
                RevDedup's freshly written generation, the hybrid's
                canonical old copies). Every retained reference to the
                same fingerprint in a *different* container is repointed
                at the target before liveness is measured, so superseded
                copies read as dead and their containers become
                compactable without being copied. The repoints ride the
                same journaled move map as compaction moves — recovery
                rolls them forward with zero new record kinds.
            rewrite_redirected: force every container that held a
                superseded (redirected-away) copy into the victim set
                regardless of utilization — RevDedup's reverse-reference
                rewrite of old containers. The forced rewrites *purge*
                the stale copies immediately, at the cost of re-copying
                each forced container's remaining live chunks.

        Returns:
            ``(report, remapped_recipes)`` — the retained recipes
            rewritten to reference the post-compaction layout, in the
            same order.
        """
        check_fraction("min_utilization", min_utilization)
        util_before = self.log_utilization(retained)

        pre_moved: Dict[Tuple[int, int], int] = {}
        if redirect:
            for recipe in retained:
                for fp, cid in zip(recipe.fingerprints, recipe.containers):
                    fp, cid = int(fp), int(cid)
                    target = redirect.get(fp)
                    if target is not None and target != cid and self.store.has(target):
                        pre_moved[(fp, cid)] = target
            if pre_moved:
                retained = [self._remap(r, pre_moved) for r in retained]

        live_by_cid = self.live_bytes_per_container(retained)
        sealed = self._sealed_cids()

        # which fingerprints are live (referenced by any retained recipe)
        live_fps: Set[int] = set()
        for recipe in retained:
            live_fps.update(int(fp) for fp in recipe.fingerprints)

        forced: Set[int] = (
            {cid for (_fp, cid) in pre_moved} if rewrite_redirected else set()
        )
        victims: List[int] = []
        for cid in sealed:
            data = self.store.get(cid).data_bytes
            if data == 0:
                continue
            if cid in forced or live_by_cid.get(cid, 0) / data < min_utilization:
                victims.append(cid)
        victim_set = set(victims)

        # The pass is two-phase so a crash can roll either direction
        # (journaled stores only; the journal is free-of-charge off):
        #   mark   — persist the victim set (intent) before touching data.
        #   sweep  — copy live chunks to the open log end and seal them;
        #            victims are NOT removed yet, so a crash anywhere in
        #            the sweep rolls back (copies become dead garbage, the
        #            dangling mark record is dropped by recovery).
        #   commit — persist the move map; only then are victims removed
        #            and recipes remapped, atomically with the commit
        #            (recovery rolls an applied-but-interrupted commit
        #            forward from the journal record).
        inj = self._injector()
        gc_ctx = inj.tagged("gc") if inj is not None else _NULL_CTX
        with gc_ctx:
            if self.store.journaled:
                self.store.journal_append({"kind": "gc_mark", "victims": list(victims)})

            moved: Dict[Tuple[int, int], int] = dict(pre_moved)
            moved_fp: Dict[int, int] = {}  # fp -> new_cid (move each copy once)
            bytes_reclaimed = 0
            bytes_moved = 0
            for cid in victims:
                sealed_container = self.store.read_container(cid)  # charged read
                for fp, size in zip(
                    sealed_container.fingerprints, sealed_container.sizes
                ):
                    fp, size = int(fp), int(size)
                    if fp in live_fps:
                        if redirect is not None:
                            target = redirect.get(fp)
                            if (
                                target is not None
                                and target != cid
                                and target not in victim_set
                                and self.store.has(target)
                            ):
                                # a superseded copy: its redirect target
                                # already holds the chunk — reclaim it
                                bytes_reclaimed += size
                                moved[(fp, cid)] = target
                                continue
                        new_cid = moved_fp.get(fp)
                        if new_cid is None:
                            new_cid = self.store.append(fp, size)  # charged on seal
                            moved_fp[fp] = new_cid
                            bytes_moved += size
                            if self.index is not None:
                                from repro.index.full_index import ChunkLocation

                                old = self.index.peek(fp)
                                sid = old.sid if old is not None else -1
                                self.index.update(fp, ChunkLocation(new_cid, sid))
                        else:
                            # a second dead-duplicate copy of a live chunk:
                            # the already-moved copy serves it
                            bytes_reclaimed += size
                        moved[(fp, cid)] = new_cid
                    else:
                        bytes_reclaimed += size
            self.store.flush()

            # a redirect target may itself have been a victim (a canonical
            # copy stranded in a mostly-dead container): collapse
            # redirect -> compaction chains so every journaled mapping —
            # and every final recipe reference — lands on a survivor
            changed = bool(pre_moved)
            while changed:
                changed = False
                for (fp, cid), new_cid in list(moved.items()):
                    final = moved.get((fp, new_cid))
                    if final is not None and final != new_cid:
                        moved[(fp, cid)] = final
                        changed = True

            if self.store.journaled:
                self.store.journal_append(
                    {
                        "kind": "gc_commit",
                        "victims": list(victims),
                        "moved": dict(moved),
                    }
                )
            for cid in victims:
                self.store.remove(cid)

        remapped = [self._remap(recipe, moved) for recipe in retained]
        util_after = self.log_utilization(remapped)
        report = GCReport(
            containers_examined=len(sealed),
            containers_collected=len(victims),
            bytes_reclaimed=bytes_reclaimed,
            bytes_moved=bytes_moved,
            remapped_recipes=len(remapped),
            utilization_before=util_before,
            utilization_after=util_after,
            redirected_chunks=len(pre_moved),
        )
        self._record(report)
        return report, remapped

    def _record(self, report: GCReport) -> None:
        """Feed the ambient observability session (no-op when disabled)."""
        from repro.obs import FRACTION_EDGES, get_active

        obs = get_active()
        if not obs.enabled:
            return
        reg = obs.registry
        reg.counter("gc.passes").inc()
        reg.counter("gc.containers_collected").inc(report.containers_collected)
        reg.counter("gc.bytes_reclaimed").inc(report.bytes_reclaimed)
        reg.counter("gc.bytes_moved").inc(report.bytes_moved)
        if report.redirected_chunks:
            reg.counter("gc.redirected_chunks").inc(report.redirected_chunks)
        reg.histogram("gc.utilization_before", FRACTION_EDGES).observe(
            report.utilization_before
        )
        if obs.events.enabled:
            obs.events.emit(
                "gc_pass",
                containers_examined=report.containers_examined,
                containers_collected=report.containers_collected,
                bytes_reclaimed=report.bytes_reclaimed,
                bytes_moved=report.bytes_moved,
                utilization_before=report.utilization_before,
                utilization_after=report.utilization_after,
            )

    def _remap(
        self, recipe: BackupRecipe, moved: Dict[Tuple[int, int], int]
    ) -> BackupRecipe:
        if not moved:
            return recipe
        cids = recipe.containers.copy()
        for i, (fp, cid) in enumerate(zip(recipe.fingerprints, recipe.containers)):
            new_cid = moved.get((int(fp), int(cid)))
            if new_cid is not None:
                cids[i] = new_cid
        return BackupRecipe(
            generation=recipe.generation,
            fingerprints=recipe.fingerprints,
            sizes=recipe.sizes,
            containers=cids,
            label=recipe.label,
        )
