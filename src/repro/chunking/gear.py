"""Gear-hash content-defined chunking, numpy-vectorized.

The Gear rolling hash is ``h_i = (h_{i-1} << 1) + G[b_i]  (mod 2^64)``
with a random 256-entry gear table ``G``; a boundary is declared where
``h_i & mask == 0`` (mask with ``log2(avg_size)`` bits), subject to
min/max chunk-size clamps.

Because the left-shift discards bits past 64, the hash at position ``i``
depends only on the trailing 64 bytes:

    h_i = sum_{k=0..63} G[b_{i-k}] << k   (mod 2^64)

which we evaluate with 64 vectorized passes over the whole buffer — exact,
and orders of magnitude faster than a per-byte Python loop. Candidate
boundaries (where the masked hash is zero) are sparse (one per ``avg``
bytes on average), so the min/max clamping walk over candidates is cheap.
"""

from __future__ import annotations

import numpy as np

from repro._util import KIB, check_positive, rng_from
from repro.chunking.base import Chunker

_U64 = np.uint64


def _gear_table(seed: int) -> np.ndarray:
    """The 256-entry random gear table, derived deterministically."""
    rng = rng_from(seed, "gear-table")
    return rng.integers(0, 2**64, size=256, dtype=np.uint64)


def _mask_for_average(avg_size: int) -> int:
    """Boundary mask with ``round(log2(avg))`` low bits set, so boundaries
    fire with probability 1/avg per position."""
    bits = max(1, int(round(np.log2(avg_size))))
    return (1 << bits) - 1


class GearChunker(Chunker):
    """Content-defined chunker using the Gear rolling hash.

    Args:
        avg_size: target average chunk size (sets the boundary mask).
        min_size: no boundary closer than this to the previous cut.
        max_size: force a cut at this length if no boundary fired.
        seed: gear-table seed (two chunkers with the same seed cut
            identically — required for dedup to work at all).
    """

    def __init__(
        self,
        avg_size: int = 8 * KIB,
        min_size: "int | None" = None,
        max_size: "int | None" = None,
        seed: int = 2012,
    ) -> None:
        check_positive("avg_size", avg_size)
        self.avg_size = int(avg_size)
        self.min_size = int(min_size) if min_size is not None else self.avg_size // 4
        self.max_size = int(max_size) if max_size is not None else self.avg_size * 4
        if not 0 < self.min_size <= self.avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        self.seed = int(seed)
        self._table = _gear_table(seed)
        self._mask = _U64(_mask_for_average(self.avg_size))

    # ------------------------------------------------------------------

    def rolling_hashes(self, data: bytes) -> np.ndarray:
        """Exact Gear hash at every byte position (vectorized)."""
        buf = np.frombuffer(data, dtype=np.uint8)
        g = self._table[buf]  # per-byte gear values
        h = np.zeros(buf.size, dtype=np.uint64)
        with np.errstate(over="ignore"):
            for k in range(64):
                if k >= buf.size:
                    break
                # contribution of the byte k positions back, shifted by k
                if k == 0:
                    h += g
                else:
                    h[k:] += g[:-k] << _U64(k)
        return h

    def cut_boundaries(self, data: bytes) -> np.ndarray:
        n = len(data)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        hashes = self.rolling_hashes(data)
        # candidate cut *after* position i  ->  boundary offset i+1
        candidates = np.flatnonzero((hashes & self._mask) == 0) + 1
        cuts = [0]
        last = 0
        ci = 0
        m = candidates.size
        while last < n:
            limit = last + self.max_size
            lower = last + self.min_size
            # advance to first candidate >= lower
            ci = int(np.searchsorted(candidates, lower, side="left"))
            if ci < m and candidates[ci] < limit:
                cut = int(candidates[ci])
            else:
                cut = min(limit, n)
            if cut >= n:
                cut = n
            cuts.append(cut)
            last = cut
        return np.asarray(cuts, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GearChunker(avg={self.avg_size}, min={self.min_size}, "
            f"max={self.max_size}, seed={self.seed})"
        )
