"""Gear-hash content-defined chunking, numpy-vectorized.

The Gear rolling hash is ``h_i = (h_{i-1} << 1) + G[b_i]  (mod 2^64)``
with a random 256-entry gear table ``G``; a boundary is declared where
``h_i & mask == 0`` (mask with ``log2(avg_size)`` bits), subject to
min/max chunk-size clamps.

Because the left-shift discards bits past 64, the hash at position ``i``
depends only on the trailing 64 bytes:

    h_i = sum_{k=0..63} G[b_{i-k}] << k   (mod 2^64)

Two evaluation strategies share that identity:

* **Exact reference** (``exact=True``): evaluate the lag sum literally,
  one vectorized pass per lag (64 passes), at *every* byte position,
  then clamp candidates. This is the original path — transparent,
  definitionally obvious, and the baseline the chunking bench gates
  against. It now runs block-wise (carrying ``WARMUP`` context bytes
  between blocks) so temporaries stay bounded on GB-scale buffers.
* **Skip-then-scan** (default): the SeqCDC idiom. After each cut, the
  next ``min_size - 1`` positions can never host a boundary, so they are
  skipped entirely; Gear hashes are evaluated only inside the scan
  window ``[cut + min_size, cut + max_size)``, in sub-blocks with early
  exit at the first masked hit. Each scan window is seeded with a
  63-byte warm-up prefix, which by the trailing-64-bytes identity makes
  the windowed hashes **bit-identical** to the exact sweep — so the two
  paths produce identical cut sequences (property-tested), while the
  fast path hashes roughly ``(avg - min)/avg`` of the input. Sub-block
  evaluation uses shift-add doubling (6 passes instead of 64): lag sums
  of length ``2^(k+1)`` are two shifted lag sums of length ``2^k``, and
  both composition orders are exact mod 2^64.

Candidate clamping (min/max enforcement) is shared with the Rabin
chunker via :func:`repro.chunking.select.select_cuts`, which replaces
the former per-cut ``searchsorted`` walk with one vectorized
successor-pointer pass.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

import numpy as np

from repro._util import KIB, MIB, check_positive, rng_from
from repro.chunking.base import Chunker
from repro.chunking.select import select_cuts

_U64 = np.uint64

#: the Gear hash at position i depends on bytes (i-63 .. i]; scan blocks
#: carry this many context bytes so windowed hashes equal the full sweep
WARMUP = 63

#: shift-add doubling schedule: 6 passes compose all 64 lag contributions
_DOUBLING_SHIFTS = (1, 2, 4, 8, 16, 32)

#: simulated CPU bandwidth for the informational chunking span, matching
#: ``repro.dedup.base.SegmentCost.cpu_seconds_per_byte`` (1/600e6) so the
#: bench phase breakdown prices chunking like the engines price their
#: analytic CPU term
_SIM_CPU_BYTES_PER_SECOND = 600e6


class ChunkScanStats(NamedTuple):
    """Byte accounting of one ``cut_boundaries`` call.

    ``scan_bytes + skipped_bytes == bytes_in`` exactly; ``warmup_bytes``
    counts context bytes re-hashed to seed scan windows (zero on the
    exact path, which hashes every position anyway).
    """

    bytes_in: int
    chunks_out: int
    #: positions whose Gear hash was evaluated for boundary testing
    scan_bytes: int
    #: positions never hashed (min-size skips + early-exit window tails)
    skipped_bytes: int
    #: warm-up context bytes re-hashed to seed scan sub-blocks
    warmup_bytes: int
    #: masked-hash hits observed inside scanned regions
    candidates: int


def _gear_table(seed: int) -> np.ndarray:
    """The 256-entry random gear table, derived deterministically."""
    rng = rng_from(seed, "gear-table")
    return rng.integers(0, 2**64, size=256, dtype=np.uint64)


def _mask_for_average(avg_size: int) -> int:
    """Boundary mask with ``round(log2(avg))`` low bits set, so boundaries
    fire with probability 1/avg per position."""
    bits = max(1, int(round(np.log2(avg_size))))
    return (1 << bits) - 1


def _hashes_64pass(g: np.ndarray) -> np.ndarray:
    """Reference evaluation: the lag sum, one vectorized pass per lag.

    Prefix semantics at the array head (position ``i < 63`` sums lags
    ``0..i``), matching the rolling definition from a zero state.
    """
    h = np.zeros(g.size, dtype=np.uint64)
    with np.errstate(over="ignore"):
        for k in range(64):
            if k >= g.size:
                break
            if k == 0:
                h += g
            else:
                h[k:] += g[:-k] << _U64(k)
    return h


def _hashes_doubling(h: np.ndarray) -> np.ndarray:
    """Exact Gear hashes via shift-add doubling, in place on ``h``.

    ``h`` enters holding the per-byte gear values ``G[b_i]`` (a fresh
    array the caller owns). After pass ``k`` position ``i`` holds the
    lag sum over ``min(i + 1, 2^(k+1))`` trailing bytes, so six passes
    reproduce the 64-lag sum bit-for-bit (shifts compose: ``j + s <= 63``
    for every contribution, and addition wraps identically mod 2^64).
    """
    with np.errstate(over="ignore"):
        for s in _DOUBLING_SHIFTS:
            if s >= h.size:
                break
            h[s:] += h[:-s] << _U64(s)
    return h


class GearChunker(Chunker):
    """Content-defined chunker using the Gear rolling hash.

    Args:
        avg_size: target average chunk size (sets the boundary mask).
        min_size: no boundary closer than this to the previous cut.
        max_size: force a cut at this length if no boundary fired.
        seed: gear-table seed (two chunkers with the same seed cut
            identically — required for dedup to work at all).
        exact: use the reference exact sweep (hash every position, 64
            passes) instead of the default skip-then-scan fast path.
            Both produce bit-identical cut sequences.
        scan_block: sub-block size in bytes for skip-then-scan window
            evaluation (default: ``min_size`` clamped to [1 KiB, 32 KiB]
            — at most ``min_size``, consecutive scan windows never
            overlap). Smaller blocks hash fewer wasted bytes past the
            cut; larger blocks amortize per-call overhead. Never affects
            the cuts.
        hash_block: block size in bytes for exact-path streaming
            evaluation (bounds peak temporaries). Never affects the cuts.

    After every :meth:`cut_boundaries` call, :attr:`last_stats` holds the
    call's :class:`ChunkScanStats`; when an observability session is
    active, the same accounting lands on the ``chunking.*`` counters and
    the ``chunking.phase.cut`` span.
    """

    def __init__(
        self,
        avg_size: int = 8 * KIB,
        min_size: "int | None" = None,
        max_size: "int | None" = None,
        seed: int = 2012,
        *,
        exact: bool = False,
        scan_block: "int | None" = None,
        hash_block: int = 4 * MIB,
    ) -> None:
        check_positive("avg_size", avg_size)
        self.avg_size = int(avg_size)
        self.min_size = int(min_size) if min_size is not None else self.avg_size // 4
        self.max_size = int(max_size) if max_size is not None else self.avg_size * 4
        if not 0 < self.min_size <= self.avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        self.seed = int(seed)
        self.exact = bool(exact)
        if scan_block is None:
            scan_block = min(max(self.min_size, KIB), 32 * KIB)
        check_positive("scan_block", scan_block)
        self.scan_block = int(scan_block)
        check_positive("hash_block", hash_block)
        self.hash_block = int(hash_block)
        self._table = _gear_table(seed)
        self._mask = _U64(_mask_for_average(self.avg_size))
        self.last_stats: Optional[ChunkScanStats] = None

    # ------------------------------------------------------------------
    # exact reference path
    # ------------------------------------------------------------------

    def rolling_hashes(self, data: bytes) -> np.ndarray:
        """Exact Gear hash at every byte position (vectorized).

        Evaluated block-wise with a ``WARMUP``-byte carry between blocks,
        so peak temporaries are bounded by ``hash_block`` regardless of
        input size (the output array itself is necessarily O(n)).
        """
        buf = np.frombuffer(data, dtype=np.uint8)
        n = buf.size
        out = np.empty(n, dtype=np.uint64)
        for start, stop, lo in self._hash_blocks(n):
            h = self._eval_block(buf, lo, stop)
            out[start:stop] = h[start - lo :]
        return out

    def _hash_blocks(self, n: int):
        """(start, stop, warmup_start) triples of the streaming walk."""
        block = self.hash_block
        for start in range(0, n, block):
            stop = min(start + block, n)
            yield start, stop, max(start - WARMUP, 0)

    def _eval_block(self, buf: np.ndarray, lo: int, stop: int) -> np.ndarray:
        """Exact hashes for positions ``[lo, stop)`` (reference 64-pass)."""
        return _hashes_64pass(self._table[buf[lo:stop]])

    def _cut_exact(self, data: bytes) -> Tuple[np.ndarray, ChunkScanStats]:
        buf = np.frombuffer(data, dtype=np.uint8)
        n = buf.size
        mask = self._mask
        chunks = []
        warmup = 0
        for start, stop, lo in self._hash_blocks(n):
            h = self._eval_block(buf, lo, stop)
            # candidate cut *after* position i  ->  boundary offset i+1
            chunks.append(np.flatnonzero((h[start - lo :] & mask) == 0) + start + 1)
            warmup += start - lo
        candidates = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        cuts = select_cuts(candidates, n, self.min_size, self.max_size)
        stats = ChunkScanStats(
            bytes_in=n,
            chunks_out=len(cuts) - 1,
            scan_bytes=n,
            skipped_bytes=0,
            warmup_bytes=warmup,
            candidates=int(candidates.size),
        )
        return cuts, stats

    # ------------------------------------------------------------------
    # skip-then-scan fast path
    # ------------------------------------------------------------------

    def _cut_seqcdc(self, data: bytes) -> Tuple[np.ndarray, ChunkScanStats]:
        buf = np.frombuffer(data, dtype=np.uint8)
        n = buf.size
        table = self._table
        mask = self._mask
        min_s = self.min_size
        max_s = self.max_size
        block = self.scan_block
        cuts = [0]
        last = 0
        scan_bytes = 0
        warmup_bytes = 0
        hits_total = 0
        # watermark of positions already hashed: keeps scan_bytes a count
        # of *distinct* tested positions even when a scan_block larger
        # than min_size makes consecutive windows overlap (the re-hashed
        # overlap is accounted as warm-up context instead)
        hashed_upto = 0
        while last < n:
            limit = last + max_s
            cut = -1
            # a content cut lands at offset c = i + 1 with
            # last + min <= c < limit and i < n: hash positions
            # [last + min - 1, min(limit - 1, n)) — everything before is
            # the skip region, everything at/after is the forced cut
            pos = last + min_s - 1
            stop = min(limit - 1, n)
            while pos < stop:
                end = min(pos + block, stop)
                lo = max(pos - WARMUP, 0)
                h = _hashes_doubling(table[buf[lo:end]])
                z = (h[pos - lo :] & mask) == 0
                fresh = end - max(pos, hashed_upto) if end > hashed_upto else 0
                scan_bytes += fresh
                warmup_bytes += (end - pos) - fresh + (pos - lo)
                if end > hashed_upto:
                    hashed_upto = end
                hits = int(z.sum())
                if hits:
                    hits_total += hits
                    cut = pos + int(z.argmax()) + 1
                    break
                pos = end
            if cut < 0:
                cut = min(limit, n)
            cuts.append(cut)
            last = cut
        boundaries = np.asarray(cuts, dtype=np.int64)
        stats = ChunkScanStats(
            bytes_in=n,
            chunks_out=len(cuts) - 1,
            scan_bytes=scan_bytes,
            skipped_bytes=n - scan_bytes,
            warmup_bytes=warmup_bytes,
            candidates=hits_total,
        )
        return boundaries, stats

    # ------------------------------------------------------------------

    def cut_boundaries(self, data: bytes) -> np.ndarray:
        n = len(data)
        if n == 0:
            self._record(ChunkScanStats(0, 0, 0, 0, 0, 0))
            return np.zeros(1, dtype=np.int64)
        if self.exact:
            cuts, stats = self._cut_exact(data)
        else:
            cuts, stats = self._cut_seqcdc(data)
        self._record(stats)
        return cuts

    def _record(self, stats: ChunkScanStats) -> None:
        """Stash per-call stats; mirror them to an active obs session.

        Recording never influences the cuts, so obs on/off runs stay
        byte-identical (the twin-run contract).
        """
        self.last_stats = stats
        from repro.obs import get_active

        obs = get_active()
        if not obs.enabled:
            return
        r = obs.registry
        r.counter("chunking.bytes_in").inc(stats.bytes_in)
        r.counter("chunking.chunks_out").inc(stats.chunks_out)
        r.counter("chunking.scan_bytes").inc(stats.scan_bytes)
        r.counter("chunking.skipped_bytes").inc(stats.skipped_bytes)
        r.counter("chunking.warmup_bytes").inc(stats.warmup_bytes)
        r.counter("chunking.candidates").inc(stats.candidates)
        obs.span(
            "chunking.phase.cut", stats.bytes_in / _SIM_CPU_BYTES_PER_SECOND
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GearChunker(avg={self.avg_size}, min={self.min_size}, "
            f"max={self.max_size}, seed={self.seed}, "
            f"{'exact' if self.exact else 'seqcdc'})"
        )
