"""Chunking substrate: breaking byte streams into content-defined chunks.

Deduplication operates on *chunks*: variable-size pieces cut at
content-defined boundaries so that local edits only disturb nearby chunk
boundaries. This package provides:

* :class:`~repro.chunking.base.Chunk` / :class:`~repro.chunking.base.ChunkStream`
  — the chunk representation used everywhere (structure-of-arrays over
  numpy for scale).
* :class:`~repro.chunking.fixed.FixedChunker` — fixed-size baseline.
* :class:`~repro.chunking.gear.GearChunker` — Gear-hash content-defined
  chunking, numpy-vectorized (the production path for byte-level input).
* :class:`~repro.chunking.rabin.RabinChunker` — classic Rabin polynomial
  fingerprinting CDC (reference implementation).
* :mod:`~repro.chunking.fingerprint` — 64-bit chunk fingerprints and the
  splitmix64 mixer used for synthetic chunk ids.

Large-scale experiments run at *chunk level* (streams of fingerprints
emitted directly by the workload generator); byte-level chunking is the
ingest path for real data and for validating the chunk-level model.
"""

from repro.chunking.base import Chunk, Chunker, ChunkStream
from repro.chunking.fixed import FixedChunker
from repro.chunking.gear import ChunkScanStats, GearChunker
from repro.chunking.rabin import RabinChunker
from repro.chunking.select import select_cuts
from repro.chunking.fingerprint import (
    fingerprint64,
    fingerprint64_fast,
    fingerprint_segments,
    fingerprint_segments_fast,
    splitmix64,
    splitmix64_array,
)

__all__ = [
    "Chunk",
    "Chunker",
    "ChunkScanStats",
    "ChunkStream",
    "FixedChunker",
    "GearChunker",
    "RabinChunker",
    "select_cuts",
    "fingerprint64",
    "fingerprint64_fast",
    "fingerprint_segments",
    "fingerprint_segments_fast",
    "splitmix64",
    "splitmix64_array",
]
