"""Chunk representation and the chunker interface.

`ChunkStream` is a structure-of-arrays (fingerprints, sizes) so that
multi-gigabyte simulated streams stay compact and amenable to vectorized
analysis; `Chunk` is the scalar view handed out on iteration.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, NamedTuple, Sequence, Tuple, Union

import numpy as np

from repro.chunking.fingerprint import (
    fingerprint_segments,
    fingerprint_segments_fast,
)


class Chunk(NamedTuple):
    """One chunk: a 64-bit fingerprint and its size in bytes."""

    fp: int
    size: int


class ChunkStream:
    """An ordered sequence of chunks, stored as parallel numpy arrays.

    Immutable by convention: operations return new streams. Supports
    len/iter/indexing, concatenation, and byte accounting.
    """

    __slots__ = ("fps", "sizes")

    def __init__(self, fps: np.ndarray, sizes: np.ndarray) -> None:
        fps = np.asarray(fps, dtype=np.uint64)
        sizes = np.asarray(sizes, dtype=np.uint32)
        if fps.shape != sizes.shape or fps.ndim != 1:
            raise ValueError("fps and sizes must be parallel 1-D arrays")
        if sizes.size and int(sizes.min()) <= 0:
            raise ValueError("chunk sizes must be > 0")
        self.fps = fps
        self.sizes = sizes

    # -- constructors ---------------------------------------------------

    @classmethod
    def empty(cls) -> "ChunkStream":
        return cls(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint32))

    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "ChunkStream":
        """Build from an iterable of ``(fp, size)`` pairs."""
        fps, sizes = [], []
        for fp, size in pairs:
            fps.append(fp)
            sizes.append(size)
        return cls(np.asarray(fps, dtype=np.uint64), np.asarray(sizes, dtype=np.uint32))

    @classmethod
    def concat(cls, streams: Sequence["ChunkStream"]) -> "ChunkStream":
        """Concatenate streams in order."""
        if not streams:
            return cls.empty()
        return cls(
            np.concatenate([s.fps for s in streams]),
            np.concatenate([s.sizes for s in streams]),
        )

    # -- accessors ------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Sum of chunk sizes (the logical stream size)."""
        return int(self.sizes.sum(dtype=np.int64)) if len(self) else 0

    def __len__(self) -> int:
        return int(self.fps.size)

    def __iter__(self) -> Iterator[Chunk]:
        for fp, size in zip(self.fps, self.sizes):
            yield Chunk(int(fp), int(size))

    def __getitem__(self, idx: Union[int, slice]) -> Union[Chunk, "ChunkStream"]:
        if isinstance(idx, slice):
            return ChunkStream(self.fps[idx], self.sizes[idx])
        return Chunk(int(self.fps[idx]), int(self.sizes[idx]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChunkStream):
            return NotImplemented
        return bool(
            np.array_equal(self.fps, other.fps) and np.array_equal(self.sizes, other.sizes)
        )

    def __hash__(self) -> None:  # type: ignore[override]
        raise TypeError("ChunkStream is unhashable")

    def unique_fingerprints(self) -> np.ndarray:
        """Sorted unique fingerprints in the stream."""
        return np.unique(self.fps)

    def duplicate_bytes_within(self) -> int:
        """Bytes that an exact deduplicator would remove *within* this
        single stream (every occurrence after the first)."""
        if not len(self):
            return 0
        _, first_idx = np.unique(self.fps, return_index=True)
        unique_bytes = int(self.sizes[first_idx].sum(dtype=np.int64))
        return self.total_bytes - unique_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ChunkStream(n={len(self)}, bytes={self.total_bytes})"


class Chunker(abc.ABC):
    """Interface: cut a byte stream into chunk boundaries.

    Subclasses implement :meth:`cut_boundaries`; :meth:`chunk` adds
    fingerprinting to produce a :class:`ChunkStream`.
    """

    @abc.abstractmethod
    def cut_boundaries(self, data: bytes) -> np.ndarray:
        """Return monotonically increasing cut offsets into ``data``,
        starting at 0 and ending at ``len(data)``, so ``n_chunks ==
        len(boundaries) - 1``. For empty input, return ``array([0])``
        (zero chunks)."""

    def chunk(self, data: bytes, *, fingerprints: str = "blake2b") -> ChunkStream:
        """Chunk ``data`` and fingerprint every piece.

        Args:
            fingerprints: fingerprint family — ``"blake2b"`` (default,
                the historical per-chunk hash) or ``"fast"`` (the
                vectorized word-fold batch used by the byte-level
                workload path). The two families produce different
                fingerprint values but identical dedup behaviour; pick
                one per experiment and stay with it.
        """
        boundaries = self.cut_boundaries(data)
        if len(boundaries) < 2:
            return ChunkStream.empty()
        if fingerprints == "blake2b":
            fps = fingerprint_segments(data, boundaries.tolist())
        elif fingerprints == "fast":
            fps = fingerprint_segments_fast(data, boundaries)
        else:
            raise ValueError(
                f"unknown fingerprint family {fingerprints!r} "
                "(expected 'blake2b' or 'fast')"
            )
        sizes = np.diff(boundaries).astype(np.uint32)
        return ChunkStream(fps, sizes)
