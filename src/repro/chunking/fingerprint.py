"""Chunk fingerprints.

Real systems use SHA-1; for simulation we use 64-bit fingerprints:

* byte-level path: BLAKE2b-64 of the chunk contents (collision odds at
  simulation scales are negligible, ~n^2 / 2^65);
* chunk-level path: :func:`splitmix64` of a globally unique counter —
  splitmix64 is a bijection on 64-bit ints, so distinct counters can
  never collide while still looking uniformly random to the index
  structures (bloom filters, hash tables) that consume them;
* batch byte-level path: :func:`fingerprint_segments_fast` — a
  vectorized position-mixed word fold (splitmix64 family). The per-byte
  Python cost of BLAKE2b slicing dominates high-throughput ingest, so
  the byte-level workload path uses this fold instead: every 8-byte
  word is mixed with its in-segment position, XOR-folded per segment
  with one ``np.bitwise_xor.reduceat``, and finalized with the segment
  length. Not BLAKE2b-compatible — a parallel fingerprint *family*
  (collision odds are the same birthday bound either way).
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def fingerprint64(data: bytes) -> int:
    """64-bit BLAKE2b fingerprint of ``data``."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def fingerprint_segments(data: bytes, boundaries: Sequence[int]) -> np.ndarray:
    """Fingerprint each ``data[boundaries[i]:boundaries[i+1]]`` slice.

    Args:
        data: the raw byte stream.
        boundaries: monotonically increasing cut offsets, beginning with 0
            and ending with ``len(data)`` (as produced by chunkers).

    Returns:
        uint64 array of per-chunk fingerprints.
    """
    view = memoryview(data)
    n = len(boundaries) - 1
    out = np.empty(n, dtype=np.uint64)
    for i in range(n):
        out[i] = fingerprint64(bytes(view[boundaries[i] : boundaries[i + 1]]))
    return out


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a fast 64-bit bijective mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + _U64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
        return x ^ (x >> _U64(31))


def fingerprint64_fast(data: bytes) -> int:
    """Scalar reference for the word-fold fingerprint family.

    Zero-pad ``data`` to 8-byte little-endian words, mix each word with
    its word index, XOR-fold, finalize with the byte length. The batch
    implementation (:func:`fingerprint_segments_fast`) must match this
    bit-for-bit.
    """
    length = len(data)
    n_words = (length + 7) // 8
    padded = data + b"\x00" * (8 * n_words - length)
    acc = 0
    for k in range(n_words):
        word = int.from_bytes(padded[8 * k : 8 * k + 8], "little")
        acc ^= splitmix64(word ^ splitmix64(k + 1))
    return splitmix64(acc ^ splitmix64(length))


#: default batch granularity for the vectorized fold: bounds temporaries
#: independent of the input size
_FAST_BATCH_BYTES = 32 * 1024 * 1024


def fingerprint_segments_fast(
    data: bytes,
    boundaries: "Sequence[int] | np.ndarray",
    *,
    batch_bytes: int = _FAST_BATCH_BYTES,
) -> np.ndarray:
    """Vectorized word-fold fingerprints for every segment at once.

    Same contract as :func:`fingerprint_segments` (strictly increasing
    boundaries from 0 to ``len(data)``) but a different fingerprint
    *family*: bit-identical to :func:`fingerprint64_fast` per segment,
    not to BLAKE2b. Segments are processed in batches whose padded size
    stays under ``batch_bytes``, so peak temporaries are bounded
    regardless of input size.
    """
    bounds = np.asarray(boundaries, dtype=np.int64)
    n_seg = bounds.size - 1
    out = np.empty(max(n_seg, 0), dtype=np.uint64)
    if n_seg <= 0:
        return out
    buf = np.frombuffer(data, dtype=np.uint8)
    sizes = np.diff(bounds)
    if sizes.size and int(sizes.min()) <= 0:
        raise ValueError("boundaries must be strictly increasing")
    lo = 0
    while lo < n_seg:
        # widest batch of whole segments whose span fits batch_bytes
        hi = int(np.searchsorted(bounds, bounds[lo] + batch_bytes, side="left"))
        hi = max(min(hi, n_seg), lo + 1)
        out[lo:hi] = _fold_batch(buf, bounds[lo : hi + 1])
        lo = hi
    return out


def _fold_batch(buf: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """One vectorized fold over the segments delimited by ``bounds``."""
    sizes = np.diff(bounds)
    words = (sizes + 7) // 8
    # exclusive word-start offsets per segment, plus total
    wstarts = np.zeros(words.size + 1, dtype=np.int64)
    np.cumsum(words, out=wstarts[1:])
    total_words = int(wstarts[-1])
    padded = np.zeros(total_words * 8, dtype=np.uint8)
    # move each segment's bytes to its word-aligned padded position: a
    # per-segment memcpy loop for realistic chunk sizes (loop overhead is
    # per *chunk*, copy cost is C), a fully vectorized byte scatter when
    # segments are so tiny that per-segment Python overhead would win
    n_span = int(bounds[-1] - bounds[0])
    pstarts = 8 * wstarts[:-1]
    if n_span >= 64 * sizes.size:
        for i in range(sizes.size):
            s = int(bounds[i])
            length = int(sizes[i])
            p = int(pstarts[i])
            padded[p : p + length] = buf[s : s + length]
    else:
        src = np.arange(n_span, dtype=np.int64)
        shift = np.repeat(pstarts - (bounds[:-1] - bounds[0]), sizes)
        padded[src + shift] = buf[bounds[0] : bounds[-1]]
        del src, shift
    wview = padded.view("<u8")
    # in-segment word index for every word
    karr = np.arange(total_words, dtype=np.int64) - np.repeat(wstarts[:-1], words)
    mixed = splitmix64_array(wview ^ splitmix64_array(karr + 1))
    folded = np.bitwise_xor.reduceat(mixed, wstarts[:-1])
    return splitmix64_array(folded ^ splitmix64_array(sizes))

