"""Chunk fingerprints.

Real systems use SHA-1; for simulation we use 64-bit fingerprints:

* byte-level path: BLAKE2b-64 of the chunk contents (collision odds at
  simulation scales are negligible, ~n^2 / 2^65);
* chunk-level path: :func:`splitmix64` of a globally unique counter —
  splitmix64 is a bijection on 64-bit ints, so distinct counters can
  never collide while still looking uniformly random to the index
  structures (bloom filters, hash tables) that consume them.
"""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

_U64 = np.uint64
_MASK64 = (1 << 64) - 1


def fingerprint64(data: bytes) -> int:
    """64-bit BLAKE2b fingerprint of ``data``."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "little")


def fingerprint_segments(data: bytes, boundaries: Sequence[int]) -> np.ndarray:
    """Fingerprint each ``data[boundaries[i]:boundaries[i+1]]`` slice.

    Args:
        data: the raw byte stream.
        boundaries: monotonically increasing cut offsets, beginning with 0
            and ending with ``len(data)`` (as produced by chunkers).

    Returns:
        uint64 array of per-chunk fingerprints.
    """
    view = memoryview(data)
    n = len(boundaries) - 1
    out = np.empty(n, dtype=np.uint64)
    for i in range(n):
        out[i] = fingerprint64(bytes(view[boundaries[i] : boundaries[i + 1]]))
    return out


def splitmix64(x: int) -> int:
    """The splitmix64 finalizer: a fast 64-bit bijective mixer."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`splitmix64` over a uint64 array."""
    x = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):
        x = x + _U64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
        return x ^ (x >> _U64(31))
