"""Vectorized min/max clamping of candidate cut offsets.

Content-defined chunkers produce *candidate* boundaries (positions where
the masked rolling hash fires) and then clamp them greedily: starting
from the previous cut, take the first candidate at least ``min_size``
away, unless ``max_size`` forces a cut first. The greedy chain is
inherently sequential, but almost all of its per-cut work — finding the
first candidate ``>= cut + min_size`` — is not: one vectorized
``searchsorted`` over the whole candidate array precomputes, for every
candidate, the index of its successor-after-min. The walk then follows
precomputed pointers with O(1) Python work per chunk; only forced
max-size cuts (which land between candidates and therefore have no
precomputed pointer) fall back to a lazy ``searchsorted``.

This replaces the per-cut ``np.searchsorted`` walk that dominated the
exact Gear path's selection cost, and is shared by the Gear and Rabin
chunkers (their candidate semantics are identical).
"""

from __future__ import annotations

import numpy as np

__all__ = ["select_cuts"]


def select_cuts(
    candidates: np.ndarray, n: int, min_size: int, max_size: int
) -> np.ndarray:
    """Greedy min/max clamp over sorted candidate cut offsets.

    Args:
        candidates: sorted int64 array of candidate cut offsets in
            ``[1, n]`` (position of the byte *after* a masked-hash hit).
        n: buffer length.
        min_size: no cut closer than this to the previous cut.
        max_size: force a cut at this distance when no candidate fired.

    Returns:
        int64 boundary array starting at 0 and ending at ``n``
        (``array([0])`` for ``n == 0``), matching the scalar clamp walk
        cut-for-cut.
    """
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    candidates = np.asarray(candidates, dtype=np.int64)
    m = candidates.size
    # successor-after-min pointers: nxt[j] is the index of the first
    # candidate >= candidates[j] + min_size (one vectorized pass)
    nxt = (
        np.searchsorted(candidates, candidates + min_size, side="left")
        if m
        else candidates
    )
    cuts = [0]
    last = 0
    j = int(np.searchsorted(candidates, min_size, side="left")) if m else 0
    while last < n:
        limit = last + max_size
        if j < m and candidates[j] < limit:
            cut = int(candidates[j])
            j = int(nxt[j])
        else:
            cut = min(limit, n)
            if cut < n and m:
                # forced cuts land between candidates: resolve lazily
                j = int(np.searchsorted(candidates, cut + min_size, side="left"))
        if cut >= n:
            cut = n
        cuts.append(cut)
        last = cut
    return np.asarray(cuts, dtype=np.int64)
