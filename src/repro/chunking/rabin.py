"""Rabin polynomial fingerprinting CDC.

The classic LBFS/DDFS chunker: a degree-53 irreducible polynomial over
GF(2), a sliding window of 48 bytes, and a boundary wherever the window
fingerprint's low bits match a fixed pattern.

Two implementations share the semantics:

* **Scalar reference**: the standard two-table scheme (overflow-reduction
  table and outgoing-byte table) as a per-byte Python loop — exact Rabin
  semantics, kept as the cross-check oracle.
* **Vectorized** (default when valid): the full-window fingerprint is
  GF(2)-linear in the window bytes,

      H(i) = XOR_{j=0..window-1} V_j[b_{i-j}],   V_j[b] = (b·x^(8j)) mod P

  so 48 vectorized XOR table-lookup passes compute every position's
  full-window hash, block-wise with a ``window - 1`` byte carry. Boundary
  checks in the scalar loop only ever happen at chunk length >=
  ``min_size``; whenever ``min_size >= window`` the window is therefore
  always full (and independent of the per-cut state reset), so candidate
  positions match the scalar loop exactly and the shared
  :func:`repro.chunking.select.select_cuts` clamp reproduces its cuts
  cut-for-cut (property-tested). When ``min_size < window`` the partial-
  window prefix after each cut would diverge, so the chunker falls back
  to the scalar loop automatically.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro._util import KIB, MIB, check_positive
from repro.chunking.base import Chunker
from repro.chunking.select import select_cuts

#: The LBFS irreducible polynomial of degree 53 over GF(2).
DEFAULT_POLY = 0x3DA3358B4DC173
_DEGREE = 53
_WINDOW = 48


def _polymod(value: int, poly: int, degree: int) -> int:
    """Reduce ``value`` modulo ``poly`` in GF(2) polynomial arithmetic."""
    while True:
        bl = value.bit_length()
        if bl <= degree:
            return value
        value ^= poly << (bl - 1 - degree)


def _build_tables(poly: int, degree: int, window: int):
    """Precompute the shift-reduction table T and outgoing-byte table U."""
    # T[t] is the reduced value of the 8 bits that overflow past `degree`
    # on a left shift: (t << degree) mod poly.
    T = [_polymod(t << degree, poly, degree) for t in range(256)]
    # U[b] is b * x^(8*window) mod poly: the contribution of the byte
    # leaving the window.
    shift = 8 * window
    U = [_polymod(b << shift, poly, degree) for b in range(256)]
    return T, U


#: lag tables are pure functions of (poly, degree, window); building one
#: costs window * 256 polymods, so share them across chunker instances
_LAG_CACHE: Dict[Tuple[int, int, int], np.ndarray] = {}


def _build_lag_tables(poly: int, degree: int, window: int) -> np.ndarray:
    """V[j][b] = (b * x^(8j)) mod P — the lag-j byte contribution."""
    key = (poly, degree, window)
    table = _LAG_CACHE.get(key)
    if table is None:
        table = np.empty((window, 256), dtype=np.uint64)
        for j in range(window):
            shift = 8 * j
            for b in range(256):
                table[j, b] = _polymod(b << shift, poly, degree)
        table.setflags(write=False)
        _LAG_CACHE[key] = table
    return table


class RabinChunker(Chunker):
    """Sliding-window Rabin fingerprint chunker.

    Args:
        avg_size: target average chunk size; sets the boundary mask width.
        min_size: minimum chunk size (skip boundary checks below it).
        max_size: forced cut length.
        window: sliding window width in bytes.
        poly: irreducible polynomial (degree 53).
        vectorized: force the vectorized (True) or scalar (False) path;
            the default ``None`` auto-selects vectorized whenever it is
            exact (``min_size >= window``). Requesting ``True`` when that
            precondition fails raises.
        hash_block: block size in bytes for the vectorized evaluation
            (bounds peak temporaries; never affects the cuts).
    """

    def __init__(
        self,
        avg_size: int = 8 * KIB,
        min_size: "int | None" = None,
        max_size: "int | None" = None,
        window: int = _WINDOW,
        poly: int = DEFAULT_POLY,
        *,
        vectorized: Optional[bool] = None,
        hash_block: int = 4 * MIB,
    ) -> None:
        check_positive("avg_size", avg_size)
        self.avg_size = int(avg_size)
        self.min_size = int(min_size) if min_size is not None else self.avg_size // 4
        self.max_size = int(max_size) if max_size is not None else self.avg_size * 4
        if not 0 < self.min_size <= self.avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        check_positive("window", window)
        self.window = int(window)
        self.poly = int(poly)
        check_positive("hash_block", hash_block)
        self.hash_block = int(hash_block)
        self._T, self._U = _build_tables(self.poly, _DEGREE, self.window)
        bits = max(1, int(round(np.log2(self.avg_size))))
        self._mask = (1 << bits) - 1
        # match-anything-but-zero target avoids degenerate all-zero input
        # cutting at every position after min_size
        self._target = self._mask
        exactable = self.min_size >= self.window
        if vectorized is None:
            self.vectorized = exactable
        else:
            if vectorized and not exactable:
                raise ValueError(
                    "vectorized Rabin requires min_size >= window "
                    f"(got {self.min_size} < {self.window}): boundary "
                    "checks below a full window depend on the per-cut "
                    "state reset"
                )
            self.vectorized = bool(vectorized)
        self._V = (
            _build_lag_tables(self.poly, _DEGREE, self.window)
            if self.vectorized
            else None
        )

    def cut_boundaries(self, data: bytes) -> np.ndarray:
        if self.vectorized:
            return self._cut_vectorized(data)
        return self.cut_boundaries_scalar(data)

    # ------------------------------------------------------------------
    # scalar reference path
    # ------------------------------------------------------------------

    def cut_boundaries_scalar(self, data: bytes) -> np.ndarray:
        """The per-byte two-table loop — the reference semantics."""
        n = len(data)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        T = self._T
        U = self._U
        mask = self._mask
        target = self._target
        window = self.window
        degree_shift = _DEGREE - 8
        state_mask = (1 << _DEGREE) - 1

        cuts = [0]
        last = 0
        h = 0
        win_start = 0  # logical start of the sliding window
        i = 0
        while i < n:
            byte = data[i]
            h = (((h << 8) | byte) & state_mask) ^ T[h >> degree_shift]
            if i - win_start >= window:
                h ^= U[data[win_start]]
                win_start += 1
            i += 1
            length = i - last
            if (length >= self.min_size and (h & mask) == target) or length >= self.max_size:
                cuts.append(i)
                last = i
                h = 0
                win_start = i
        if cuts[-1] != n:
            cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)

    # ------------------------------------------------------------------
    # vectorized path
    # ------------------------------------------------------------------

    def _cut_vectorized(self, data: bytes) -> np.ndarray:
        buf = np.frombuffer(data, dtype=np.uint8)
        n = buf.size
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        V = self._V
        assert V is not None
        w = self.window
        mask = np.uint64(self._mask)
        target = np.uint64(self._target)
        block = self.hash_block
        chunks = []
        for start in range(0, n, block):
            stop = min(start + block, n)
            lo = max(start - (w - 1), 0)
            seg = buf[lo:stop]
            h = V[0][seg]  # fancy indexing returns a fresh array
            for j in range(1, min(w, seg.size)):
                h[j:] ^= V[j][seg[:-j]]
            # h[q] is the full-window hash at buffer position lo + q for
            # q >= w - 1; the first-block prefix (positions < w - 1) holds
            # partial sums, but those candidates sit below window <=
            # min_size and can never be selected by the clamp walk
            hits = np.flatnonzero((h[start - lo :] & mask) == target)
            chunks.append(hits + start + 1)
        candidates = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        return select_cuts(candidates, n, self.min_size, self.max_size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RabinChunker(avg={self.avg_size}, min={self.min_size}, "
            f"max={self.max_size}, window={self.window}, "
            f"{'vectorized' if self.vectorized else 'scalar'})"
        )
