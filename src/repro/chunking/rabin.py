"""Rabin polynomial fingerprinting CDC (reference implementation).

This is the classic LBFS/DDFS chunker: a degree-53 irreducible polynomial
over GF(2), a sliding window of 48 bytes, and a boundary wherever the
window fingerprint's low bits match a fixed pattern. It is implemented
with the standard two-table scheme (overflow-reduction table and
outgoing-byte table) as a per-byte Python loop.

It exists as the *reference* chunker — exact Rabin semantics for tests and
small inputs. The production byte-level path is
:class:`~repro.chunking.gear.GearChunker` (vectorized); large-scale
experiments bypass byte chunking entirely (chunk-level streams).
"""

from __future__ import annotations

import numpy as np

from repro._util import KIB, check_positive
from repro.chunking.base import Chunker

#: The LBFS irreducible polynomial of degree 53 over GF(2).
DEFAULT_POLY = 0x3DA3358B4DC173
_DEGREE = 53
_WINDOW = 48


def _polymod(value: int, poly: int, degree: int) -> int:
    """Reduce ``value`` modulo ``poly`` in GF(2) polynomial arithmetic."""
    while True:
        bl = value.bit_length()
        if bl <= degree:
            return value
        value ^= poly << (bl - 1 - degree)


def _build_tables(poly: int, degree: int, window: int):
    """Precompute the shift-reduction table T and outgoing-byte table U."""
    # T[t] is the reduced value of the 8 bits that overflow past `degree`
    # on a left shift: (t << degree) mod poly.
    T = [_polymod(t << degree, poly, degree) for t in range(256)]
    # U[b] is b * x^(8*window) mod poly: the contribution of the byte
    # leaving the window.
    shift = 8 * window
    U = [_polymod(b << shift, poly, degree) for b in range(256)]
    return T, U


class RabinChunker(Chunker):
    """Sliding-window Rabin fingerprint chunker.

    Args:
        avg_size: target average chunk size; sets the boundary mask width.
        min_size: minimum chunk size (skip boundary checks below it).
        max_size: forced cut length.
        window: sliding window width in bytes.
        poly: irreducible polynomial (degree 53).
    """

    def __init__(
        self,
        avg_size: int = 8 * KIB,
        min_size: "int | None" = None,
        max_size: "int | None" = None,
        window: int = _WINDOW,
        poly: int = DEFAULT_POLY,
    ) -> None:
        check_positive("avg_size", avg_size)
        self.avg_size = int(avg_size)
        self.min_size = int(min_size) if min_size is not None else self.avg_size // 4
        self.max_size = int(max_size) if max_size is not None else self.avg_size * 4
        if not 0 < self.min_size <= self.avg_size <= self.max_size:
            raise ValueError(
                f"need 0 < min <= avg <= max, got "
                f"{self.min_size}/{self.avg_size}/{self.max_size}"
            )
        check_positive("window", window)
        self.window = int(window)
        self.poly = int(poly)
        self._T, self._U = _build_tables(self.poly, _DEGREE, self.window)
        bits = max(1, int(round(np.log2(self.avg_size))))
        self._mask = (1 << bits) - 1
        # match-anything-but-zero target avoids degenerate all-zero input
        # cutting at every position after min_size
        self._target = self._mask

    def cut_boundaries(self, data: bytes) -> np.ndarray:
        n = len(data)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        T = self._T
        U = self._U
        mask = self._mask
        target = self._target
        window = self.window
        degree_shift = _DEGREE - 8
        state_mask = (1 << _DEGREE) - 1

        cuts = [0]
        last = 0
        h = 0
        win_start = 0  # logical start of the sliding window
        i = 0
        while i < n:
            byte = data[i]
            h = (((h << 8) | byte) & state_mask) ^ T[h >> degree_shift]
            if i - win_start >= window:
                h ^= U[data[win_start]]
                win_start += 1
            i += 1
            length = i - last
            if (length >= self.min_size and (h & mask) == target) or length >= self.max_size:
                cuts.append(i)
                last = i
                h = 0
                win_start = i
        if cuts[-1] != n:
            cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RabinChunker(avg={self.avg_size}, min={self.min_size}, "
            f"max={self.max_size}, window={self.window})"
        )
