"""Fixed-size chunking: the classic baseline.

Fixed-size chunks are trivial to compute but shift-intolerant: a single
inserted byte re-aligns every later chunk and destroys dedup. Included as
the comparison point for the content-defined chunkers.
"""

from __future__ import annotations

import numpy as np

from repro._util import KIB, check_positive
from repro.chunking.base import Chunker


class FixedChunker(Chunker):
    """Cut the stream every ``chunk_size`` bytes (last chunk may be short).

    Args:
        chunk_size: fixed chunk length in bytes (default 8 KiB).
    """

    def __init__(self, chunk_size: int = 8 * KIB) -> None:
        check_positive("chunk_size", chunk_size)
        self.chunk_size = int(chunk_size)

    def cut_boundaries(self, data: bytes) -> np.ndarray:
        n = len(data)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        cuts = np.arange(0, n, self.chunk_size, dtype=np.int64)
        return np.append(cuts, n)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FixedChunker(chunk_size={self.chunk_size})"
