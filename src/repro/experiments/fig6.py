"""Fig. 6 — data read (restore) performance: DeFrag vs DDFS-Like.

Paper: restoring backup generations 1–20, DeFrag's read rate is
consistently above DDFS-Like's because the α-rewrites keep each backup's
chunks in fewer, longer container runs (Eq. 1 with a smaller N).

The harness ingests the 20-generation author workload (the same dataset
regime as Fig. 2, where twenty generations of placement decay have
accumulated) through both engines and then restores every generation
from each engine's own store.
"""

from __future__ import annotations

from typing import Optional

from repro.dedup.pipeline import run_workload
from repro.experiments.common import (
    FigureResult,
    build_engine,
    build_resources,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.restore.reader import RestoreReader
from repro.workloads.generators import author_fs_20_full


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 6's series."""
    config = config if config is not None else ExperimentConfig.default()
    series = {}
    reads = {}
    for name in ("DeFrag", "DDFS-Like"):
        res = build_resources(config)
        engine = build_engine(name, config, res)
        jobs = author_fs_20_full(
            fs_bytes=config.fs_bytes,
            seed=config.seed,
            n_generations=config.n_generations,
            churn=config.churn_full,
        )
        reports = run_workload(engine, jobs, paper_segmenter())
        reader = RestoreReader(res.store, cache_containers=config.restore_cache_containers)
        rates, nreads = [], []
        for report in reports:
            rr = reader.restore(report.recipe)
            rates.append(rr.read_rate / 1e6)
            nreads.append(float(rr.container_reads))
        series[name] = rates
        reads[name] = nreads
    n = len(series["DeFrag"])
    mean_gain = sum(
        d / max(s, 1e-9) for d, s in zip(series["DeFrag"], series["DDFS-Like"])
    ) / n
    return FigureResult(
        figure="Fig6",
        title="Data read (restore) performance comparison",
        x_label="generation",
        x=list(range(1, n + 1)),
        series={
            "DeFrag MB/s": series["DeFrag"],
            "DDFS MB/s": series["DDFS-Like"],
            "DeFrag reads": reads["DeFrag"],
            "DDFS reads": reads["DDFS-Like"],
        },
        notes={
            "paper": "DeFrag's read performance is higher than DDFS-Like's",
            "mean_speedup": f"{mean_gain:.2f}x",
            "endpoint_speedup": f"{series['DeFrag'][-1] / max(series['DDFS-Like'][-1], 1e-9):.2f}x",
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
