"""Fig. 6 — data read (restore) performance: DeFrag vs DDFS-Like.

Paper: restoring backup generations 1–20, DeFrag's read rate is
consistently above DDFS-Like's because the α-rewrites keep each backup's
chunks in fewer, longer container runs (Eq. 1 with a smaller N).

The harness ingests the 20-generation author workload (the same dataset
regime as Fig. 2, where twenty generations of placement decay have
accumulated) through both engines and then restores every generation
from each engine's own store.

Grid decomposition: one ingest+restore cell per engine (the restore
needs the engine's live store, so it happens inside the cell).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dedup.pipeline import run_workload, run_workload_with_maintenance
from repro.api import create_engine, create_reader, create_resources, engine_info
from repro.experiments.common import (
    MAINTENANCE_ENGINE_NAMES,
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid
from repro.workloads.generators import author_fs_20_full

#: the two engines Fig. 6 compares, in series order
ENGINES = ("DeFrag", "DDFS-Like")


def _engines(config: ExperimentConfig):
    """The paper's pair, plus the maintenance-phase engines when
    ``config.extended_engines`` is on."""
    if config.extended_engines:
        return ENGINES + MAINTENANCE_ENGINE_NAMES
    return ENGINES


def _nondefault_restore(config: ExperimentConfig) -> bool:
    """True when the figure runs under non-default restore knobs (the
    ``--restore-policy`` / FAA / read-ahead dimension); the default
    table must stay byte-identical to the recorded baseline."""
    return (
        config.restore_policy != "lru"
        or config.restore_faa_window != 0
        or config.restore_readahead
    )


def restore_cell(config: ExperimentConfig, engine: str) -> Dict:
    """Grid cell: ingest the author workload through one engine, then
    restore every generation from that engine's own store (under the
    config's restore policy / FAA / read-ahead knobs)."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    jobs = author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )
    if engine_info(engine).supports_maintenance:
        reports = run_workload_with_maintenance(eng, jobs, paper_segmenter())
    else:
        reports = run_workload(eng, jobs, paper_segmenter())
    reader = create_reader(res.store, config)
    rates, nreads, seeks = [], [], []
    for report in reports:
        rr = reader.restore(report.recipe)
        rates.append(rr.read_rate / 1e6)
        nreads.append(float(rr.container_reads))
        seeks.append(float(rr.seeks))
    return {"rates_mbps": rates, "container_reads": nreads, "seeks": seeks}


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The figure's grid: one ingest+restore cell per engine."""
    return [
        CellSpec(
            key=("fig6", engine, config_fingerprint(config)),
            fn="repro.experiments.fig6:restore_cell",
            config=config,
            kwargs={"engine": engine},
        )
        for engine in _engines(config)
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild Fig. 6 from grid cell payloads (failed cells go NaN)."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    by_engine = {
        spec.kwargs["engine"]: values.get(spec.key) for spec in specs
    }
    ok = {name: v for name, v in by_engine.items() if v is not None}
    if not ok:
        raise GridError(f"fig6: every cell failed: {failures}")
    n = len(next(iter(ok.values()))["rates_mbps"])
    nan = [float("nan")] * n
    engines = _engines(config)
    series = {
        name: (
            list(by_engine[name]["rates_mbps"])
            if by_engine[name] is not None
            else list(nan)
        )
        for name in engines
    }
    reads = {
        name: (
            list(by_engine[name]["container_reads"])
            if by_engine[name] is not None
            else list(nan)
        )
        for name in engines
    }
    mean_gain = sum(
        d / max(s, 1e-9) for d, s in zip(series["DeFrag"], series["DDFS-Like"])
    ) / n
    out_series = {
        "DeFrag MB/s": series["DeFrag"],
        "DDFS MB/s": series["DDFS-Like"],
        "DeFrag reads": reads["DeFrag"],
        "DDFS reads": reads["DDFS-Like"],
    }
    for name in engines[2:]:
        out_series[f"{name} MB/s"] = series[name]
        out_series[f"{name} reads"] = reads[name]
    notes = {
        "paper": "DeFrag's read performance is higher than DDFS-Like's",
        "mean_speedup": f"{mean_gain:.2f}x",
        "endpoint_speedup": f"{series['DeFrag'][-1] / max(series['DDFS-Like'][-1], 1e-9):.2f}x",
    }
    if _nondefault_restore(config):
        # the --restore-policy dimension: priced positionings differ
        # from container fetches once read-ahead batches runs, so the
        # table grows seek columns (the recorded default table must not)
        seek_cols = [("DeFrag", "DeFrag seeks"), ("DDFS-Like", "DDFS seeks")]
        seek_cols += [(name, f"{name} seeks") for name in engines[2:]]
        for name, col in seek_cols:
            payload = by_engine[name]
            out_series[col] = (
                list(payload["seeks"]) if payload is not None else list(nan)
            )
        notes["restore"] = (
            f"policy={config.restore_policy} "
            f"faa_window={config.restore_faa_window} "
            f"readahead={config.restore_readahead}"
        )
    return FigureResult(
        figure="Fig6",
        title="Data read (restore) performance comparison",
        x_label="generation",
        x=list(range(1, n + 1)),
        series=out_series,
        notes=notes,
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Regenerate Fig. 6's series."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
