"""Markdown report generation: one command, the whole evaluation.

``python -m repro report --scale small --save out/`` regenerates every
figure, renders a single self-contained markdown document (tables +
headline comparisons + run configuration), and optionally archives the
raw series alongside it. EXPERIMENTS.md's numbers were produced this way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro._util import MIB
from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6
from repro.experiments.common import FigureResult
from repro.experiments.config import ExperimentConfig

_FIGS = (
    ("fig2", fig2.run, "{:.1f}"),
    ("fig3", fig3.run, "{:.3f}"),
    ("fig4", fig4.run, "{:.1f}"),
    ("fig5", fig5.run, "{:.3f}"),
    ("fig6", fig6.run, "{:.1f}"),
)


def _markdown_table(result: FigureResult, fmt: str) -> str:
    names = list(result.series)
    lines = [
        "| " + result.x_label + " | " + " | ".join(names) + " |",
        "|" + "---|" * (len(names) + 1),
    ]
    for i, xv in enumerate(result.x):
        cells = [fmt.format(result.series[n][i]) for n in names]
        lines.append(f"| {xv} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _config_section(config: ExperimentConfig) -> str:
    return "\n".join(
        [
            "## Configuration",
            "",
            f"- seed: {config.seed}",
            f"- author FS: {config.fs_bytes // MIB} MiB x {config.n_generations} generations",
            f"- group: {config.n_users} users x {config.per_user_bytes // MIB} MiB, "
            f"{config.n_backups} backups",
            f"- alpha: {config.alpha}",
            f"- disk: {config.disk.name} "
            f"({config.disk.seek_time_s * 1e3:.0f} ms seek, "
            f"{config.disk.seq_bandwidth / 1e6:.0f} MB/s)",
            f"- DDFS cache: {config.cache_containers} containers, "
            f"read-ahead {config.prefetch_ahead}",
            f"- SiLo: {config.silo_block_bytes // MIB} MiB blocks, "
            f"{config.silo_cache_blocks}-block cache, "
            f"{config.silo_similarity_capacity}-entry similarity budget",
        ]
    )


def generate_markdown(
    config: Optional[ExperimentConfig] = None,
    *,
    include_ablations: bool = False,
) -> str:
    """Run every figure and render one markdown document."""
    config = config if config is not None else ExperimentConfig.default()
    sections: List[str] = [
        "# DeFrag reproduction report",
        "",
        "Regenerated evaluation of *Reducing The De-linearization of Data "
        "Placement to Improve Deduplication Performance* (SC 2012) on the "
        "simulated substrate.",
        "",
        _config_section(config),
    ]
    results: Dict[str, FigureResult] = {}
    for name, runner, fmt in _FIGS:
        result = runner(config)
        results[name] = result
        sections += [
            "",
            f"## {result.figure}: {result.title}",
            "",
            _markdown_table(result, fmt),
            "",
        ]
        sections += [f"- **{k}**: {v}" for k, v in result.notes.items()]
    if include_ablations:
        for runner in (ablations.alpha_sweep, ablations.cache_ablation):
            result = runner(config)
            sections += [
                "",
                f"## {result.figure}: {result.title}",
                "",
                _markdown_table(result, "{:.2f}"),
                "",
            ]
            sections += [f"- **{k}**: {v}" for k, v in result.notes.items()]
    return "\n".join(sections) + "\n"


def write_report(
    path,
    config: Optional[ExperimentConfig] = None,
    *,
    include_ablations: bool = False,
) -> Path:
    """Generate and write the markdown report; returns the path."""
    path = Path(path)
    path.write_text(generate_markdown(config, include_ablations=include_ablations))
    return path
