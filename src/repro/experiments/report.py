"""Markdown report generation: one command, the whole evaluation.

``python -m repro report --scale small --save out/`` regenerates every
figure, renders a single self-contained markdown document (tables +
headline comparisons + run configuration), and optionally archives the
raw series alongside it. EXPERIMENTS.md's numbers were produced this way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro._util import MIB
from repro.experiments.common import FigureResult, clear_memo
from repro.experiments.config import ExperimentConfig
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Observability,
    Span,
    TimeSeries,
    build_manifest,
    chunking_summary,
    obs_session,
)
from repro.parallel import GridError

_FIGS = (
    ("fig2", "{:.1f}"),
    ("fig3", "{:.3f}"),
    ("fig4", "{:.1f}"),
    ("fig5", "{:.3f}"),
    ("fig6", "{:.1f}"),
)

_ABLATIONS = (
    ("alpha-sweep", "{:.2f}"),
    ("cache-ablation", "{:.2f}"),
)


def _markdown_table(result: FigureResult, fmt: str) -> str:
    names = list(result.series)
    lines = [
        "| " + result.x_label + " | " + " | ".join(names) + " |",
        "|" + "---|" * (len(names) + 1),
    ]
    for i, xv in enumerate(result.x):
        cells = [fmt.format(result.series[n][i]) for n in names]
        lines.append(f"| {xv} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _config_section(config: ExperimentConfig) -> str:
    return "\n".join(
        [
            "## Configuration",
            "",
            f"- seed: {config.seed}",
            f"- author FS: {config.fs_bytes // MIB} MiB x {config.n_generations} generations",
            f"- group: {config.n_users} users x {config.per_user_bytes // MIB} MiB, "
            f"{config.n_backups} backups",
            f"- alpha: {config.alpha}",
            f"- disk: {config.disk.name} "
            f"({config.disk.seek_time_s * 1e3:.0f} ms seek, "
            f"{config.disk.seq_bandwidth / 1e6:.0f} MB/s)",
            f"- DDFS cache: {config.cache_containers} containers, "
            f"read-ahead {config.prefetch_ahead}",
            f"- SiLo: {config.silo_block_bytes // MIB} MiB blocks, "
            f"{config.silo_cache_blocks}-block cache, "
            f"{config.silo_similarity_capacity}-entry similarity budget",
        ]
    )


def _provenance_section(config: ExperimentConfig) -> str:
    """Run identity (manifest without wall-clock fields — the report is
    under the byte-identity contract, so two runs of the same checkout
    and config must render the same bytes)."""
    manifest = build_manifest(config=config, wall_clock=False)
    lines = ["## Provenance", ""]
    lines += [f"- {k}: `{v}`" for k, v in manifest.deterministic_dict().items()]
    return "\n".join(lines)


def _histogram_table(hist: Histogram) -> str:
    lines = ["| bucket | count |", "|---|---|"]
    for label, n in hist.buckets():
        lines.append(f"| {label} | {n} |")
    lines.append(f"| **total** (mean {hist.mean:.3f}) | {hist.count} |")
    return "\n".join(lines)


def _diagnostics_section(registry: MetricsRegistry) -> str:
    """The observability rollup: per-phase span totals plus the SPL and
    prefetch-yield histograms recorded while the figures ran."""
    from repro.obs.spans import INGEST_PHASES

    lines: List[str] = [
        "## Diagnostics",
        "",
        "Recorded by the observability layer (`repro.obs`) while the "
        "figures above ran. All durations are *simulated* seconds.",
    ]
    phase_cols = tuple(INGEST_PHASES) + ("segment",)
    phase_rows: Dict[str, Dict[str, Span]] = {}
    other: List[Span] = []
    for span in registry.by_kind(Span):
        engine, _, phase = span.name.partition(".phase.")
        if phase in phase_cols:
            phase_rows.setdefault(engine, {})[phase] = span
        else:
            other.append(span)
    if phase_rows:
        lines += ["", "### Per-phase simulated time (seconds)", ""]
        lines.append("| engine | " + " | ".join(phase_cols) + " |")
        lines.append("|" + "---|" * (len(phase_cols) + 1))
        for engine in sorted(phase_rows):
            row = phase_rows[engine]
            cells = [
                f"{row[c].sim_seconds:.3f}" if c in row else "-" for c in phase_cols
            ]
            lines.append(f"| {engine} | " + " | ".join(cells) + " |")
    if other:
        lines += ["", "### Other spans", "", "| span | count | sim seconds |", "|---|---|---|"]
        for span in other:
            lines.append(f"| {span.name} | {span.count} | {span.sim_seconds:.3f} |")
    chunking = chunking_summary(registry.snapshot())
    if chunking:
        lines += [
            "",
            "### Chunking (byte-level CDC)",
            "",
            "| figure | value |",
            "|---|---|",
        ]
        lines += [f"| {k} | {v} |" for k, v in chunking]
    for hist in registry.by_kind(Histogram):
        tail = hist.name.rpartition(".")[2]
        if hist.name.endswith(".spl"):
            title = f"{hist.name} — SPL per referenced stored segment"
        elif tail == "prefetch_yield":
            title = f"{hist.name} — cache hits per prefetched unit"
        elif hist.name == "restore.seeks_per_mib":
            title = "restore.seeks_per_mib — container fetches per restored MiB"
        else:
            continue
        if not hist.count:
            continue
        lines += ["", f"### {title}", "", _histogram_table(hist)]
    series = registry.by_kind(TimeSeries)
    if series:
        lines += [
            "",
            "### Time series (trajectories over simulated time)",
            "",
            "| series | samples | first | last | min | max |",
            "|---|---|---|---|---|---|",
        ]
        for ts in series:
            if not len(ts):
                continue
            vals = ts.values()
            lines.append(
                f"| {ts.name} | {ts.count} | {vals[0]:.3f} | {vals[-1]:.3f} "
                f"| {min(vals):.3f} | {max(vals):.3f} |"
            )
    return "\n".join(lines)


def generate_markdown(
    config: Optional[ExperimentConfig] = None,
    *,
    include_ablations: bool = False,
    jobs: int = 1,
) -> str:
    """Run every figure (under an observability session, so the report
    can close with a Diagnostics rollup) and render one markdown
    document. All figures execute over one deduplicated cell grid —
    cells shared between figures record diagnostics exactly once, in
    either venue — so the rendered document is byte-identical for any
    ``jobs``."""
    from repro.experiments.suite import run_suite

    config = config if config is not None else ExperimentConfig.default()
    sections: List[str] = [
        "# DeFrag reproduction report",
        "",
        "Regenerated evaluation of *Reducing The De-linearization of Data "
        "Placement to Improve Deduplication Performance* (SC 2012) on the "
        "simulated substrate.",
        "",
        _config_section(config),
        "",
        _provenance_section(config),
    ]
    entries = _FIGS + (_ABLATIONS if include_ablations else ())
    # drop memoized workload runs so the figures execute (and record
    # diagnostics) under this session; again after, so obs-off callers
    # never reuse anything built during it
    clear_memo()
    try:
        with obs_session(Observability()) as obs:
            results, errors = run_suite(
                [name for name, _ in entries], config, jobs=jobs
            )
    finally:
        clear_memo()
    if errors:
        raise GridError(
            "report aborted, experiments failed: "
            + "; ".join(f"{k}: {v}" for k, v in errors.items())
        )
    for name, fmt in entries:
        result = results[name]
        sections += [
            "",
            f"## {result.figure}: {result.title}",
            "",
            _markdown_table(result, fmt),
            "",
        ]
        sections += [f"- **{k}**: {v}" for k, v in result.notes.items()]
    sections += ["", _diagnostics_section(obs.registry), ""]
    return "\n".join(sections)


def write_report(
    path,
    config: Optional[ExperimentConfig] = None,
    *,
    include_ablations: bool = False,
    jobs: int = 1,
) -> Path:
    """Generate and write the markdown report; returns the path."""
    path = Path(path)
    path.write_text(
        generate_markdown(config, include_ablations=include_ablations, jobs=jobs)
    )
    return path
