"""Fig. 3 — degradation of SiLo-like deduplication efficiency.

Paper: over ~20 incremental backup generations, SiLo's deduplication
efficiency (redundant data removed / redundant data existing) declines
toward ~0.88 because duplicate locality weakens: more of a segment's
duplicates live outside the similar blocks SiLo fetches.

The harness ingests the scaled ``author_fs_20_incremental`` workload
through the SiLo-like engine and reports per-generation efficiency, the
cumulative efficiency, and the mechanism observable (cache hits per
fetched block).
"""

from __future__ import annotations

from typing import Optional

from repro.dedup.pipeline import run_workload
from repro.experiments.common import FigureResult, build_engine, build_resources, paper_segmenter
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency, efficiency_series
from repro.metrics.fragmentation import locality_series
from repro.workloads.generators import author_fs_20_incremental


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 3's series."""
    config = config if config is not None else ExperimentConfig.default()
    res = build_resources(config)
    engine = build_engine("SiLo-Like", config, res)
    jobs = author_fs_20_incremental(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_incremental,
        avg_file_bytes=config.incremental_file_bytes,
    )
    reports = run_workload(engine, jobs, paper_segmenter())
    eff = efficiency_series(reports)
    cum = cumulative_efficiency(reports)
    return FigureResult(
        figure="Fig3",
        title="Degradation of deduplication efficiency (SiLo-Like)",
        x_label="generation",
        x=[r.generation + 1 for r in reports],
        series={
            "efficiency": eff,
            "cumulative": cum,
            "hits/fetch": locality_series(reports),
        },
        notes={
            "paper": "efficiency decays toward ~0.88 by generation 20",
            "claim": "SiLo misses grow as duplicates scatter outside similar blocks",
            "endpoint_cumulative": f"{cum[-1]:.3f}",
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table(fmt="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
