"""Fig. 3 — degradation of SiLo-like deduplication efficiency.

Paper: over ~20 incremental backup generations, SiLo's deduplication
efficiency (redundant data removed / redundant data existing) declines
toward ~0.88 because duplicate locality weakens: more of a segment's
duplicates live outside the similar blocks SiLo fetches.

The harness ingests the scaled ``author_fs_20_incremental`` workload
through the SiLo-like engine and reports per-generation efficiency, the
cumulative efficiency, and the mechanism observable (cache hits per
fetched block).

Grid decomposition: a single cell (one engine, one workload).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dedup.pipeline import run_workload
from repro.api import create_engine, create_resources
from repro.experiments.common import (
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency, efficiency_series
from repro.metrics.fragmentation import locality_series
from repro.parallel import CellSpec, GridError, run_grid
from repro.workloads.generators import author_fs_20_incremental


def author_incremental_cell(
    config: ExperimentConfig, engine: str = "SiLo-Like"
) -> Dict:
    """Grid cell: one engine over the 20-generation incremental author
    workload; returns the efficiency and locality series Fig. 3 plots."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    jobs = author_fs_20_incremental(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_incremental,
        avg_file_bytes=config.incremental_file_bytes,
    )
    reports = run_workload(eng, jobs, paper_segmenter())
    return {
        "generations": [r.generation + 1 for r in reports],
        "efficiency": [float(v) for v in efficiency_series(reports)],
        "cumulative": [float(v) for v in cumulative_efficiency(reports)],
        "hits_per_fetch": [float(v) for v in locality_series(reports)],
    }


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The figure's grid: one SiLo cell over the incremental workload."""
    return [
        CellSpec(
            key=("fig3", "SiLo-Like", config_fingerprint(config)),
            fn="repro.experiments.fig3:author_incremental_cell",
            config=config,
            kwargs={"engine": "SiLo-Like"},
        )
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild Fig. 3 from its (single) grid cell."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"fig3: every cell failed: {failures}")
    payload = values[specs[0].key]
    cum = payload["cumulative"]
    return FigureResult(
        figure="Fig3",
        title="Degradation of deduplication efficiency (SiLo-Like)",
        x_label="generation",
        x=list(payload["generations"]),
        series={
            "efficiency": payload["efficiency"],
            "cumulative": cum,
            "hits/fetch": payload["hits_per_fetch"],
        },
        notes={
            "paper": "efficiency decays toward ~0.88 by generation 20",
            "claim": "SiLo misses grow as duplicates scatter outside similar blocks",
            "endpoint_cumulative": f"{cum[-1]:.3f}",
        },
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Regenerate Fig. 3's series."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table(fmt="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
