"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`alpha_sweep` — the α trade-off: kept redundancy (storage cost)
  vs ingest throughput vs restore rate, α ∈ {0, 0.05, 0.1, 0.2, 0.5}.
  The paper fixes α = 0.1 and notes it "can be adjusted and controlled
  to trade off the spatial locality improvement and the sacrificed
  compression ratios"; this quantifies that trade-off.
* :func:`segment_ablation` — content-defined vs fixed segmenting.
* :func:`cache_ablation` — DDFS prefetch-cache capacity vs throughput
  decay (how much RAM merely *hides* de-linearization).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.dedup.pipeline import run_workload
from repro.experiments.common import (
    FigureResult,
    build_engine,
    build_resources,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency
from repro.metrics.storage import storage_summary
from repro.metrics.throughput import mean_throughput
from repro.restore.reader import RestoreReader
from repro.segmenting.segmenter import FixedSegmenter
from repro.workloads.generators import author_fs_20_full


DEFAULT_ALPHAS = (0.0, 0.05, 0.1, 0.2, 0.5)


def _author_jobs(config: ExperimentConfig):
    return author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )


def alpha_sweep(
    config: Optional[ExperimentConfig] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> FigureResult:
    """DeFrag across α values on the 20-generation author workload."""
    config = config if config is not None else ExperimentConfig.default()
    thr, kept, comp, restore = [], [], [], []
    for alpha in alphas:
        cfg = config.with_(alpha=alpha)
        res = build_resources(cfg)
        engine = build_engine("DeFrag", cfg, res)
        reports = run_workload(engine, _author_jobs(cfg), paper_segmenter())
        thr.append(mean_throughput(reports) / 1e6)
        kept.append(100.0 * (1.0 - cumulative_efficiency(reports)[-1]))
        comp.append(storage_summary(reports).compression_ratio)
        reader = RestoreReader(res.store, cache_containers=cfg.restore_cache_containers)
        restore.append(reader.restore(reports[-1].recipe).read_rate / 1e6)
    return FigureResult(
        figure="AblationAlpha",
        title="alpha sweep: locality gain vs compression sacrificed",
        x_label="alpha*100",
        x=[int(round(a * 100)) for a in alphas],
        series={
            "ingest MB/s": thr,
            "kept redund %": kept,
            "compression x": comp,
            "restore MB/s": restore,
        },
        notes={
            "reading": "alpha=0 is exact DDFS; larger alpha rewrites more "
            "(faster ingest+restore, lower compression)"
        },
    )


def segment_ablation(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Content-defined vs fixed segmenting under DeFrag."""
    config = config if config is not None else ExperimentConfig.default()
    results = {}
    for name, segmenter in (
        ("content-defined", paper_segmenter()),
        ("fixed-1MiB", FixedSegmenter()),
    ):
        res = build_resources(config)
        engine = build_engine("DeFrag", config, res)
        reports = run_workload(engine, _author_jobs(config), segmenter)
        results[name] = (
            mean_throughput(reports) / 1e6,
            100.0 * (1.0 - cumulative_efficiency(reports)[-1]),
            storage_summary(reports).compression_ratio,
        )
    names = list(results)
    return FigureResult(
        figure="AblationSegmenter",
        title="segmenting strategy under DeFrag",
        x_label="metric-idx",
        x=[0, 1, 2],
        series={name: list(results[name]) for name in names},
        notes={
            "rows": "0: ingest MB/s, 1: kept redundancy %, 2: compression x",
            "reading": "content-defined segments keep SPL groups aligned "
            "across generations; fixed segments drift with inserts",
        },
    )


def cache_ablation(
    config: Optional[ExperimentConfig] = None,
    cache_sizes: Sequence[int] = (4, 8, 12, 24, 48),
) -> FigureResult:
    """DDFS throughput decay vs prefetch-cache capacity."""
    config = config if config is not None else ExperimentConfig.default()
    first, last, ratio = [], [], []
    for cc in cache_sizes:
        cfg = config.with_(cache_containers=int(cc))
        res = build_resources(cfg)
        engine = build_engine("DDFS-Like", cfg, res)
        reports = run_workload(engine, _author_jobs(cfg), paper_segmenter())
        t = [r.throughput / 1e6 for r in reports]
        first.append(t[0])
        last.append(t[-1])
        ratio.append(t[0] / t[-1] if t[-1] else float("inf"))
    return FigureResult(
        figure="AblationCache",
        title="DDFS prefetch-cache capacity vs throughput decay",
        x_label="cache (containers)",
        x=[int(c) for c in cache_sizes],
        series={
            "gen1 MB/s": first,
            "genN MB/s": last,
            "decay x": ratio,
        },
        notes={
            "reading": "more cache postpones but does not remove the decay "
            "— the layout itself is what de-linearizes"
        },
    )
