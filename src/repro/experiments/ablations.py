"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`alpha_sweep` — the α trade-off: kept redundancy (storage cost)
  vs ingest throughput vs restore rate, α ∈ {0, 0.05, 0.1, 0.2, 0.5}.
  The paper fixes α = 0.1 and notes it "can be adjusted and controlled
  to trade off the spatial locality improvement and the sacrificed
  compression ratios"; this quantifies that trade-off.
* :func:`segment_ablation` — content-defined vs fixed segmenting.
* :func:`cache_ablation` — DDFS prefetch-cache capacity vs throughput
  decay (how much RAM merely *hides* de-linearization).

Grid decomposition: each sweep point (one α value, one segmenter kind,
one cache size) is an independent cell.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dedup.pipeline import run_workload
from repro.api import create_engine, create_reader, create_resources
from repro.experiments.common import (
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency
from repro.metrics.storage import storage_summary
from repro.metrics.throughput import mean_throughput
from repro.parallel import CellSpec, GridError, run_grid
from repro.segmenting.segmenter import FixedSegmenter
from repro.workloads.generators import author_fs_20_full


DEFAULT_ALPHAS = (0.0, 0.05, 0.1, 0.2, 0.5)

DEFAULT_CACHE_SIZES = (4, 8, 12, 24, 48)

_NAN = float("nan")


def _author_jobs(config: ExperimentConfig):
    return author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )


# ----------------------------------------------------------------------
# alpha sweep
# ----------------------------------------------------------------------


def alpha_cell(config: ExperimentConfig) -> Dict:
    """Grid cell: DeFrag at one α (the α is baked into ``config``)."""
    res = create_resources(config)
    engine = create_engine("DeFrag", config, res)
    reports = run_workload(engine, _author_jobs(config), paper_segmenter())
    reader = create_reader(res.store, config)
    return {
        "ingest_mbps": mean_throughput(reports) / 1e6,
        "kept_pct": 100.0 * (1.0 - cumulative_efficiency(reports)[-1]),
        "compression": storage_summary(reports).compression_ratio,
        "restore_mbps": reader.restore(reports[-1].recipe).read_rate / 1e6,
    }


def alpha_cells(
    config: ExperimentConfig, alphas: Sequence[float] = DEFAULT_ALPHAS
) -> List[CellSpec]:
    """One DeFrag cell per α point."""
    specs = []
    for alpha in alphas:
        cfg = config.with_(alpha=alpha)
        specs.append(
            CellSpec(
                key=("alpha", f"a{alpha:g}", config_fingerprint(cfg)),
                fn="repro.experiments.ablations:alpha_cell",
                config=cfg,
            )
        )
    return specs


def alpha_assemble(
    config: ExperimentConfig,
    results: Dict,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> FigureResult:
    specs = alpha_cells(config, alphas)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"alpha-sweep: every cell failed: {failures}")
    rows = [values.get(spec.key) for spec in specs]
    return FigureResult(
        figure="AblationAlpha",
        title="alpha sweep: locality gain vs compression sacrificed",
        x_label="alpha*100",
        x=[int(round(a * 100)) for a in alphas],
        series={
            "ingest MB/s": [r["ingest_mbps"] if r else _NAN for r in rows],
            "kept redund %": [r["kept_pct"] if r else _NAN for r in rows],
            "compression x": [r["compression"] if r else _NAN for r in rows],
            "restore MB/s": [r["restore_mbps"] if r else _NAN for r in rows],
        },
        notes={
            "reading": "alpha=0 is exact DDFS; larger alpha rewrites more "
            "(faster ingest+restore, lower compression)"
        },
        failures=failures,
    )


def alpha_sweep(
    config: Optional[ExperimentConfig] = None,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    *,
    jobs: int = 1,
) -> FigureResult:
    """DeFrag across α values on the 20-generation author workload."""
    config = config if config is not None else ExperimentConfig.default()
    results = run_grid(alpha_cells(config, alphas), jobs=jobs)
    return alpha_assemble(config, results, alphas)


# ----------------------------------------------------------------------
# segmenting strategy
# ----------------------------------------------------------------------

_SEGMENTER_KINDS = ("content-defined", "fixed-1MiB")


def segment_cell(config: ExperimentConfig, kind: str) -> Dict:
    """Grid cell: DeFrag under one segmenting strategy."""
    segmenter = paper_segmenter() if kind == "content-defined" else FixedSegmenter()
    res = create_resources(config)
    engine = create_engine("DeFrag", config, res)
    reports = run_workload(engine, _author_jobs(config), segmenter)
    return {
        "ingest_mbps": mean_throughput(reports) / 1e6,
        "kept_pct": 100.0 * (1.0 - cumulative_efficiency(reports)[-1]),
        "compression": storage_summary(reports).compression_ratio,
    }


def segment_cells(config: ExperimentConfig) -> List[CellSpec]:
    """One DeFrag cell per segmenting strategy."""
    return [
        CellSpec(
            key=("segmenter", kind, config_fingerprint(config)),
            fn="repro.experiments.ablations:segment_cell",
            config=config,
            kwargs={"kind": kind},
        )
        for kind in _SEGMENTER_KINDS
    ]


def segment_assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    specs = segment_cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"segment-ablation: every cell failed: {failures}")
    series = {}
    for spec in specs:
        payload = values.get(spec.key)
        series[spec.kwargs["kind"]] = (
            [payload["ingest_mbps"], payload["kept_pct"], payload["compression"]]
            if payload
            else [_NAN, _NAN, _NAN]
        )
    return FigureResult(
        figure="AblationSegmenter",
        title="segmenting strategy under DeFrag",
        x_label="metric-idx",
        x=[0, 1, 2],
        series=series,
        notes={
            "rows": "0: ingest MB/s, 1: kept redundancy %, 2: compression x",
            "reading": "content-defined segments keep SPL groups aligned "
            "across generations; fixed segments drift with inserts",
        },
        failures=failures,
    )


def segment_ablation(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Content-defined vs fixed segmenting under DeFrag."""
    config = config if config is not None else ExperimentConfig.default()
    return segment_assemble(config, run_grid(segment_cells(config), jobs=jobs))


# ----------------------------------------------------------------------
# prefetch-cache capacity
# ----------------------------------------------------------------------


def cache_cell(config: ExperimentConfig) -> Dict:
    """Grid cell: DDFS decay at one prefetch-cache capacity (baked into
    ``config.cache_containers``)."""
    res = create_resources(config)
    engine = create_engine("DDFS-Like", config, res)
    reports = run_workload(engine, _author_jobs(config), paper_segmenter())
    t = [r.throughput / 1e6 for r in reports]
    return {
        "first_mbps": t[0],
        "last_mbps": t[-1],
        "decay": t[0] / t[-1] if t[-1] else float("inf"),
    }


def cache_cells(
    config: ExperimentConfig, cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES
) -> List[CellSpec]:
    """One DDFS cell per cache capacity."""
    specs = []
    for cc in cache_sizes:
        cfg = config.with_(cache_containers=int(cc))
        specs.append(
            CellSpec(
                key=("cache", f"c{int(cc)}", config_fingerprint(cfg)),
                fn="repro.experiments.ablations:cache_cell",
                config=cfg,
            )
        )
    return specs


def cache_assemble(
    config: ExperimentConfig,
    results: Dict,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
) -> FigureResult:
    specs = cache_cells(config, cache_sizes)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"cache-ablation: every cell failed: {failures}")
    rows = [values.get(spec.key) for spec in specs]
    return FigureResult(
        figure="AblationCache",
        title="DDFS prefetch-cache capacity vs throughput decay",
        x_label="cache (containers)",
        x=[int(c) for c in cache_sizes],
        series={
            "gen1 MB/s": [r["first_mbps"] if r else _NAN for r in rows],
            "genN MB/s": [r["last_mbps"] if r else _NAN for r in rows],
            "decay x": [r["decay"] if r else _NAN for r in rows],
        },
        notes={
            "reading": "more cache postpones but does not remove the decay "
            "— the layout itself is what de-linearizes"
        },
        failures=failures,
    )


def cache_ablation(
    config: Optional[ExperimentConfig] = None,
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    *,
    jobs: int = 1,
) -> FigureResult:
    """DDFS throughput decay vs prefetch-cache capacity."""
    config = config if config is not None else ExperimentConfig.default()
    results = run_grid(cache_cells(config, cache_sizes), jobs=jobs)
    return cache_assemble(config, results, cache_sizes)
