"""Experiment configuration: scaling knobs and calibrated defaults.

The paper's datasets are hundreds of GB; the simulation reproduces their
*redundancy structure* at adjustable scale. Cache capacities are the one
thing that must scale with the data (a cache that covers the whole store
hides every locality effect), so the config owns them alongside the
workload sizes.

Calibration notes (see EXPERIMENTS.md for measured outcomes):

* disk: 8 ms positioning / 300 MB/s streaming — a circa-2012 backup
  appliance's RAID; makes generation-1 ingest land near the paper's
  ~200 MB/s scale.
* DDFS prefetch cache: 12 container sections against a ≥16-container
  working set per generation — same "cache ≪ store" regime as the real
  647 GB vs ~1 GiB cache setup.
* churn: ~5% of files edited per full-backup generation inside a stable
  30% hot set; incremental runs use heavier churn so incrementals have
  realistic volume.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro._util import MIB
from repro.sharding.config import ShardConfig
from repro.storage.disk import DiskProfile
from repro.storage.store import StoreConfig
from repro.workloads.fs_model import ChurnProfile

#: The simulated backup appliance disk used by all recorded experiments.
APPLIANCE_2012 = DiskProfile(name="appliance-2012", seek_time_s=8e-3, seq_bandwidth=300e6)


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of a figure run.

    Attributes:
        seed: workload determinism seed.
        fs_bytes: single-user FS size (Fig. 2/3 workloads).
        n_generations: generations for the 20-generation figures.
        per_user_bytes: per-student FS size (Fig. 4/5/6 workload).
        n_users / n_backups: group workload shape (5 users, 66 backups).
        alpha: DeFrag's SPL threshold (paper: 0.1).
        disk: disk profile.
        container_bytes: container payload capacity (DDFS-style 4 MiB).
        cache_containers: DDFS/DeFrag prefetch-cache capacity.
        silo_block_bytes / silo_cache_blocks: SiLo block sizing.
        silo_similarity_capacity: SiLo's bounded RAM similarity-index
            size in representatives (its fixed RAM budget, scaled to the
            simulated data size the way SiLo's RAM scales to real TBs).
        prefetch_ahead: container metadata sections streamed per index
            hit (DDFS read-ahead on the sequential container log).
        index_page_cache_pages: RAM page cache of the on-disk index.
        bloom_capacity / bloom_fp_rate: summary-vector sizing.
        restore_cache_containers: restore reader's container cache.
        churn_full / churn_incremental: churn profiles per workload kind.
        incremental_file_bytes: avg file size for the incremental
            workload (larger files keep segment reps stable, as real
            mailbox/log-style data does).
    """

    seed: int = 2012
    fs_bytes: int = 128 * MIB
    n_generations: int = 20
    per_user_bytes: int = 96 * MIB
    n_users: int = 5
    n_backups: int = 66
    alpha: float = 0.1
    disk: DiskProfile = APPLIANCE_2012
    container_bytes: int = 4 * MIB
    cache_containers: int = 24
    prefetch_ahead: int = 4
    silo_block_bytes: int = 8 * MIB
    silo_cache_blocks: int = 8
    silo_similarity_capacity: int = 448
    index_page_cache_pages: int = 16
    bloom_capacity: int = 4_000_000
    bloom_fp_rate: float = 0.01
    restore_cache_containers: int = 8
    #: restore-cache eviction policy: 'lru' (default, the recorded
    #: figures' behaviour), 'lfu', or 'belady' (the offline upper bound)
    restore_policy: str = "lru"
    #: forward-assembly-area window in chunks (0 = off: run-at-a-time
    #: restore, the recorded figures' behaviour)
    restore_faa_window: int = 0
    #: batch adjacent container reads into one priced positioning
    restore_readahead: bool = False
    churn_full: ChurnProfile = field(
        default_factory=lambda: ChurnProfile(
            modify_frac=0.06,
            edits_per_file_mean=6.0,
            edit_run_mean=1.3,
            hot_fraction=0.3,
            file_move_frac=0.04,
        )
    )
    churn_incremental: ChurnProfile = field(
        default_factory=lambda: ChurnProfile(
            modify_frac=0.10,
            edits_per_file_mean=4.0,
            hot_fraction=0.3,
            file_move_frac=0.04,
        )
    )
    incremental_file_bytes: int = 2 * MIB
    #: engines resolve each segment's fingerprint vector as one batch
    #: (the vectorized ingest path); False replays the scalar
    #: chunk-at-a-time reference ladder — results are byte-identical,
    #: only wall-clock differs (the bench harness A/Bs this switch)
    batch: bool = True
    #: feed the group workload through the byte-level ingest path:
    #: per-generation buffers are materialized from the churn model,
    #: CDC-chunked by the Gear skip-then-scan fast path, and batch
    #: fingerprinted (bytes -> CDC -> fingerprint -> engine ->
    #: containers). False keeps the chunk-level streams the recorded
    #: figures were measured with.
    byte_level: bool = False
    #: explicit container-log configuration (durability journal, retry
    #: policy, cache sizes). None keeps the experiment convention:
    #: append-only log (seal_seeks=0), ``container_bytes`` capacity,
    #: ``restore_cache_containers`` reader cache, no journal — exactly
    #: what the recorded figures were measured with.
    store: Optional[StoreConfig] = None
    #: shard the on-disk fingerprint index: ``None`` keeps the classic
    #: single :class:`~repro.index.full_index.DiskChunkIndex` (the
    #: recorded figures' substrate); a :class:`~repro.sharding.config
    #: .ShardConfig` routes it through ``repro.sharding`` — with
    #: ``n_shards=1`` the wrapper drives one identically-sized shard
    #: verbatim, byte-identical to ``None`` on every experiment (the
    #: bench gate pins this)
    shard: Optional[ShardConfig] = None
    #: inline fingerprint-cache budget (chunks) shared by all tenants in
    #: the ``tenants`` experiment — the HPDedup contention point; sized
    #: well below the tenants' combined working set so allocation policy
    #: matters
    tenant_cache_chunks: int = 4096
    #: hybrid engine: bounded inline RAM fingerprint cache, in chunks
    #: (the engine's *only* inline dedup structure; sized well below a
    #: generation's chunk count so deferred dedup has work to do)
    hybrid_cache_chunks: int = 16384
    #: maintenance engines (RevDedup, Hybrid): containers whose live
    #: fraction falls strictly below this are compacted by the
    #: out-of-line pass
    maintenance_min_utilization: float = 0.5
    #: also run the maintenance-phase engines (RevDedup, Hybrid) in
    #: fig4/fig6 and the restore ablation; False keeps the recorded
    #: figures' engine set (and their committed golden tables)
    extended_engines: bool = False

    # -- scale presets --------------------------------------------------

    @classmethod
    def small(cls) -> "ExperimentConfig":
        """Seconds-fast scale for tests and CI (cache ratios preserved)."""
        return cls(
            fs_bytes=16 * MIB,
            n_generations=8,
            per_user_bytes=12 * MIB,
            n_backups=15,
            cache_containers=4,
            prefetch_ahead=2,
            silo_cache_blocks=3,
            silo_similarity_capacity=56,
            restore_cache_containers=4,
            hybrid_cache_chunks=1024,
            tenant_cache_chunks=512,
        )

    @classmethod
    def default(cls) -> "ExperimentConfig":
        """The recorded scale (EXPERIMENTS.md numbers)."""
        return cls()

    @classmethod
    def large(cls) -> "ExperimentConfig":
        """Patient scale: ~3x data per user, same cache *ratios*."""
        return cls(
            fs_bytes=384 * MIB,
            per_user_bytes=256 * MIB,
            cache_containers=64,
            silo_cache_blocks=24,
            silo_similarity_capacity=1200,
            restore_cache_containers=24,
            hybrid_cache_chunks=32768,
            tenant_cache_chunks=8192,
        )

    @classmethod
    def xlarge(cls) -> "ExperimentConfig":
        """Out-of-core scale: ≥10 GB simulated across multiple users and
        ≥20 generations. Only runnable in bounded RSS with the spill
        store (``repro bench --memory`` / ``python -m repro.memory``);
        cache *ratios* match the recorded scales so locality effects
        survive the scale-up."""
        return cls(
            fs_bytes=1024 * MIB,
            n_generations=24,
            per_user_bytes=512 * MIB,
            n_users=4,
            n_backups=22,
            cache_containers=128,
            prefetch_ahead=4,
            silo_cache_blocks=48,
            silo_similarity_capacity=2400,
            index_page_cache_pages=64,
            bloom_capacity=16_000_000,
            restore_cache_containers=48,
            hybrid_cache_chunks=65536,
        )

    @classmethod
    def by_name(cls, name: str) -> "ExperimentConfig":
        """Resolve a preset by name (see :data:`SCALE_NAMES`)."""
        if name not in SCALE_NAMES:
            raise ValueError(
                f"unknown scale {name!r}; pick one of {list(SCALE_NAMES)}"
            )
        return getattr(cls, name)()

    def with_(self, **changes) -> "ExperimentConfig":
        """Dataclass replace, fluently."""
        return replace(self, **changes)


#: The single scale-preset registry, cheapest first. Each name is an
#: :class:`ExperimentConfig` classmethod; the CLI's ``--scale`` choices
#: and :meth:`ExperimentConfig.by_name` both derive from this tuple, so
#: a new preset cannot reach one and silently miss the other.
SCALE_NAMES: Tuple[str, ...] = ("small", "default", "large", "xlarge")
