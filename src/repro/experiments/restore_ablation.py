"""Restore ablation: cache policy × cache size × FAA window, per engine.

Fig. 6 reports the restore rate under the default reader (LRU,
run-at-a-time). This grid asks how much of the restore cost is the
*reader's* to win back, independent of placement: for each engine's own
layout (DeFrag's α-rewritten log vs DDFS-Like's fully deduplicated one)
it sweeps the pluggable cache policies (LRU / LFU / the Belady offline
upper bound), the client cache size, and the forward-assembly window
(read-ahead rides along whenever the FAA is on), reporting priced
positionings and the resulting restore rate for the final — most
fragmented — generation.

Grid decomposition: one ingest cell per (engine, policy); the cheap
(cache size × FAA window) restore sweep happens inside the cell against
that one ingested store.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import create_engine, create_resources, engine_info
from repro.dedup.pipeline import run_workload, run_workload_with_maintenance
from repro.experiments.common import (
    MAINTENANCE_ENGINE_NAMES,
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid
from repro.restore.cache import RESTORE_POLICIES
from repro.restore.reader import RestoreReader
from repro.workloads.generators import author_fs_20_full

#: the engines whose layouts the sweep restores from, in series order
ENGINES = ("DeFrag", "DDFS-Like")


def _engines(config: ExperimentConfig):
    """The default pair, plus the maintenance-phase engines' layouts
    when ``config.extended_engines`` is on."""
    if config.extended_engines:
        return ENGINES + MAINTENANCE_ENGINE_NAMES
    return ENGINES

#: client cache capacities swept (containers)
DEFAULT_CACHE_SIZES: Tuple[int, ...] = (4, 16)

#: forward-assembly windows swept (chunks; 0 = FAA off, run-at-a-time).
#: Read-ahead is enabled exactly when the FAA is on — the assembly
#: window is what makes batched sequential fetches safe to schedule.
DEFAULT_FAA_WINDOWS: Tuple[int, ...] = (0, 2048)

_NAN = float("nan")


def sweep_combos(
    cache_sizes: Sequence[int] = DEFAULT_CACHE_SIZES,
    faa_windows: Sequence[int] = DEFAULT_FAA_WINDOWS,
) -> List[Tuple[int, int]]:
    """The in-cell (cache size, FAA window) grid, in report order."""
    return [(int(c), int(w)) for c in cache_sizes for w in faa_windows]


def restore_sweep_cell(config: ExperimentConfig, engine: str, policy: str) -> Dict:
    """Grid cell: ingest the author workload through one engine once,
    then restore the final generation under every (cache size, FAA
    window) combo with the given cache policy."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    jobs = author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )
    if engine_info(engine).supports_maintenance:
        reports = run_workload_with_maintenance(eng, jobs, paper_segmenter())
    else:
        reports = run_workload(eng, jobs, paper_segmenter())
    recipe = reports[-1].recipe
    rows = []
    for cache, window in sweep_combos():
        reader = RestoreReader(
            res.store,
            config=replace(res.store.config, cache_containers=cache),
            policy=policy,
            faa_window=window,
            readahead=window > 0,
        )
        rr = reader.restore(recipe)
        rows.append(
            {
                "cache": cache,
                "faa_window": window,
                "seeks": rr.seeks,
                "container_reads": rr.container_reads,
                "cache_misses": rr.cache_misses,
                "rate_mbps": rr.read_rate / 1e6,
            }
        )
    return {"rows": rows}


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """One ingest+sweep cell per (engine, policy)."""
    return [
        CellSpec(
            key=("restore-ablation", engine, policy, config_fingerprint(config)),
            fn="repro.experiments.restore_ablation:restore_sweep_cell",
            config=config,
            kwargs={"engine": engine, "policy": policy},
        )
        for engine in _engines(config)
        for policy in RESTORE_POLICIES
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild the ablation table from grid cell payloads."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"restore-ablation: every cell failed: {failures}")
    combos = sweep_combos()
    nan_rows = [_NAN] * len(combos)
    series: Dict[str, List[float]] = {}
    rates: Dict[str, List[float]] = {}
    for spec in specs:
        engine, policy = spec.kwargs["engine"], spec.kwargs["policy"]
        short = "DDFS" if engine == "DDFS-Like" else engine
        payload = values.get(spec.key)
        if payload is None:
            series[f"{short}/{policy} seeks"] = list(nan_rows)
            rates[f"{short}/{policy} MB/s"] = list(nan_rows)
        else:
            series[f"{short}/{policy} seeks"] = [
                float(r["seeks"]) for r in payload["rows"]
            ]
            rates[f"{short}/{policy} MB/s"] = [
                float(r["rate_mbps"]) for r in payload["rows"]
            ]
    series.update(rates)
    notes = {
        "combos": "; ".join(
            f"{i}: cache={c} faa_window={w}" for i, (c, w) in enumerate(combos)
        ),
        "reading": "belady is the offline upper bound (fewest misses); "
        "faa_window>0 enables forward assembly + sequential read-ahead "
        "(seeks < container reads); restore of the final generation",
    }
    return FigureResult(
        figure="AblationRestore",
        title="restore policy x cache size x FAA window (final generation)",
        x_label="combo",
        x=list(range(len(combos))),
        series=series,
        notes=notes,
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Run the restore ablation grid."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
