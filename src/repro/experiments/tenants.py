"""The multi-tenant inline-cache allocation experiment (HPDedup effect).

HPDedup (arXiv:1702.08153) observes that when concurrent backup streams
share one bounded inline fingerprint cache, a *global* LRU lets a
low-locality tenant pollute the budget: its never-repeating
fingerprints evict the other tenants' working sets, so the aggregate
inline dedup ratio collapses. Allocating the budget *per tenant,
proportionally to measured locality* (prioritized allocation) restores
it.

This experiment reproduces that effect on the repo's substrate: three
tenants with deliberately skewed locality —

====== ==============================================================
tenant stream
====== ==============================================================
alpha  high locality: full backups of a slowly-churning FS (most
       chunks repeat generation over generation)
beta   medium locality: same shape, heavier churn
gamma  the polluter: a *fresh* file system every generation — its
       fingerprints never repeat, every cache entry it takes is wasted
====== ==============================================================

— are multiplexed through the sharded ingest front-end
(:class:`~repro.sharding.frontend.IngestFrontend`) in ``cache_only``
mode, where an inline-cache miss is final: the chunk is written and its
dedup deferred to an out-of-line pass. The inline dedup percentage
(bytes removed inline / logical bytes) therefore directly measures
allocation quality. One column per policy; rows are the three tenants
plus the aggregate. The headline note verifies the HPDedup claim:
**prioritized allocation strictly beats the global LRU on total inline
dedup** for this skewed mix.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    FigureResult,
    cell_values,
    config_fingerprint,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid
from repro.workloads.generators import derive, single_user_stream

#: allocation policies compared, in column order
POLICIES = ("global-lru", "prioritized")

#: row legend: three skewed tenants, then the aggregate
TENANTS = ("alpha", "beta", "gamma")
ROWS = TENANTS + ("TOTAL",)


def _tenant_streams(config: ExperimentConfig):
    """The skewed mix, derived from the config scale.

    ``alpha``/``beta`` are ``fs_bytes/16`` file systems backed up in
    full every generation (alpha with gentle churn, beta with heavy
    churn) — sized so their working sets fit a *fair share* of the
    inline cache but not the slice a polluted global LRU leaves them;
    ``gamma`` is ``fs_bytes/4`` of *fresh* data per generation (a new
    FS seeded per generation), so it floods the shared cache with
    fingerprints that never pay off.
    """
    from repro.sharding import TenantStream
    from repro.workloads.fs_model import ChurnProfile

    n_gens = config.n_generations
    small_fs = max(config.fs_bytes // 16, 1 << 20)
    big_fs = max(config.fs_bytes // 4, 1 << 21)
    alpha = list(
        single_user_stream(
            n_generations=n_gens,
            fs_bytes=small_fs,
            seed=derive(config.seed, "tenant-alpha"),
            churn=ChurnProfile(modify_frac=0.04, file_create_frac=0.005),
            label="alpha",
        )
    )
    beta = list(
        single_user_stream(
            n_generations=n_gens,
            fs_bytes=small_fs,
            seed=derive(config.seed, "tenant-beta"),
            churn=ChurnProfile(
                modify_frac=0.30, file_rewrite_frac=0.08, file_create_frac=0.03
            ),
            label="beta",
        )
    )
    gamma = []
    for gen in range(n_gens):
        job = next(
            iter(
                single_user_stream(
                    n_generations=1,
                    fs_bytes=big_fs,
                    seed=derive(config.seed, f"tenant-gamma-{gen}"),
                    label="gamma",
                )
            )
        )
        gamma.append(job._replace(generation=gen))
    return [
        TenantStream("alpha", alpha),
        TenantStream("beta", beta),
        TenantStream("gamma", gamma),
    ]


def _make_allocator(policy: str, capacity: int):
    from repro.sharding import GlobalLRUAllocator, PrioritizedAllocator

    if policy == "global-lru":
        return GlobalLRUAllocator(capacity)
    if policy == "prioritized":
        # a tight rebalance window so locality estimates settle within
        # the first generation round even at the small scale
        return PrioritizedAllocator(capacity, rebalance_every=256)
    raise ValueError(f"unknown allocation policy: {policy!r}")


def tenants_cell(config: ExperimentConfig, policy: str) -> Dict:
    """Grid cell: the full skewed mix under one allocation policy.

    Returns the per-tenant inline dedup percentages (plus the
    aggregate), cache hit rates, and the final cache shares.
    """
    from repro.sharding import IngestFrontend, ShardedChunkIndex, TenantStoreSet
    from repro.storage.disk import DiskModel
    from repro.storage.store import StoreConfig

    n_shards = config.shard.n_shards if config.shard is not None else 2
    disk = DiskModel(profile=config.disk)
    index = ShardedChunkIndex.create(
        disk,
        n_shards=n_shards,
        expected_entries=config.bloom_capacity,
        page_cache_pages=config.index_page_cache_pages,
    )
    stores = TenantStoreSet(
        disk,
        StoreConfig(
            container_bytes=config.container_bytes,
            seal_seeks=0,
            cache_containers=config.restore_cache_containers,
        ),
    )
    frontend = IngestFrontend(
        index,
        stores,
        _make_allocator(policy, config.tenant_cache_chunks),
        cache_only=True,
        batch_chunks=128,
    )
    reports = frontend.run(_tenant_streams(config))

    logical = sum(r.logical_bytes for r in reports.values())
    removed = sum(r.removed_bytes for r in reports.values())
    rows = [reports[t].inline_dedup_pct for t in TENANTS]
    rows.append(100.0 * removed / max(logical, 1))
    return {
        "row": rows,
        "hit_rate": {
            t: reports[t].cache_hits / max(reports[t].cache_lookups, 1)
            for t in TENANTS
        },
        "shares": dict(frontend.allocator.shares()),
        "n_shards": n_shards,
        "logical_bytes": logical,
    }


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The tenants grid: one mix run per allocation policy."""
    return [
        CellSpec(
            key=("tenants", policy, config_fingerprint(config)),
            fn="repro.experiments.tenants:tenants_cell",
            config=config,
            kwargs={"policy": policy},
        )
        for policy in POLICIES
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild the tenants table from grid cell payloads."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"tenants: every cell failed: {failures}")
    nan = [float("nan")] * len(ROWS)
    series = {}
    for spec in specs:
        payload = values.get(spec.key)
        series[spec.kwargs["policy"]] = (
            list(payload["row"]) if payload else list(nan)
        )
    notes = {
        "rows": "; ".join(
            f"{i + 1}: {name}" for i, name in enumerate(ROWS)
        )
        + " (inline dedup %, cache_only)",
    }
    glob, prio = series.get("global-lru"), series.get("prioritized")
    if glob is not None and prio is not None:
        total = len(ROWS) - 1
        notes["prioritized_total_gt_global"] = (
            f"{prio[total]:.2f} > {glob[total]:.2f}: {prio[total] > glob[total]}"
        )
    return FigureResult(
        figure="Tenants",
        title="inline dedup % by cache allocation policy (HPDedup effect)",
        x_label="tenant-idx",
        x=list(range(1, len(ROWS) + 1)),
        series=series,
        notes=notes,
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Produce the multi-tenant allocation table."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
