"""Extension experiments beyond the paper's figures.

* :func:`related_work_comparison` — all selective/near-exact schemes the
  paper discusses, side by side on one workload: DeFrag (SPL rewrites),
  iDedup (sequence-length rewrites), SiLo (similarity near-exact),
  SparseIndex (sample near-exact), DDFS (exact, locality-cached).
* :func:`gc_study` — how much of DeFrag's compression sacrifice is
  reclaimable: ingest with rewrites, expire old generations, run the
  garbage collector, and measure space and restore rate before/after.

Grid decomposition: one cell per engine for the comparison; the GC
study is a single cell (ingest → expire → collect is one pipeline over
one live store).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dedup.pipeline import run_workload
from repro.api import create_engine, create_resources
from repro.experiments.common import (
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import cumulative_efficiency
from repro.metrics.storage import storage_summary
from repro.metrics.throughput import mean_throughput
from repro.parallel import CellSpec, GridError, run_grid
from repro.restore.reader import RestoreReader
from repro.storage.gc import GarbageCollector
from repro.workloads.generators import author_fs_20_full

DEFAULT_RELATED_ENGINES = ("DDFS-Like", "SiLo-Like", "SparseIndex", "iDedup", "DeFrag")

_NAN = float("nan")


def _author_jobs(config: ExperimentConfig):
    return author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )


# ----------------------------------------------------------------------
# related-work comparison
# ----------------------------------------------------------------------


def related_cell(config: ExperimentConfig, engine: str) -> Dict:
    """Grid cell: one engine's full scorecard on the author workload."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    reports = run_workload(eng, _author_jobs(config), paper_segmenter())
    restore = RestoreReader(res.store).restore(reports[-1].recipe)
    return {
        "row": [
            mean_throughput(reports) / 1e6,
            cumulative_efficiency(reports)[-1],
            storage_summary(reports).compression_ratio,
            restore.read_rate / 1e6,
        ]
    }


def related_cells(
    config: ExperimentConfig,
    engines: Sequence[str] = DEFAULT_RELATED_ENGINES,
) -> List[CellSpec]:
    """One scorecard cell per engine."""
    return [
        CellSpec(
            key=("relwork", engine, config_fingerprint(config)),
            fn="repro.experiments.extensions:related_cell",
            config=config,
            kwargs={"engine": engine},
        )
        for engine in engines
    ]


def related_assemble(
    config: ExperimentConfig,
    results: Dict,
    engines: Sequence[str] = DEFAULT_RELATED_ENGINES,
) -> FigureResult:
    specs = related_cells(config, engines)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"related-work: every cell failed: {failures}")
    series = {}
    for spec in specs:
        payload = values.get(spec.key)
        series[spec.kwargs["engine"]] = (
            list(payload["row"]) if payload else [_NAN] * 4
        )
    return FigureResult(
        figure="ExtRelatedWork",
        title="selective & near-exact schemes, one substrate",
        x_label="metric-idx",
        x=[0, 1, 2, 3],
        series=series,
        notes={
            "rows": "0: ingest MB/s, 1: efficiency, 2: compression x, 3: restore MB/s",
        },
        failures=failures,
    )


def related_work_comparison(
    config: Optional[ExperimentConfig] = None,
    engines: Sequence[str] = DEFAULT_RELATED_ENGINES,
    *,
    jobs: int = 1,
) -> FigureResult:
    """One row per engine: ingest rate, efficiency, compression, restore."""
    config = config if config is not None else ExperimentConfig.default()
    results = run_grid(related_cells(config, engines), jobs=jobs)
    return related_assemble(config, results, engines)


# ----------------------------------------------------------------------
# garbage-collection study
# ----------------------------------------------------------------------


def gc_cell(
    config: ExperimentConfig,
    retain_last: int = 4,
    min_utilization: float = 0.7,
) -> Dict:
    """Grid cell: the whole ingest → expire → collect → re-restore
    pipeline (one live store end to end)."""
    res = create_resources(config)
    engine = create_engine("DeFrag", config, res)
    reports = run_workload(engine, _author_jobs(config), paper_segmenter())

    retained = [r.recipe for r in reports[-retain_last:]]
    reader = RestoreReader(res.store)
    rate_before = reader.restore(retained[-1]).read_rate / 1e6
    physical_before = res.store.stats.physical_bytes

    gc = GarbageCollector(res.store, index=res.index)
    report, remapped = gc.collect(retained, min_utilization=min_utilization)

    rate_after = reader.restore(remapped[-1]).read_rate / 1e6
    physical_after = res.store.stats.physical_bytes
    return {
        "values": [
            physical_before / 2**20,
            physical_after / 2**20,
            report.bytes_reclaimed / 2**20,
            report.utilization_before,
            report.utilization_after,
            rate_after / max(rate_before, 1e-9),
        ],
        "collected": f"{report.containers_collected}/{report.containers_examined} containers",
    }


def gc_cells(
    config: ExperimentConfig,
    retain_last: int = 4,
    min_utilization: float = 0.7,
) -> List[CellSpec]:
    """The study's grid: a single end-to-end cell."""
    return [
        CellSpec(
            key=("gc", f"r{retain_last}", f"u{min_utilization:g}", config_fingerprint(config)),
            fn="repro.experiments.extensions:gc_cell",
            config=config,
            kwargs={"retain_last": retain_last, "min_utilization": min_utilization},
        )
    ]


def gc_assemble(
    config: ExperimentConfig,
    results: Dict,
    retain_last: int = 4,
    min_utilization: float = 0.7,
) -> FigureResult:
    specs = gc_cells(config, retain_last, min_utilization)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"gc-study: every cell failed: {failures}")
    payload = values[specs[0].key]
    return FigureResult(
        figure="ExtGC",
        title=f"garbage collection after expiring to last {retain_last} backups",
        x_label="metric-idx",
        x=[0, 1, 2, 3, 4, 5],
        series={"value": list(payload["values"])},
        notes={
            "rows": "0: MiB before, 1: MiB after, 2: MiB reclaimed, "
            "3: utilization before, 4: utilization after, "
            "5: restore-rate ratio after/before",
            "collected": payload["collected"],
        },
        failures=failures,
    )


def gc_study(
    config: Optional[ExperimentConfig] = None,
    retain_last: int = 4,
    min_utilization: float = 0.7,
    *,
    jobs: int = 1,
) -> FigureResult:
    """Expire all but the last ``retain_last`` backups and collect.

    Shows that DeFrag's rewrite overhead is largely *transient*: once old
    generations expire, the superseded copies sit in low-utilization
    containers that compaction reclaims, and the surviving backups
    restore at least as fast afterwards.
    """
    config = config if config is not None else ExperimentConfig.default()
    results = run_grid(
        gc_cells(config, retain_last, min_utilization), jobs=jobs
    )
    return gc_assemble(config, results, retain_last, min_utilization)
