"""Fig. 4 — deduplication throughput: DeFrag vs DDFS-Like vs SiLo-Like.

Paper: over 66 backups from five users' file systems (α = 0.1), DDFS's
throughput is much lower than DeFrag's; DeFrag is comparable to SiLo and
beats it on generations with very good stream locality (1–5, 41–42)
because one container prefetch then serves a long run of duplicates,
while SiLo still pays similarity-driven block fetches.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, run_group_workload
from repro.experiments.config import ExperimentConfig
from repro.metrics.throughput import throughput_series


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 4's series (three engines, shared workload)."""
    config = config if config is not None else ExperimentConfig.default()
    runs = run_group_workload(config, ("DeFrag", "DDFS-Like", "SiLo-Like"))
    series = {
        name: [t / 1e6 for t in throughput_series(reports)]
        for name, (_res, reports) in runs.items()
    }
    any_reports = next(iter(runs.values()))[1]
    defrag = series["DeFrag"]
    ddfs = series["DDFS-Like"]
    silo = series["SiLo-Like"]
    n = len(defrag)
    wins_over_silo = sum(1 for d, s in zip(defrag, silo) if d > s)
    return FigureResult(
        figure="Fig4",
        title="Deduplication throughput comparison (alpha=%.2f)" % config.alpha,
        x_label="generation",
        x=[r.generation + 1 for r in any_reports],
        series=series,
        notes={
            "paper": "DDFS well below DeFrag; DeFrag comparable to SiLo, "
            "ahead when stream locality is very good",
            "mean_MBps": "DeFrag=%.0f DDFS=%.0f SiLo=%.0f"
            % (sum(defrag) / n, sum(ddfs) / n, sum(silo) / n),
            "defrag_gens_above_silo": f"{wins_over_silo}/{n}",
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
