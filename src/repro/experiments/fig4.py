"""Fig. 4 — deduplication throughput: DeFrag vs DDFS-Like vs SiLo-Like.

Paper: over 66 backups from five users' file systems (α = 0.1), DDFS's
throughput is much lower than DeFrag's; DeFrag is comparable to SiLo and
beats it on generations with very good stream locality (1–5, 41–42)
because one container prefetch then serves a long run of duplicates,
while SiLo still pays similarity-driven block fetches.

Grid decomposition: one cell per engine over the shared group workload
(``common.group_cell``); cells are keyed so fig5's DeFrag/SiLo cells
deduplicate against these in a combined ``repro all`` grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    MAINTENANCE_ENGINE_NAMES,
    FigureResult,
    cell_values,
    group_cell_spec,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid

#: the three engines Fig. 4 compares, in series order
ENGINES = ("DeFrag", "DDFS-Like", "SiLo-Like")


def _engines(config: ExperimentConfig):
    """The figure's engine set: the paper's three, plus the
    maintenance-phase engines when ``config.extended_engines`` is on."""
    if config.extended_engines:
        return ENGINES + MAINTENANCE_ENGINE_NAMES
    return ENGINES


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The figure's grid: one group-workload cell per engine."""
    return [group_cell_spec(config, engine) for engine in _engines(config)]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild Fig. 4 from grid cell payloads (failed cells go NaN)."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    by_engine = {
        spec.kwargs["engine"]: values.get(spec.key) for spec in specs
    }
    ok = {name: v for name, v in by_engine.items() if v is not None}
    if not ok:
        raise GridError(f"fig4: every cell failed: {failures}")
    generations = next(iter(ok.values()))["generations"]
    n = len(generations)
    series = {
        name: (
            [t / 1e6 for t in by_engine[name]["throughput_bps"]]
            if by_engine[name] is not None
            else [float("nan")] * n
        )
        for name in _engines(config)
    }
    defrag = series["DeFrag"]
    ddfs = series["DDFS-Like"]
    silo = series["SiLo-Like"]
    wins_over_silo = sum(1 for d, s in zip(defrag, silo) if d > s)
    notes = {
        "paper": "DDFS well below DeFrag; DeFrag comparable to SiLo, "
        "ahead when stream locality is very good",
        "mean_MBps": "DeFrag=%.0f DDFS=%.0f SiLo=%.0f"
        % (sum(defrag) / n, sum(ddfs) / n, sum(silo) / n),
        "defrag_gens_above_silo": f"{wins_over_silo}/{n}",
    }
    if config.extended_engines:
        ext = [n_ for n_ in MAINTENANCE_ENGINE_NAMES if series.get(n_)]
        notes["extended_mean_MBps"] = " ".join(
            "%s=%.0f" % (n_, sum(series[n_]) / n) for n_ in ext
        )
    if config.byte_level:
        notes["input"] = (
            "byte-level ingest: generated buffers -> Gear skip-then-scan "
            "CDC -> batch fingerprint -> engines"
        )
    return FigureResult(
        figure="Fig4",
        title="Deduplication throughput comparison (alpha=%.2f)%s"
        % (config.alpha, " [bytes]" if config.byte_level else ""),
        x_label="generation",
        x=list(generations),
        series=series,
        notes=notes,
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Regenerate Fig. 4's series (three engines, shared workload)."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
