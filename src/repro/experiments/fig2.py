"""Fig. 2 — degradation of DDFS-like deduplication throughput.

Paper: average throughput over 20 full backup generations of one
author's ~647 GB file system falls from 213 MB/s (gen 1) to 110 MB/s
(gen 20) as accumulated deduplication de-linearizes placement and decays
duplicate locality.

This harness ingests the scaled ``author_fs_20_full`` workload through
the DDFS-like engine and reports the same series (simulated MB/s per
generation), plus the mechanism observable: cache hits bought per
container prefetch.

Grid decomposition: a single cell (one engine, one workload).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.dedup.pipeline import run_workload
from repro.api import create_engine, create_resources
from repro.experiments.common import (
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.fragmentation import locality_series
from repro.metrics.throughput import throughput_series
from repro.parallel import CellSpec, GridError, run_grid
from repro.workloads.generators import author_fs_20_full


def author_full_cell(config: ExperimentConfig, engine: str = "DDFS-Like") -> Dict:
    """Grid cell: one engine over the 20-generation full-backup author
    workload; returns the throughput and locality series Fig. 2 plots."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    jobs = author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )
    reports = run_workload(eng, jobs, paper_segmenter())
    return {
        "generations": [r.generation + 1 for r in reports],
        "mbps": [t / 1e6 for t in throughput_series(reports)],
        "hits_per_prefetch": [float(v) for v in locality_series(reports)],
    }


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The figure's grid: one DDFS cell over the author workload."""
    return [
        CellSpec(
            key=("fig2", "DDFS-Like", config_fingerprint(config)),
            fn="repro.experiments.fig2:author_full_cell",
            config=config,
            kwargs={"engine": "DDFS-Like"},
        )
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild Fig. 2 from its (single) grid cell."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"fig2: every cell failed: {failures}")
    payload = values[specs[0].key]
    thr = payload["mbps"]
    return FigureResult(
        figure="Fig2",
        title="Degradation of deduplication throughput (DDFS-Like)",
        x_label="generation",
        x=list(payload["generations"]),
        series={
            "MB/s": thr,
            "hits/prefetch": payload["hits_per_prefetch"],
        },
        notes={
            "paper": "213 MB/s (gen 1) -> 110 MB/s (gen 20), monotone decay",
            "claim": "throughput decays with generations as duplicate locality weakens",
            "decay_ratio_measured": f"{thr[0] / thr[-1]:.2f}x" if thr[-1] else "inf",
        },
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Regenerate Fig. 2's series."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
