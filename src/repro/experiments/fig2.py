"""Fig. 2 — degradation of DDFS-like deduplication throughput.

Paper: average throughput over 20 full backup generations of one
author's ~647 GB file system falls from 213 MB/s (gen 1) to 110 MB/s
(gen 20) as accumulated deduplication de-linearizes placement and decays
duplicate locality.

This harness ingests the scaled ``author_fs_20_full`` workload through
the DDFS-like engine and reports the same series (simulated MB/s per
generation), plus the mechanism observable: cache hits bought per
container prefetch.
"""

from __future__ import annotations

from typing import Optional

from repro.dedup.pipeline import run_workload
from repro.experiments.common import FigureResult, build_engine, build_resources, paper_segmenter
from repro.experiments.config import ExperimentConfig
from repro.metrics.fragmentation import locality_series
from repro.metrics.throughput import throughput_series
from repro.workloads.generators import author_fs_20_full


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 2's series."""
    config = config if config is not None else ExperimentConfig.default()
    res = build_resources(config)
    engine = build_engine("DDFS-Like", config, res)
    jobs = author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )
    reports = run_workload(engine, jobs, paper_segmenter())
    thr = [t / 1e6 for t in throughput_series(reports)]
    return FigureResult(
        figure="Fig2",
        title="Degradation of deduplication throughput (DDFS-Like)",
        x_label="generation",
        x=[r.generation + 1 for r in reports],
        series={
            "MB/s": thr,
            "hits/prefetch": locality_series(reports),
        },
        notes={
            "paper": "213 MB/s (gen 1) -> 110 MB/s (gen 20), monotone decay",
            "claim": "throughput decays with generations as duplicate locality weakens",
            "decay_ratio_measured": f"{thr[0] / thr[-1]:.2f}x" if thr[-1] else "inf",
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
