"""Shared experiment plumbing: result container, memoized group runs.

Figures 4/5/6 consume the same three engine runs over the 66-generation
group workload; :func:`run_group_workload` memoizes those runs per
config so the figure harnesses stay independent without triplicating
minutes of simulation. Engine construction lives in :mod:`repro.api`
(:func:`~repro.api.create_engine` / :func:`~repro.api.create_resources`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.api import create_engine, create_resources, engine_info
from repro.dedup.base import BackupReport, EngineResources
from repro.dedup.pipeline import (
    PreparedBackup,
    TruthTriple,
    prepare_workload,
    run_prepared_backup,
    truth_annotations,
)
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import partial_segment_efficiency
from repro.metrics.throughput import throughput_series
from repro.parallel import CellSpec
from repro.segmenting.segmenter import ContentDefinedSegmenter
from repro.workloads.bytegen import group_fs_bytes
from repro.workloads.generators import group_fs_66


#: Engine display names used across all figures (matching the paper's
#: legends: "DDFS-Like", "SiLo-Like", and the DeFrag contribution), plus
#: the extended related-work baselines ("iDedup", "SparseIndex").
ENGINE_NAMES = ("DeFrag", "DDFS-Like", "SiLo-Like", "Exact", "iDedup", "SparseIndex")

#: The maintenance-phase engines appended when
#: ``config.extended_engines`` is set (fig4/fig6/restore ablation).
MAINTENANCE_ENGINE_NAMES = ("RevDedup", "Hybrid")


def paper_segmenter() -> ContentDefinedSegmenter:
    """The paper's segment configuration: 0.5–2 MB content-defined."""
    return ContentDefinedSegmenter()


@dataclass
class FigureResult:
    """A regenerated figure: x axis, named series, and provenance notes.

    ``table()`` renders the same rows the paper's figure plots, ready for
    EXPERIMENTS.md.
    """

    figure: str
    title: str
    x_label: str
    x: List[int]
    series: Dict[str, List[float]]
    notes: Dict[str, str] = field(default_factory=dict)
    #: grid cells that failed while producing this figure (their series
    #: values are NaN); non-empty failures make the CLI exit non-zero
    failures: List[str] = field(default_factory=list)

    def table(self, fmt: str = "{:.1f}") -> str:
        """Aligned text table: one row per x value, one column per series."""
        names = list(self.series)
        widths = [max(len(n), 10) for n in names]
        header = f"{self.x_label:>12} " + " ".join(
            f"{n:>{w}}" for n, w in zip(names, widths)
        )
        lines = [f"== {self.figure}: {self.title} ==", header]
        for i, xv in enumerate(self.x):
            row = f"{xv:>12} " + " ".join(
                f"{fmt.format(self.series[n][i]):>{w}}" for n, w in zip(names, widths)
            )
            lines.append(row)
        for key, val in self.notes.items():
            lines.append(f"# {key}: {val}")
        for failure in self.failures:
            lines.append(f"# FAILED cell {failure}")
        return "\n".join(lines)

    def endpoint(self, name: str) -> float:
        """Last value of a series (the figures' headline comparisons)."""
        return self.series[name][-1]


# ----------------------------------------------------------------------
# shared group-workload runs (figs 4/5/6)
# ----------------------------------------------------------------------

_GROUP_MEMO: Dict[Tuple, Dict[str, Tuple[EngineResources, List[BackupReport]]]] = {}

# the engine-independent half of a group run — generated jobs, segment
# boundaries/views, and ground-truth annotations — shared by every
# engine replaying the same workload (they depend only on the workload
# and segmenter parameters, so replaying N engines pays for them once)
_PREP_MEMO: Dict[Tuple, Tuple[List[PreparedBackup], List[TruthTriple]]] = {}


def _workload_key(config: ExperimentConfig) -> Tuple:
    c = config
    return (c.seed, c.per_user_bytes, c.n_users, c.n_backups, c.churn_full, c.byte_level)


def _group_jobs(config: ExperimentConfig):
    """The group workload's backup jobs: chunk-level streams by default,
    the byte-level ingest path (bytes -> CDC -> batch fingerprint) when
    ``config.byte_level`` is set."""
    kwargs = dict(
        per_user_bytes=config.per_user_bytes,
        seed=config.seed,
        n_users=config.n_users,
        n_backups=config.n_backups,
        churn=config.churn_full,
    )
    if config.byte_level:
        return group_fs_bytes(**kwargs)
    return group_fs_66(**kwargs)


def _prepared_group(
    config: ExperimentConfig,
) -> Tuple[List[PreparedBackup], List[TruthTriple]]:
    key = _workload_key(config)
    hit = _PREP_MEMO.get(key)
    if hit is None:
        prepared = prepare_workload(_group_jobs(config), paper_segmenter())
        hit = (prepared, truth_annotations(prepared))
        _PREP_MEMO[key] = hit
    return hit


def _config_key(config: ExperimentConfig) -> Tuple:
    c = config
    return (
        c.seed, c.per_user_bytes, c.n_users, c.n_backups, c.alpha,
        c.disk.name, c.container_bytes, c.cache_containers, c.prefetch_ahead,
        c.silo_block_bytes, c.silo_cache_blocks, c.silo_similarity_capacity,
        c.index_page_cache_pages,
        c.bloom_capacity, c.bloom_fp_rate, c.churn_full, c.batch, c.store,
        c.byte_level, c.hybrid_cache_chunks, c.maintenance_min_utilization,
        c.shard, c.tenant_cache_chunks,
    )


def run_group_workload(
    config: ExperimentConfig, engines: Sequence[str] = ("DeFrag", "DDFS-Like", "SiLo-Like")
) -> Dict[str, Tuple[EngineResources, List[BackupReport]]]:
    """Run the 66-generation group workload through the named engines.

    Results (resources + reports, keeping the stores alive for restores)
    are memoized per config so figs 4/5/6 share one set of runs.
    """
    key = _config_key(config)
    cached = _GROUP_MEMO.setdefault(key, {})
    for name in engines:
        if name in cached:
            continue
        res = create_resources(config)
        engine = create_engine(name, config, res)
        prepared, truths = _prepared_group(config)
        # engines with an out-of-line phase get it driven after every
        # generation, so their reported layout/clock reflect the policy's
        # true lifecycle; for everyone else end_generation is a no-op
        # that is skipped entirely (byte-identical to the plain loop)
        maintain = engine_info(name).supports_maintenance
        reports: List[BackupReport] = []
        for prep, truth in zip(prepared, truths):
            reports.append(run_prepared_backup(engine, prep, truth))
            if maintain:
                _, remapped = engine.end_generation([r.recipe for r in reports])
                for report, recipe in zip(reports, remapped):
                    report.recipe = recipe
        cached[name] = (res, reports)
    return {name: cached[name] for name in engines}


def clear_memo() -> None:
    """Drop memoized group runs (tests use this to bound memory)."""
    _GROUP_MEMO.clear()
    _PREP_MEMO.clear()


# ----------------------------------------------------------------------
# grid cells (repro.parallel)
# ----------------------------------------------------------------------


def config_fingerprint(config: ExperimentConfig) -> str:
    """Short stable digest of the *full* config identity.

    Cell keys embed this so two cells over different configs (seed,
    scale, alpha, cache sizes, ...) can never collide in one grid; the
    dataclass repr covers every field recursively and deterministically.
    """
    return hashlib.sha256(repr(config).encode("utf-8")).hexdigest()[:12]


def warm_group_workload(config: ExperimentConfig) -> None:
    """Parent-side warm hook: precompute the group workload preparation
    (generation + segmentation + ground truth) so forked workers inherit
    the ``_PREP_MEMO`` entry read-only instead of recomputing it."""
    _prepared_group(config)


def group_cell(config: ExperimentConfig, engine: str) -> Dict:
    """Grid cell: one engine over the 66-generation group workload.

    Returns every series figs 4/5 read from a group run, so one cell
    (deduplicated by key) serves both figures — mirroring what the
    serial ``_GROUP_MEMO`` sharing does in-process.
    """
    _res, reports = run_group_workload(config, (engine,))[engine]
    return {
        "generations": [r.generation + 1 for r in reports],
        "throughput_bps": [float(t) for t in throughput_series(reports)],
        "partial_eff_cum": [
            float(e) for e in partial_segment_efficiency(reports, cumulative=True)
        ],
    }


def group_cell_spec(config: ExperimentConfig, engine: str) -> CellSpec:
    """Spec for :func:`group_cell` (shared by figs 4 and 5)."""
    return CellSpec(
        key=("group", engine, config_fingerprint(config)),
        fn="repro.experiments.common:group_cell",
        config=config,
        kwargs={"engine": engine},
        warm="repro.experiments.common:warm_group_workload",
    )


def cell_values(
    specs: Sequence[CellSpec], results: Dict
) -> Tuple[Dict[Tuple, Dict], List[str]]:
    """Split grid results for ``specs`` into payloads and failures.

    Returns ``(values, failures)``: ``values`` maps cell key -> payload
    for successful cells; ``failures`` holds one human-readable line per
    failed or missing cell, in spec order.
    """
    values: Dict[Tuple, Dict] = {}
    failures: List[str] = []
    for spec in specs:
        result = results.get(spec.key)
        if result is None:
            failures.append(f"{'/'.join(spec.key)}: no result")
        elif not result.ok:
            failures.append(result.describe_failure())
        else:
            values[spec.key] = result.value
    return values, failures
