"""Experiment harnesses: one runner per paper figure, plus ablations.

Every figure in the paper's evaluation has a module here that regenerates
its series on the simulated substrate:

* :mod:`~repro.experiments.fig2` — DDFS-like throughput decay, 20 full
  generations.
* :mod:`~repro.experiments.fig3` — SiLo-like efficiency decay, 20
  incremental generations.
* :mod:`~repro.experiments.fig4` — throughput: DeFrag vs DDFS-like vs
  SiLo-like, 66 generations.
* :mod:`~repro.experiments.fig5` — efficiency: DeFrag vs SiLo-like
  (partial-sharing-segment accounting), 66 generations.
* :mod:`~repro.experiments.fig6` — restore read performance: DeFrag vs
  DDFS-like, generations 1–20.
* :mod:`~repro.experiments.ablations` — α sweep, segmenter, and cache
  sizing studies.
* :mod:`~repro.experiments.frontier` — the placement-policy frontier:
  dedup ratio vs ingest rate vs restore seeks by backup age vs
  maintenance cost, across every registered engine.

All runners take an :class:`~repro.experiments.config.ExperimentConfig`
(scales: ``small`` for tests, ``default`` for the recorded results,
``large`` for patient runs) and return a
:class:`~repro.experiments.common.FigureResult` with the same series the
paper plots.
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.common import FigureResult
from repro.experiments import (
    ablations,
    extensions,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    frontier,
)

__all__ = [
    "ExperimentConfig",
    "FigureResult",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablations",
    "extensions",
    "frontier",
]
