"""Fig. 5 — deduplication efficiency: DeFrag vs SiLo-Like.

Paper: both keep some redundancy (DeFrag by α-rewrites, SiLo by missed
detections). Counting only segments that share *part* of their redundant
chunks (fully duplicate segments removed by both are excluded), SiLo has
~12% of the redundant data not removed by generation 66 while DeFrag has
only ~4% — DeFrag buys its locality much more cheaply.

Grid decomposition: the DeFrag and SiLo cells are the same group-workload
cells Fig. 4 uses (same keys), so a combined ``repro all`` grid computes
each engine run once — the parallel analogue of the serial group memo.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.common import (
    FigureResult,
    cell_values,
    group_cell_spec,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid

#: the two engines Fig. 5 compares, in series order
ENGINES = ("DeFrag", "SiLo-Like")


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The figure's grid: one group-workload cell per engine."""
    return [group_cell_spec(config, engine) for engine in ENGINES]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild Fig. 5 from grid cell payloads (failed cells go NaN)."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    by_engine = {
        spec.kwargs["engine"]: values.get(spec.key) for spec in specs
    }
    ok = {name: v for name, v in by_engine.items() if v is not None}
    if not ok:
        raise GridError(f"fig5: every cell failed: {failures}")
    generations = next(iter(ok.values()))["generations"]
    n = len(generations)
    eff = {
        name: (
            list(by_engine[name]["partial_eff_cum"])
            if by_engine[name] is not None
            else [float("nan")] * n
        )
        for name in ENGINES
    }
    defrag_eff = eff["DeFrag"]
    silo_eff = eff["SiLo-Like"]
    return FigureResult(
        figure="Fig5",
        title="Deduplication efficiency comparison (partial-sharing segments)",
        x_label="generation",
        x=list(generations),
        series={
            "DeFrag": defrag_eff,
            "SiLo-Like": silo_eff,
        },
        notes={
            "paper": "at gen 66: SiLo keeps ~12% of redundancy, DeFrag only ~4%",
            "kept_at_end": "DeFrag=%.1f%% SiLo=%.1f%%"
            % (100 * (1 - defrag_eff[-1]), 100 * (1 - silo_eff[-1])),
        },
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Regenerate Fig. 5's series."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table(fmt="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
