"""Fig. 5 — deduplication efficiency: DeFrag vs SiLo-Like.

Paper: both keep some redundancy (DeFrag by α-rewrites, SiLo by missed
detections). Counting only segments that share *part* of their redundant
chunks (fully duplicate segments removed by both are excluded), SiLo has
~12% of the redundant data not removed by generation 66 while DeFrag has
only ~4% — DeFrag buys its locality much more cheaply.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import FigureResult, run_group_workload
from repro.experiments.config import ExperimentConfig
from repro.metrics.efficiency import partial_segment_efficiency


def _kept_series(reports) -> list:
    """Cumulative kept-redundancy fraction under Fig. 5 accounting.

    For DeFrag "kept" counts rewritten bytes (intentional); for SiLo it
    counts missed bytes — both are redundancy left on disk.
    """
    eff = partial_segment_efficiency(reports, cumulative=True)
    return [1.0 - e for e in eff]


def run(config: Optional[ExperimentConfig] = None) -> FigureResult:
    """Regenerate Fig. 5's series."""
    config = config if config is not None else ExperimentConfig.default()
    runs = run_group_workload(config, ("DeFrag", "SiLo-Like"))
    defrag_reports = runs["DeFrag"][1]
    silo_reports = runs["SiLo-Like"][1]
    defrag_eff = partial_segment_efficiency(defrag_reports, cumulative=True)
    silo_eff = partial_segment_efficiency(silo_reports, cumulative=True)
    return FigureResult(
        figure="Fig5",
        title="Deduplication efficiency comparison (partial-sharing segments)",
        x_label="generation",
        x=[r.generation + 1 for r in defrag_reports],
        series={
            "DeFrag": defrag_eff,
            "SiLo-Like": silo_eff,
        },
        notes={
            "paper": "at gen 66: SiLo keeps ~12% of redundancy, DeFrag only ~4%",
            "kept_at_end": "DeFrag=%.1f%% SiLo=%.1f%%"
            % (100 * (1 - defrag_eff[-1]), 100 * (1 - silo_eff[-1])),
        },
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table(fmt="{:.3f}"))


if __name__ == "__main__":  # pragma: no cover
    main()
